//! How the MILP bit allocator follows the data's variance profile.
//!
//! Trains VAQ on two contrasting workloads — a smooth series dataset with
//! a steep eigen-spectrum (SALD-like) and a noisy one with a flat spectrum
//! (SEISMIC-like) — and prints how the same 64-bit budget is distributed
//! over 16 subspaces in each case. The skewed dataset concentrates bits in
//! the leading subspaces; the flat one is allocated almost uniformly,
//! exactly the behaviour the paper's §III-C motivates.
//!
//! ```sh
//! cargo run --release --example adaptive_allocation
//! ```

use vaq::core::{allocate_bits, AllocationStrategy, Vaq, VaqConfig};
use vaq::dataset::SyntheticSpec;

fn main() {
    for spec in [SyntheticSpec::sald_like(), SyntheticSpec::seismic_like()] {
        let ds = spec.generate(4000, 0, 7);
        let vaq =
            Vaq::train(&ds.data, &VaqConfig::new(64, 16).with_ti_clusters(0)).expect("training");
        println!("== {} ==", ds.name);
        println!("subspace  variance%  bits");
        for (s, (&share, &bits)) in
            vaq.layout().variance_share.iter().zip(vaq.bits().iter()).enumerate()
        {
            println!("{:>8}  {:>8.2}%  {:>4} {}", s, share * 100.0, bits, "▇".repeat(bits));
        }
        println!();
    }

    // The allocator is a plain function too — feed it any importance
    // profile. Here: a hand-made 70/30 split over 8 subspaces.
    let mut shares = vec![0.7 / 2.0; 2];
    shares.extend(vec![0.3 / 6.0; 6]);
    let bits = allocate_bits(&shares, 40, 1, 13, AllocationStrategy::Adaptive).unwrap();
    println!("custom profile {shares:?}\n→ 40-bit budget allocated as {bits:?}");
    assert_eq!(bits.iter().sum::<usize>(), 40);
}
