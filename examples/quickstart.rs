//! Quickstart: train a VAQ index and answer k-NN queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vaq::core::{Vaq, VaqConfig};
use vaq::dataset::SyntheticSpec;

fn main() {
    // 1. A workload: 10k SIFT-like 128-d vectors plus 20 queries.
    let ds = SyntheticSpec::sift_like().generate(10_000, 20, 42);
    println!("dataset: {} ({} vectors × {} dims)", ds.name, ds.len(), ds.dim());

    // 2. Train VAQ: 128-bit budget over 16 subspaces. Everything else is
    //    the paper's defaults — adaptive MILP bit allocation between 1 and
    //    13 bits per subspace, partial importance balancing, 1000 TI
    //    clusters (clamped to the data size), 25% cluster visits.
    let cfg = VaqConfig::new(128, 16).with_seed(42).with_ti_clusters(100);
    let vaq = Vaq::train(&ds.data, &cfg).expect("training");
    println!("bit allocation per subspace: {:?}", vaq.bits());
    println!(
        "subspace variance shares:    {:?}",
        vaq.layout().variance_share.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // 3. Search. Results carry the approximate (ADC) distance.
    for (qi, query) in (0..3).map(|q| (q, ds.queries.row(q))) {
        let hits = vaq.search(query, 5).expect("search");
        let ids: Vec<u32> = hits.iter().map(|h| h.index).collect();
        println!("query {qi}: top-5 = {ids:?} (d₀ = {:.3})", hits[0].distance);
    }

    // 4. How much work did pruning save? Compare strategies on one query.
    use vaq::core::SearchStrategy;
    let q = ds.queries.row(0);
    let (_, full) = vaq.search_with(q, 5, SearchStrategy::FullScan).expect("search");
    let (_, tiea) =
        vaq.search_with(q, 5, SearchStrategy::TiEa { visit_frac: 0.25 }).expect("search");
    println!(
        "\nfull scan visited {} vectors / {} lookups; TI+EA visited {} / {} lookups",
        full.vectors_visited, full.lookups, tiea.vectors_visited, tiea.lookups
    );
}
