//! Whole-series similarity search on UCR-style time series — the workload
//! family behind the paper's Table II / Figure 10 study.
//!
//! Generates a CBF (cylinder–bell–funnel) dataset, indexes it with VAQ and
//! with the two tree indexes (iSAX2+ and DSTree), and compares recall and
//! wall time against the exact scan.
//!
//! ```sh
//! cargo run --release --example time_series_search
//! ```

use std::time::Instant;
use vaq::baselines::AnnIndex;
use vaq::core::{Vaq, VaqConfig};
use vaq::dataset::exact_knn;
use vaq::dataset::ucr::UcrFamily;
use vaq::index::dstree::{DsTree, DsTreeConfig};
use vaq::index::isax::{IsaxConfig, IsaxIndex};
use vaq::index::{ExactScan, TraversalParams};
use vaq::metrics::recall_at_k;

fn main() {
    let k = 10;
    let ds = UcrFamily::Cbf.generate(128, 4000, 50, 11);
    println!("dataset: {} ({} series of length {})", ds.name, ds.len(), ds.dim());
    let truth = exact_knn(&ds.data, &ds.queries, k);

    let report = |name: &str, retrieved: Vec<Vec<u32>>, secs: f64| {
        let recall = recall_at_k(&retrieved, &truth, k);
        println!("{name:<22} recall@{k} = {recall:.3}   query time = {:.1} ms", secs * 1e3);
    };

    // Exact scan (the reference).
    let exact = ExactScan::new(ds.data.clone());
    let t = Instant::now();
    let r: Vec<Vec<u32>> = (0..ds.queries.rows())
        .map(|q| exact.search(ds.queries.row(q), k).iter().map(|n| n.index).collect())
        .collect();
    report("exact scan", r, t.elapsed().as_secs_f64());

    // VAQ at a 64-bit budget.
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 16).with_ti_clusters(64)).unwrap();
    let t = Instant::now();
    let r: Vec<Vec<u32>> = (0..ds.queries.rows())
        .map(|q| {
            vaq.search(ds.queries.row(q), k).expect("search").iter().map(|n| n.index).collect()
        })
        .collect();
    report("VAQ (64-bit codes)", r, t.elapsed().as_secs_f64());

    // iSAX2+ visiting 20 leaves.
    let isax = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
    let t = Instant::now();
    let r: Vec<Vec<u32>> = (0..ds.queries.rows())
        .map(|q| {
            isax.search(ds.queries.row(q), k, TraversalParams::ng(20))
                .iter()
                .map(|n| n.index)
                .collect()
        })
        .collect();
    report("iSAX2+ (NG-20)", r, t.elapsed().as_secs_f64());

    // DSTree visiting 20 leaves.
    let dstree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
    let t = Instant::now();
    let r: Vec<Vec<u32>> = (0..ds.queries.rows())
        .map(|q| {
            dstree
                .search(ds.queries.row(q), k, TraversalParams::ng(20))
                .iter()
                .map(|n| n.index)
                .collect()
        })
        .collect();
    report("DSTree (NG-20)", r, t.elapsed().as_secs_f64());

    println!("\nVAQ's 64-bit codes use {}× less memory than the raw series.", (ds.dim() * 32) / 64);
}
