//! A production-shaped workflow: train once, persist, reload, append new
//! data without retraining, and steer the bit allocator with service-level
//! constraints — the extensibility the paper motivates in §III-C
//! ("new constraints can impose restrictions ... to meet specific runtime
//! and storage service agreements").
//!
//! ```sh
//! cargo run --release --example production_workflow
//! ```

use vaq::core::{allocate_bits_constrained, AllocationConstraint, SearchStrategy, Vaq, VaqConfig};
use vaq::dataset::SyntheticSpec;

fn main() {
    // --- Day 0: train on the first batch and persist. ---
    let ds = SyntheticSpec::sift_like().generate(12_000, 10, 99);
    let initial = ds.data.select_rows(&(0..10_000).collect::<Vec<_>>());
    let late_batch = ds.data.select_rows(&(10_000..12_000).collect::<Vec<_>>());

    let vaq = Vaq::train(&initial, &VaqConfig::new(128, 16).with_ti_clusters(128)).expect("train");
    let path = std::env::temp_dir().join("vaq-example-index.bin");
    vaq.save(&path).expect("save");
    println!(
        "trained on {} vectors, saved {} KiB to {}",
        vaq.len(),
        std::fs::metadata(&path).map(|m| m.len() / 1024).unwrap_or(0),
        path.display()
    );

    // --- Day 1: reload and serve. ---
    let mut served = Vaq::load(&path).expect("load");
    let before = served.search(ds.queries.row(0), 5).expect("search");
    assert_eq!(before, vaq.search(ds.queries.row(0), 5).expect("search"));
    println!("reloaded index answers identically: top hit = {}", before[0].index);

    // --- Day 2: new data arrives; append without retraining. ---
    let first_new = served.add(&late_batch).expect("append");
    println!(
        "appended {} vectors (ids {first_new}..{}); dictionaries untouched",
        late_batch.rows(),
        served.len()
    );
    let hit = served.search_with(late_batch.row(0), 3, SearchStrategy::FullScan).expect("search").0;
    assert!(hit.iter().any(|n| n.index == first_new as u32));
    println!("a just-appended vector finds itself: {:?}", hit[0].index);

    // --- Day 3: capacity planning with allocation constraints. ---
    // Same variance profile, but ops wants the total dictionary footprint
    // capped (a storage SLA) and subspace 0 pinned small so its table
    // stays L1-resident.
    let shares = served.layout().variance_share.clone();
    let unconstrained = allocate_bits_constrained(&shares, 128, 1, 13, &[]).expect("alloc");
    let constrained = allocate_bits_constrained(
        &shares,
        128,
        1,
        13,
        &[
            AllocationConstraint::CapSubspace { subspace: 0, bits: 8 },
            AllocationConstraint::MaxTotalDictionaryItems { items: 4096 },
        ],
    );
    println!("\nunconstrained allocation: {unconstrained:?}");
    match constrained {
        Ok(bits) => {
            let items: usize = bits.iter().map(|&b| 1usize << b).sum();
            println!("with SLA constraints:     {bits:?} (Σ dictionary items = {items})");
        }
        Err(e) => println!("SLA constraints infeasible at this budget: {e}"),
    }
}
