//! A miniature of the paper's Figure 6: every implemented method on one
//! image-descriptor-style workload at the same effective bit budget.
//!
//! ```sh
//! cargo run --release --example method_comparison
//! ```

use std::time::Instant;
use vaq::baselines::bolt::{Bolt, BoltConfig};
use vaq::baselines::itq::{ItqConfig, ItqLsh};
use vaq::baselines::opq::{Opq, OpqConfig};
use vaq::baselines::pq::{Pq, PqConfig};
use vaq::baselines::pqfs::{PqFastScan, PqfsConfig};
use vaq::baselines::vq::{Vq, VqConfig};
use vaq::baselines::AnnIndex;
use vaq::core::{Vaq, VaqConfig};
use vaq::dataset::{exact_knn, SyntheticSpec};
use vaq::metrics::{map_at_k, recall_at_k};

fn main() {
    let k = 10;
    let budget = 64usize;
    let ds = SyntheticSpec::sift_like().generate(15_000, 50, 3);
    let truth = exact_knn(&ds.data, &ds.queries, k);
    println!(
        "{} — n = {}, d = {}, budget = {budget} bits/vector, k = {k}\n",
        ds.name,
        ds.len(),
        ds.dim()
    );
    println!(
        "{:<10} {:>9} {:>9} {:>12} {:>12}",
        "method", "recall", "MAP", "train (s)", "query (ms)"
    );

    let bench = |name: &str, train: Box<dyn Fn() -> Box<dyn Fn(&[f32]) -> Vec<u32>>>| {
        let t0 = Instant::now();
        let search = train();
        let train_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let retrieved: Vec<Vec<u32>> =
            (0..ds.queries.rows()).map(|q| search(ds.queries.row(q))).collect();
        let query_s = t0.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>12.2} {:>12.1}",
            name,
            recall_at_k(&retrieved, &truth, k),
            map_at_k(&retrieved, &truth, k),
            train_s,
            query_s * 1e3
        );
    };

    let data = &ds.data;
    bench(
        "VQ",
        Box::new(move || {
            let vq = Vq::train(data, &VqConfig::new(12)).unwrap();
            Box::new(move |q| vq.search(q, k).iter().map(|n| n.index).collect())
        }),
    );
    bench(
        "PQ",
        Box::new(move || {
            let pq = Pq::train(data, &PqConfig::new(8).with_bits(budget / 8)).unwrap();
            Box::new(move |q| pq.search(q, k).iter().map(|n| n.index).collect())
        }),
    );
    bench(
        "OPQ",
        Box::new(move || {
            let opq = Opq::train(data, &OpqConfig::new(8).with_bits(budget / 8)).unwrap();
            Box::new(move |q| opq.search(q, k).iter().map(|n| n.index).collect())
        }),
    );
    bench(
        "Bolt",
        Box::new(move || {
            let bolt = Bolt::train(data, &BoltConfig::new(budget / 4)).unwrap();
            Box::new(move |q| bolt.search(q, k).iter().map(|n| n.index).collect())
        }),
    );
    bench(
        "PQFS",
        Box::new(move || {
            let pqfs = PqFastScan::train(data, &PqfsConfig::new(budget / 8)).unwrap();
            Box::new(move |q| pqfs.search(q, k).iter().map(|n| n.index).collect())
        }),
    );
    bench(
        "ITQ-LSH",
        Box::new(move || {
            let itq = ItqLsh::train(data, &ItqConfig::new(budget)).unwrap();
            Box::new(move |q| itq.search(q, k).iter().map(|n| n.index).collect())
        }),
    );
    bench(
        "VAQ",
        Box::new(move || {
            let vaq = Vaq::train(data, &VaqConfig::new(budget, 16).with_ti_clusters(150)).unwrap();
            Box::new(move |q| vaq.search(q, k).expect("search").iter().map(|n| n.index).collect())
        }),
    );
}
