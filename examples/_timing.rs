use vaq::dataset::ucr::UcrFamily;
use vaq::linalg::{covariance_centered, sym_eigen};
fn main() {
    let ds = UcrFamily::SlcLike.generate(1024, 1500, 1, 3);
    let t0 = std::time::Instant::now();
    let cov = covariance_centered(&ds.data).unwrap();
    println!("cov: {:.1}s", t0.elapsed().as_secs_f64());
    let t0 = std::time::Instant::now();
    let e = sym_eigen(&cov).unwrap();
    println!("eigen 1024x1024: {:.1}s, top ev {:.3}", t0.elapsed().as_secs_f64(), e.values[0]);
}
