//! Vendored stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements the surface `crates/bench/benches/microbench.rs` consumes:
//! `Criterion::benchmark_group`, group tuning knobs, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is plain wall-clock sampling (warm-up, then `sample_size`
//! samples sized to fill `measurement_time`), reporting the best and mean
//! per-iteration time. No statistical regression analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Marker for the only measurement this shim supports.
    pub struct WallTime;
}

/// Mean/best per-iteration nanoseconds for one completed benchmark.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    pub id: String,
    pub mean_ns: f64,
    pub best_ns: f64,
    pub samples: usize,
}

#[derive(Default)]
pub struct Criterion {
    summaries: Vec<BenchSummary>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            _measurement: std::marker::PhantomData,
        }
    }

    /// All benchmarks measured through this `Criterion` so far.
    pub fn summaries(&self) -> &[BenchSummary] {
        &self.summaries
    }
}

pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_ns: Vec::new(),
        };
        f(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        let summary = bencher.summarize(&full_id);
        println!(
            "{full_id:<48} time: [best {} mean {}] ({} samples)",
            fmt_ns(summary.best_ns),
            fmt_ns(summary.mean_ns),
            summary.samples
        );
        self.criterion.summaries.push(summary);
        self
    }

    pub fn finish(self) {}
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples, each running enough
    /// iterations to make per-sample noise negligible.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, also yielding a rough per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).clamp(1, 1_000_000);

        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times only `routine`, regenerating its input with `setup` for every
    /// call so the routine may consume it.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }

        self.sample_ns.clear();
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.sample_ns.push(start.elapsed().as_nanos() as f64);
            black_box(out);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn summarize(&self, id: &str) -> BenchSummary {
        assert!(
            !self.sample_ns.is_empty(),
            "benchmark '{id}' never called Bencher::iter/iter_batched"
        );
        let mean = self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64;
        let best = self.sample_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        BenchSummary {
            id: id.to_string(),
            mean_ns: mean,
            best_ns: best,
            samples: self.sample_ns.len(),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_summary() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.summaries().len(), 2);
        assert!(c.summaries().iter().all(|s| s.mean_ns >= 0.0 && s.samples > 0));
        assert_eq!(c.summaries()[0].id, "shim/noop");
    }
}
