//! Vendored stand-in for the `bytes` crate (1.x API subset).
//!
//! Implements exactly what `vaq-core`'s persistence layer consumes:
//! `BytesMut` as an append-only little-endian writer and `Bytes` as a
//! cheap-to-split read cursor over shared storage. Semantics match the
//! real crate where it matters: `get_*` and `split_to` panic when the
//! buffer holds too few bytes (callers bounds-check with `remaining`).

use std::ops::Deref;
use std::sync::Arc;

/// Read side: a view `[start, end)` into shared storage. `split_to`
/// hands out the front without copying the payload.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds: {} > {}", n, self.len());
        let front = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + n };
        self.start += n;
        front
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "buffer underflow: need {} bytes, have {}", N, self.len());
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Reader methods (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f32_le(&mut self) -> f32;
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow in copy_to_slice");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Write side: an append-only growable buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::copy_from_slice(&self.inner)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Writer methods (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f32_le(&mut self, v: f32);
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"tail");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_advances_without_copying_payload() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let mut front = b.split_to(2);
        assert_eq!(front.get_u8(), 1);
        assert_eq!(front.get_u8(), 2);
        assert_eq!(front.remaining(), 0);
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn get_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32_le();
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1, 2]);
        let _ = b.split_to(3);
    }
}
