//! Vendored stand-in for [loom](https://docs.rs/loom): an exhaustive
//! model checker for the `std::sync`/`std::thread` subset this workspace
//! consumes through `vaq_core::sync`.
//!
//! [`model`] runs a closure repeatedly, exploring every schedule the
//! checker can distinguish: a depth-first search over (a) which thread
//! performs the next visible operation (preemption-bounded) and (b) for
//! every atomic load, *which* store in the location's modification order
//! the load observes, constrained by the C11 coherence and
//! happens-before rules derived from vector clocks. `Acquire` loads
//! merge the release clock of the store they read; `Relaxed` loads do
//! not — so a data race that a `Release`/`Acquire` pair would forbid is
//! actually *explored* and the assertion that should catch it fires.
//!
//! The types mirror `std` deliberately: [`sync::Mutex`]/[`sync::RwLock`]
//! keep `std`'s poisoning `LockResult` API, atomics take
//! [`std::sync::atomic::Ordering`], and every type is usable *outside*
//! [`model`] too, where it degrades to a plain passthrough over the
//! underlying `std` primitive (so a crate compiled with `--cfg loom`
//! still works when ordinary code paths run). That dual mode also makes
//! every type `const`-constructible, which real loom's are not — the
//! workspace's statics (fault registry, thread budget) keep working.
//!
//! Deliberate simplifications, all *sound* for checking (they can only
//! hide behaviors, never invent impossible ones — no false alarms):
//!
//! - `SeqCst` loads read only the newest store (per-location SC); the
//!   global SC order over mixed-location `SeqCst` ops is not modeled.
//! - `Arc` is re-exported from `std`: reference counts are not protocol
//!   state, and the pointed-to data is always published through a
//!   modeled lock or atomic.
//! - Plain (non-atomic) conflicting accesses are not detected — the
//!   consumer workspace is `#![forbid(unsafe_code)]`, so any shared
//!   mutation already goes through a modeled primitive.
//! - `thread::yield_now` deprioritizes the yielding thread until every
//!   other runnable thread has had a chance to run, and a repeated load
//!   of the same location with no intervening store reads the newest
//!   store without branching (the C11 eventual-visibility guarantee).
//!   Together these make yield-spin loops terminate under exhaustive
//!   exploration instead of growing the schedule tree forever.
//!
//! Knobs (environment variables, read per [`model`] call):
//! `LOOM_MAX_PREEMPTIONS` (default 2), `LOOM_MAX_ITERATIONS` (default
//! 500000), `LOOM_MAX_STEPS` per execution (default 100000).

pub mod exec;
pub mod sync;
pub mod thread;

pub use exec::model;
