//! Model-aware drop-ins for the `std::thread` subset the workspace uses.
//!
//! Inside a [`crate::model`] run, `spawn` registers a model thread (one
//! real OS thread, scheduled cooperatively by the checker) and `join`
//! blocks at the model level with a proper join happens-before edge.
//! Outside a model everything passes through to `std::thread`.

use crate::exec;
use std::any::Any;
use std::marker::PhantomData;

/// Re-exported unchanged: scoped batch workers are pure computation in
/// this workspace (no shared-state protocol), so they are intentionally
/// not modeled.
pub use std::thread::{available_parallelism, scope, Scope};

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

pub fn yield_now() {
    if !exec::yield_model() {
        std::thread::yield_now();
    }
}

#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if exec::current_tid().is_some() {
            let boxed = Box::new(move || Box::new(f()) as Box<dyn Any + Send>);
            let tid = exec::spawn_model(boxed).expect("loom shim: spawn raced with model teardown");
            Ok(JoinHandle { inner: Inner::Model { tid, _result: PhantomData } })
        } else {
            let mut b = std::thread::Builder::new();
            if let Some(n) = self.name {
                b = b.name(n);
            }
            b.spawn(f).map(|h| JoinHandle { inner: Inner::Std(h) })
        }
    }
}

pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model { tid: usize, _result: PhantomData<fn() -> T> },
}

impl<T: 'static> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, .. } => exec::join_model(tid)
                .map(|boxed| *boxed.downcast::<T>().expect("loom shim: join result type mismatch")),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle(..)")
    }
}
