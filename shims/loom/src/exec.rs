//! The checker core: execution state, the depth-first search over
//! schedules, vector clocks, and the per-location store histories that
//! model C11 weak memory.
//!
//! One execution ("iteration") runs the user closure with every model
//! thread mapped to a real OS thread, but only one thread ever runs at a
//! time: before each visible operation the running thread consults the
//! scheduler, which replays a recorded decision path and extends it with
//! default choices past the replayed prefix. After the iteration, the
//! deepest decision with an unexplored alternative is advanced and the
//! execution re-runs — a classic stateless-model-checking DFS with a
//! preemption bound.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as AtomOrd};
use std::sync::{Condvar, Mutex, MutexGuard};

use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

/// Serializes concurrent [`model`] calls: the test harness runs tests on
/// parallel threads, and one exploration owns the process-global state.
static SESSION: Mutex<()> = Mutex::new(());

/// Execution state shared by every model thread of the running
/// exploration. Only the active model thread mutates it.
static STATE: Mutex<ExecState> = Mutex::new(ExecState::new());
static CV: Condvar = Condvar::new();

/// Monotonic execution-id generator: objects registered in an earlier
/// iteration (or an earlier `model()` call) detect their registration is
/// stale by comparing against the current id. Starts at 1 so an id of 0
/// in a [`Registration`] always means "never registered".
static EXEC_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Model-thread id of the current OS thread while it runs inside an
    /// active exploration.
    static TL_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

pub(crate) fn current_tid() -> Option<usize> {
    TL_TID.with(|c| c.get())
}

fn lock_state() -> MutexGuard<'static, ExecState> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

type VClock = Vec<u64>;

fn clock_merge(into: &mut VClock, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, &b) in into.iter_mut().zip(from) {
        *a = (*a).max(b);
    }
}

/// Whether an event stamped `(tid, epoch)` happened-before a thread whose
/// clock is `clock`.
fn clock_covers(clock: &[u64], tid: usize, epoch: u64) -> bool {
    epoch <= clock.get(tid).copied().unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// One branch point of an execution: `chosen` out of `options`
/// equally-legal alternatives (next thread to run, or which store a load
/// observes). Points with a single option are not recorded.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    options: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Run {
    Runnable,
    /// Runnable, but must not be scheduled while a non-yielded runnable
    /// thread exists (what makes yield-spin loops terminate).
    Yielded,
    BlockedMutex(usize),
    BlockedRwWrite(usize),
    BlockedRwRead(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadInfo {
    run: Run,
    clock: VClock,
    epoch: u64,
    /// The closure's boxed return value, consumed by `join`.
    result: Option<Box<dyn Any + Send>>,
}

/// One write in a location's modification order.
struct StoreEvent {
    value: u64,
    /// Stamp of the storing thread at store time, for happens-before
    /// queries. The registration-time initial value is stamped `(0, 0)`,
    /// which happens-before everything.
    tid: usize,
    epoch: u64,
    /// The release clock an `Acquire` load of this store synchronizes
    /// with; `None` for a `Relaxed` store (which is exactly why a relaxed
    /// publish lets readers observe stale data).
    rel: Option<VClock>,
}

struct AtomicHist {
    stores: Vec<StoreEvent>,
    /// Per-thread coherence floor: index of the newest store each thread
    /// has read or written. Loads may not go back before it.
    floor: Vec<usize>,
    /// Modification-order length each thread saw at its last load of
    /// this location. A repeated load with no intervening store reads
    /// the newest store without branching — the C11 eventual-visibility
    /// guarantee, and what keeps spin loops from growing the decision
    /// tree forever. (Forcing freshness can only hide behaviors, never
    /// invent impossible ones, so it stays sound for bug-finding.)
    last_len: Vec<usize>,
}

struct MutexInfo {
    locked: bool,
    /// Clock of the most recent unlock; merged by the next locker
    /// (acquire/release semantics of a mutex).
    release: VClock,
}

struct RwInfo {
    writer: bool,
    readers: usize,
    /// Clock of the last write-unlock (merged by readers and writers).
    release_w: VClock,
    /// Accumulated clocks of read-unlocks (merged by the next writer).
    release_r: VClock,
}

pub(crate) struct ExecState {
    exec_id: usize,
    active: usize,
    threads: Vec<ThreadInfo>,
    atomics: Vec<AtomicHist>,
    mutexes: Vec<MutexInfo>,
    rwlocks: Vec<RwInfo>,
    path: Vec<Decision>,
    depth: usize,
    preemptions: usize,
    max_preemptions: usize,
    steps: u64,
    max_steps: u64,
    /// Set when the iteration is over (all threads finished) or aborted
    /// (fatal model error); parked threads check it to avoid leaking.
    iteration_done: bool,
    /// First user panic observed this iteration; re-raised by [`model`].
    panic_payload: Option<Box<dyn Any + Send>>,
    /// A model-level failure (deadlock, step cap, nondeterminism).
    fatal: Option<&'static str>,
}

impl ExecState {
    const fn new() -> ExecState {
        ExecState {
            exec_id: 0,
            active: 0,
            threads: Vec::new(),
            atomics: Vec::new(),
            mutexes: Vec::new(),
            rwlocks: Vec::new(),
            path: Vec::new(),
            depth: 0,
            preemptions: 0,
            max_preemptions: 2,
            steps: 0,
            max_steps: 100_000,
            iteration_done: false,
            panic_payload: None,
            fatal: None,
        }
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.run == Run::Finished)
    }
}

/// Registers a model-level failure, releases every parked thread, and
/// panics. The panic unwinds through user code (dropping lock guards,
/// whose unlock hooks see `iteration_done` and no-op) and is reported by
/// [`model`] ahead of any user panic it masked.
fn fatal(st: &mut ExecState, msg: &'static str) -> ! {
    st.fatal = Some(msg);
    st.iteration_done = true;
    CV.notify_all();
    panic!("loom shim: {msg}");
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

/// Replays or extends the decision path. Single-option points are free.
fn decide(st: &mut ExecState, options: usize) -> usize {
    if options <= 1 {
        return 0;
    }
    let d = st.depth;
    st.depth += 1;
    if d < st.path.len() {
        let rec = st.path[d];
        if rec.options != options {
            fatal(st, "nondeterministic execution: decision arity changed on replay");
        }
        rec.chosen
    } else {
        st.path.push(Decision { chosen: 0, options });
        0
    }
}

/// Picks the next thread to run. `me` comes first in the option order, so
/// the default (chosen = 0) continues the current thread — preemptions
/// only happen on explicitly-explored branches. Yielded threads are
/// eligible only when no plain-runnable thread exists.
fn choose_next(st: &mut ExecState, me: usize) -> usize {
    let mut runnable = Vec::new();
    let mut yielded = Vec::new();
    let mut ordered: Vec<usize> = Vec::with_capacity(st.threads.len());
    ordered.push(me);
    ordered.extend((0..st.threads.len()).filter(|&t| t != me));
    for &t in &ordered {
        match st.threads[t].run {
            Run::Runnable => runnable.push(t),
            Run::Yielded => yielded.push(t),
            _ => {}
        }
    }
    let mut pool = if runnable.is_empty() { yielded } else { runnable };
    if pool.is_empty() {
        fatal(st, "deadlock: every unfinished thread is blocked");
    }
    if st.preemptions >= st.max_preemptions && pool.contains(&me) {
        pool = vec![me];
    }
    let idx = decide(st, pool.len());
    let next = pool[idx];
    if st.threads[next].run == Run::Yielded {
        st.threads[next].run = Run::Runnable;
    }
    next
}

/// Parks the calling OS thread until the scheduler hands control back.
fn wait_for_turn(mut st: MutexGuard<'_, ExecState>, me: usize) -> MutexGuard<'_, ExecState> {
    loop {
        if st.iteration_done {
            drop(st);
            panic!("loom shim: execution aborted");
        }
        if st.active == me {
            return st;
        }
        st = CV.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// The scheduling point before every visible operation: bumps the
/// thread's clock, lets the scheduler preempt, and returns once the
/// thread is active again.
fn schedule_point(mut st: MutexGuard<'_, ExecState>, me: usize) -> MutexGuard<'_, ExecState> {
    if st.iteration_done {
        return st; // aborted execution: unwind path, no more modeling
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        fatal(&mut st, "step cap exceeded (livelock, or raise LOOM_MAX_STEPS)");
    }
    let t = &mut st.threads[me];
    t.epoch += 1;
    let e = t.epoch;
    if t.clock.len() <= me {
        t.clock.resize(me + 1, 0);
    }
    t.clock[me] = e;
    let next = choose_next(&mut st, me);
    if next == me {
        return st;
    }
    st.preemptions += 1;
    st.active = next;
    CV.notify_all();
    wait_for_turn(st, me)
}

/// Blocks the current thread with reason `how` and forces a switch; the
/// forced switch is not a preemption. Returns once rescheduled.
fn block_current(
    mut st: MutexGuard<'_, ExecState>,
    me: usize,
    how: Run,
) -> MutexGuard<'_, ExecState> {
    if st.iteration_done {
        return st;
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        fatal(&mut st, "step cap exceeded (livelock, or raise LOOM_MAX_STEPS)");
    }
    st.threads[me].run = how;
    let next = choose_next(&mut st, me);
    st.active = next;
    CV.notify_all();
    let mut st = wait_for_turn(st, me);
    st.threads[me].run = Run::Runnable;
    st
}

fn wake(st: &mut ExecState, pred: impl Fn(Run) -> bool) {
    for t in st.threads.iter_mut() {
        if pred(t.run) {
            t.run = Run::Runnable;
        }
    }
}

// ---------------------------------------------------------------------------
// Object registration
// ---------------------------------------------------------------------------

/// Per-object registration cell embedded in every shim primitive. An
/// object registers lazily on first touch *per execution*, so statics
/// (whose std-side value persists across iterations) and fresh per-
/// iteration objects both work, and stale slots from earlier iterations
/// are never reused.
pub(crate) struct Registration {
    exec: AtomicUsize,
    slot: AtomicUsize,
}

impl Registration {
    pub(crate) const fn new() -> Registration {
        Registration { exec: AtomicUsize::new(0), slot: AtomicUsize::new(0) }
    }
}

impl std::fmt::Debug for Registration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registration")
    }
}

fn ensure_atomic(st: &mut ExecState, reg: &Registration, init: u64) -> usize {
    if reg.exec.load(AtomOrd::Relaxed) == st.exec_id {
        return reg.slot.load(AtomOrd::Relaxed);
    }
    let slot = st.atomics.len();
    st.atomics.push(AtomicHist {
        stores: vec![StoreEvent { value: init, tid: 0, epoch: 0, rel: None }],
        floor: Vec::new(),
        last_len: Vec::new(),
    });
    reg.slot.store(slot, AtomOrd::Relaxed);
    reg.exec.store(st.exec_id, AtomOrd::Relaxed);
    slot
}

fn ensure_mutex(st: &mut ExecState, reg: &Registration) -> usize {
    if reg.exec.load(AtomOrd::Relaxed) == st.exec_id {
        return reg.slot.load(AtomOrd::Relaxed);
    }
    let slot = st.mutexes.len();
    st.mutexes.push(MutexInfo { locked: false, release: Vec::new() });
    reg.slot.store(slot, AtomOrd::Relaxed);
    reg.exec.store(st.exec_id, AtomOrd::Relaxed);
    slot
}

fn ensure_rwlock(st: &mut ExecState, reg: &Registration) -> usize {
    if reg.exec.load(AtomOrd::Relaxed) == st.exec_id {
        return reg.slot.load(AtomOrd::Relaxed);
    }
    let slot = st.rwlocks.len();
    st.rwlocks.push(RwInfo {
        writer: false,
        readers: 0,
        release_w: Vec::new(),
        release_r: Vec::new(),
    });
    reg.slot.store(slot, AtomOrd::Relaxed);
    reg.exec.store(st.exec_id, AtomOrd::Relaxed);
    slot
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

fn acquires(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Modeled atomic load; `None` when the caller is not a model thread
/// (passthrough). The observed store is a recorded decision: any store in
/// the modification order that is neither superseded by a newer
/// happened-before store nor older than the thread's coherence floor.
pub(crate) fn atomic_load(reg: &Registration, init: u64, ordering: Ordering) -> Option<u64> {
    let me = current_tid()?;
    let mut st = lock_state();
    let slot = ensure_atomic(&mut st, reg, init);
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        return None;
    }
    let n = st.atomics[slot].stores.len();
    let mut last_hb = 0;
    for j in 0..n {
        let s = &st.atomics[slot].stores[j];
        if clock_covers(&st.threads[me].clock, s.tid, s.epoch) {
            last_hb = j;
        }
    }
    if st.atomics[slot].floor.len() <= me {
        st.atomics[slot].floor.resize(me + 1, 0);
    }
    if st.atomics[slot].last_len.len() <= me {
        st.atomics[slot].last_len.resize(me + 1, 0);
    }
    let repeat = st.atomics[slot].last_len[me] == n;
    st.atomics[slot].last_len[me] = n;
    let lo = last_hb.max(st.atomics[slot].floor[me]);
    let idx = if ordering == Ordering::SeqCst || repeat {
        // SeqCst loads read the newest store (per-location sequential
        // consistency; the cross-location SC total order is not modeled
        // — strictly stronger, so no false alarms). A repeated load with
        // no new stores in between also reads the newest: eventual
        // visibility, which keeps spin loops finite.
        n - 1
    } else {
        // Candidates newest-first, so the default path behaves like SC
        // and stale reads are the explored alternatives.
        n - 1 - decide(&mut st, n - lo)
    };
    st.atomics[slot].floor[me] = st.atomics[slot].floor[me].max(idx);
    if acquires(ordering) {
        if let Some(rel) = st.atomics[slot].stores[idx].rel.clone() {
            clock_merge(&mut st.threads[me].clock, &rel);
        }
    }
    Some(st.atomics[slot].stores[idx].value)
}

/// Modeled atomic store; `false` when not a model thread. The caller
/// syncs the std-side value afterwards (it stays the modification-order
/// tail because only one model thread runs at a time).
pub(crate) fn atomic_store(reg: &Registration, init: u64, value: u64, ordering: Ordering) -> bool {
    let Some(me) = current_tid() else { return false };
    let mut st = lock_state();
    let slot = ensure_atomic(&mut st, reg, init);
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        return false;
    }
    let rel = releases(ordering).then(|| st.threads[me].clock.clone());
    let epoch = st.threads[me].epoch;
    st.atomics[slot].stores.push(StoreEvent { value, tid: me, epoch, rel });
    let idx = st.atomics[slot].stores.len() - 1;
    if st.atomics[slot].floor.len() <= me {
        st.atomics[slot].floor.resize(me + 1, 0);
    }
    st.atomics[slot].floor[me] = idx;
    true
}

/// Modeled read-modify-write; `None` when not a model thread. An RMW
/// reads the modification-order tail (atomicity) and continues the
/// release sequence of the store it replaces.
pub(crate) fn atomic_rmw(
    reg: &Registration,
    init: u64,
    f: &dyn Fn(u64) -> u64,
    ordering: Ordering,
) -> Option<u64> {
    let me = current_tid()?;
    let mut st = lock_state();
    let slot = ensure_atomic(&mut st, reg, init);
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        return None;
    }
    let n = st.atomics[slot].stores.len();
    let prev = st.atomics[slot].stores[n - 1].value;
    let prev_rel = st.atomics[slot].stores[n - 1].rel.clone();
    if acquires(ordering) {
        if let Some(r) = &prev_rel {
            clock_merge(&mut st.threads[me].clock, r);
        }
    }
    let mut rel = releases(ordering).then(|| st.threads[me].clock.clone());
    if let Some(pr) = prev_rel {
        match &mut rel {
            Some(r) => clock_merge(r, &pr),
            None => rel = Some(pr),
        }
    }
    let epoch = st.threads[me].epoch;
    st.atomics[slot].stores.push(StoreEvent { value: f(prev), tid: me, epoch, rel });
    if st.atomics[slot].floor.len() <= me {
        st.atomics[slot].floor.resize(me + 1, 0);
    }
    st.atomics[slot].floor[me] = n;
    Some(prev)
}

// ---------------------------------------------------------------------------
// Mutex / RwLock
// ---------------------------------------------------------------------------

/// Model-level mutex acquisition; `false` when not a model thread.
pub(crate) fn mutex_lock(reg: &Registration) -> bool {
    let Some(me) = current_tid() else { return false };
    let mut st = lock_state();
    let slot = ensure_mutex(&mut st, reg);
    let mut st = schedule_point(st, me);
    loop {
        if st.iteration_done {
            return true; // aborted: std-level lock still provides exclusion
        }
        if !st.mutexes[slot].locked {
            st.mutexes[slot].locked = true;
            let rel = st.mutexes[slot].release.clone();
            clock_merge(&mut st.threads[me].clock, &rel);
            return true;
        }
        st = block_current(st, me, Run::BlockedMutex(slot));
    }
}

pub(crate) fn mutex_unlock(reg: &Registration) {
    let Some(me) = current_tid() else { return };
    let mut st = lock_state();
    let slot = ensure_mutex(&mut st, reg);
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        return;
    }
    st.mutexes[slot].locked = false;
    st.mutexes[slot].release = st.threads[me].clock.clone();
    wake(&mut st, |r| r == Run::BlockedMutex(slot));
}

pub(crate) fn rw_read_lock(reg: &Registration) -> bool {
    let Some(me) = current_tid() else { return false };
    let mut st = lock_state();
    let slot = ensure_rwlock(&mut st, reg);
    let mut st = schedule_point(st, me);
    loop {
        if st.iteration_done {
            return true;
        }
        if !st.rwlocks[slot].writer {
            st.rwlocks[slot].readers += 1;
            let rel = st.rwlocks[slot].release_w.clone();
            clock_merge(&mut st.threads[me].clock, &rel);
            return true;
        }
        st = block_current(st, me, Run::BlockedRwRead(slot));
    }
}

pub(crate) fn rw_read_unlock(reg: &Registration) {
    let Some(me) = current_tid() else { return };
    let mut st = lock_state();
    let slot = ensure_rwlock(&mut st, reg);
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        return;
    }
    st.rwlocks[slot].readers = st.rwlocks[slot].readers.saturating_sub(1);
    let clock = st.threads[me].clock.clone();
    clock_merge(&mut st.rwlocks[slot].release_r, &clock);
    wake(&mut st, |r| r == Run::BlockedRwWrite(slot));
}

pub(crate) fn rw_write_lock(reg: &Registration) -> bool {
    let Some(me) = current_tid() else { return false };
    let mut st = lock_state();
    let slot = ensure_rwlock(&mut st, reg);
    let mut st = schedule_point(st, me);
    loop {
        if st.iteration_done {
            return true;
        }
        if !st.rwlocks[slot].writer && st.rwlocks[slot].readers == 0 {
            st.rwlocks[slot].writer = true;
            let rw = st.rwlocks[slot].release_w.clone();
            let rr = st.rwlocks[slot].release_r.clone();
            clock_merge(&mut st.threads[me].clock, &rw);
            clock_merge(&mut st.threads[me].clock, &rr);
            return true;
        }
        st = block_current(st, me, Run::BlockedRwWrite(slot));
    }
}

pub(crate) fn rw_write_unlock(reg: &Registration) {
    let Some(me) = current_tid() else { return };
    let mut st = lock_state();
    let slot = ensure_rwlock(&mut st, reg);
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        return;
    }
    st.rwlocks[slot].writer = false;
    st.rwlocks[slot].release_w = st.threads[me].clock.clone();
    wake(&mut st, |r| r == Run::BlockedRwWrite(slot) || r == Run::BlockedRwRead(slot));
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Spawns a model thread running `f` on a fresh OS thread; `None` when
/// the caller is not inside a model. The child inherits the parent's
/// clock (the spawn happens-before everything in the child).
pub(crate) fn spawn_model(f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>) -> Option<usize> {
    let me = current_tid()?;
    let st = lock_state();
    let mut st = schedule_point(st, me);
    if st.iteration_done {
        drop(st);
        panic!("loom shim: execution aborted");
    }
    let tid = st.threads.len();
    let mut clock = st.threads[me].clock.clone();
    if clock.len() <= tid {
        clock.resize(tid + 1, 0);
    }
    clock[tid] = 1;
    st.threads.push(ThreadInfo { run: Run::Runnable, clock, epoch: 1, result: None });
    drop(st);
    std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            TL_TID.with(|c| c.set(Some(tid)));
            let res = catch_unwind(AssertUnwindSafe(move || {
                let st = lock_state();
                drop(wait_for_turn(st, tid));
                f()
            }));
            finish_thread(tid, res);
        })
        .expect("loom shim: failed to spawn a model OS thread");
    Some(tid)
}

/// Marks `tid` finished, records its result or panic, wakes joiners, and
/// hands control to the next runnable thread (or ends the iteration).
fn finish_thread(tid: usize, res: Result<Box<dyn Any + Send>, Box<dyn Any + Send>>) {
    let mut st = lock_state();
    match res {
        Ok(v) => st.threads[tid].result = Some(v),
        Err(p) => {
            if st.panic_payload.is_none() && st.fatal.is_none() {
                st.panic_payload = Some(p);
            }
        }
    }
    st.threads[tid].run = Run::Finished;
    wake(&mut st, |r| r == Run::BlockedJoin(tid));
    if st.iteration_done {
        return; // aborted execution: main is already being notified
    }
    if st.all_finished() {
        st.iteration_done = true;
        CV.notify_all();
        return;
    }
    let next = choose_next(&mut st, tid);
    st.active = next;
    CV.notify_all();
}

/// Model-level join: blocks until `target` finishes, merges its clock
/// (join edge), and returns its boxed result.
pub(crate) fn join_model(target: usize) -> std::thread::Result<Box<dyn Any + Send>> {
    let me = current_tid().expect("loom shim: model JoinHandle joined outside the model");
    let st = lock_state();
    let mut st = schedule_point(st, me);
    while st.threads[target].run != Run::Finished {
        if st.iteration_done {
            drop(st);
            panic!("loom shim: execution aborted");
        }
        st = block_current(st, me, Run::BlockedJoin(target));
    }
    let tclock = st.threads[target].clock.clone();
    clock_merge(&mut st.threads[me].clock, &tclock);
    match st.threads[target].result.take() {
        Some(v) => Ok(v),
        None => Err(Box::new("loom model thread panicked")),
    }
}

/// Model-level yield: deprioritizes the calling thread until every other
/// runnable thread has had a chance to run. `false` outside a model.
pub(crate) fn yield_model() -> bool {
    let Some(me) = current_tid() else { return false };
    let mut st = lock_state();
    if st.iteration_done {
        return true;
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        fatal(&mut st, "step cap exceeded (livelock, or raise LOOM_MAX_STEPS)");
    }
    let t = &mut st.threads[me];
    t.epoch += 1;
    let e = t.epoch;
    if t.clock.len() <= me {
        t.clock.resize(me + 1, 0);
    }
    t.clock[me] = e;
    t.run = Run::Yielded;
    let next = choose_next(&mut st, me);
    if next == me {
        return true;
    }
    st.active = next;
    CV.notify_all();
    let mut st = wait_for_turn(st, me);
    st.threads[me].run = Run::Runnable;
    true
}

// ---------------------------------------------------------------------------
// The model driver
// ---------------------------------------------------------------------------

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Advances the decision path to the next unexplored schedule; `false`
/// when the tree is exhausted.
fn advance(path: &mut Vec<Decision>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Resets the thread-local model-thread id even when an iteration panics.
struct TlGuard;

impl Drop for TlGuard {
    fn drop(&mut self) {
        TL_TID.with(|c| c.set(None));
    }
}

/// Runs `f` under every schedule the checker can distinguish (see the
/// crate docs for the model and its deliberate simplifications). Panics
/// — re-raising the closure's own panic — as soon as any schedule makes
/// the closure fail.
pub fn model<F: Fn()>(f: F) {
    let _session = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    let max_preemptions = env_u64("LOOM_MAX_PREEMPTIONS", 2) as usize;
    let max_iterations = env_u64("LOOM_MAX_ITERATIONS", 500_000);
    let max_steps = env_u64("LOOM_MAX_STEPS", 100_000);
    let mut path: Vec<Decision> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        if iterations > max_iterations {
            panic!(
                "loom shim: exceeded {max_iterations} iterations without exhausting \
                 the schedule tree (shrink the scenario or raise LOOM_MAX_ITERATIONS)"
            );
        }
        {
            let mut st = lock_state();
            *st = ExecState::new();
            st.exec_id = EXEC_ID.fetch_add(1, AtomOrd::Relaxed);
            st.max_preemptions = max_preemptions;
            st.max_steps = max_steps;
            st.path = std::mem::take(&mut path);
            st.threads.push(ThreadInfo {
                run: Run::Runnable,
                clock: vec![1],
                epoch: 1,
                result: None,
            });
            st.active = 0;
        }
        let _tl = TlGuard;
        TL_TID.with(|c| c.set(Some(0)));
        let res = catch_unwind(AssertUnwindSafe(&f));
        let (fatal_msg, payload) = {
            let mut st = lock_state();
            if let Err(p) = res {
                if st.panic_payload.is_none() && st.fatal.is_none() {
                    st.panic_payload = Some(p);
                }
            }
            st.threads[0].run = Run::Finished;
            wake(&mut st, |r| r == Run::BlockedJoin(0));
            if st.all_finished() {
                st.iteration_done = true;
                CV.notify_all();
            } else if !st.iteration_done {
                let next = choose_next(&mut st, 0);
                st.active = next;
                CV.notify_all();
            }
            while !st.iteration_done {
                st = CV.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            path = std::mem::take(&mut st.path);
            (st.fatal.take(), st.panic_payload.take())
        };
        if let Some(msg) = fatal_msg {
            panic!("loom shim: {msg} (iteration {iterations})");
        }
        if let Some(p) = payload {
            let choices: Vec<usize> = path.iter().map(|d| d.chosen).collect();
            eprintln!(
                "loom shim: failing schedule found on iteration {iterations}; \
                 decision path {choices:?}"
            );
            resume_unwind(p);
        }
        if !advance(&mut path) {
            break;
        }
    }
}
