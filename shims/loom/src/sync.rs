//! Model-aware drop-ins for the `std::sync` subset the workspace uses.
//!
//! Every type pairs a real `std` primitive with a `Registration` cell.
//! Outside a [`crate::model`] run the primitive is a plain passthrough;
//! inside one, every operation first goes through the checker (schedule
//! point, happens-before bookkeeping, decision recording) and the `std`
//! primitive is kept in sync so mixed model/non-model access still sees
//! a coherent value. All constructors are `const`, unlike real loom's,
//! so process-level statics keep working under `cfg(loom)`.

use crate::exec::{self, Registration};
use std::sync::{LockResult, PoisonError};

pub use std::sync::Arc;

pub mod atomic {
    //! Atomics whose loads/stores are modeled with per-location store
    //! histories: a `Relaxed` load inside the model may observe any
    //! coherence-legal stale store, not just the newest one.

    use super::exec;
    use super::Registration;
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $prim:ty) => {
            pub struct $name {
                std: std::sync::atomic::$std,
                reg: Registration,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self { std: std::sync::atomic::$std::new(v), reg: Registration::new() }
                }

                fn init(&self) -> u64 {
                    // Registration-time initial value: the std side holds
                    // the latest value whether or not a model is active.
                    self.std.load(Ordering::Relaxed) as u64
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    match exec::atomic_load(&self.reg, self.init(), order) {
                        Some(v) => v as $prim,
                        None => self.std.load(order),
                    }
                }

                pub fn store(&self, val: $prim, order: Ordering) {
                    if exec::atomic_store(&self.reg, self.init(), val as u64, order) {
                        // Only one model thread runs at a time, so this
                        // store is the modification-order tail.
                        self.std.store(val, Ordering::Relaxed);
                    } else {
                        self.std.store(val, order);
                    }
                }

                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    let f = move |x: u64| (x as $prim).wrapping_add(val) as u64;
                    match exec::atomic_rmw(&self.reg, self.init(), &f, order) {
                        Some(prev) => {
                            let prev = prev as $prim;
                            self.std.store(prev.wrapping_add(val), Ordering::Relaxed);
                            prev
                        }
                        None => self.std.fetch_add(val, order),
                    }
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.std.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }
        };
    }

    model_atomic!(AtomicU32, AtomicU32, u32);
    model_atomic!(AtomicU64, AtomicU64, u64);
    model_atomic!(AtomicUsize, AtomicUsize, usize);

    pub struct AtomicBool {
        std: std::sync::atomic::AtomicBool,
        reg: Registration,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self { std: std::sync::atomic::AtomicBool::new(v), reg: Registration::new() }
        }

        fn init(&self) -> u64 {
            self.std.load(Ordering::Relaxed) as u64
        }

        pub fn load(&self, order: Ordering) -> bool {
            match exec::atomic_load(&self.reg, self.init(), order) {
                Some(v) => v != 0,
                None => self.std.load(order),
            }
        }

        pub fn store(&self, val: bool, order: Ordering) {
            if exec::atomic_store(&self.reg, self.init(), val as u64, order) {
                self.std.store(val, Ordering::Relaxed);
            } else {
                self.std.store(val, order);
            }
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            let f = move |_: u64| val as u64;
            match exec::atomic_rmw(&self.reg, self.init(), &f, order) {
                Some(prev) => {
                    self.std.store(val, Ordering::Relaxed);
                    prev != 0
                }
                None => self.std.swap(val, order),
            }
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool").field(&self.std.load(Ordering::Relaxed)).finish()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    reg: Registration,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex { reg: Registration::new(), inner: std::sync::Mutex::new(t) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if exec::mutex_lock(&self.reg) {
            // Model-level ownership is established; the std lock below
            // cannot contend with another *model* thread (only one runs
            // at a time and it would be model-blocked), only with
            // non-model threads of other tests, which is fine.
            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard { reg: Some(&self.reg), inner: Some(g) })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { reg: None, inner: Some(g) }),
                Err(p) => {
                    Err(PoisonError::new(MutexGuard { reg: None, inner: Some(p.into_inner()) }))
                }
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    reg: Option<&'a Registration>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first, then model-level ownership. No
        // other model thread can run between the two: control only
        // transfers at schedule points, and a model thread that raced
        // for the std lock here would already be model-blocked.
        drop(self.inner.take());
        if let Some(reg) = self.reg {
            exec::mutex_unlock(reg);
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    reg: Registration,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> RwLock<T> {
        RwLock { reg: Registration::new(), inner: std::sync::RwLock::new(t) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if exec::rw_read_lock(&self.reg) {
            let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
            Ok(RwLockReadGuard { reg: Some(&self.reg), inner: Some(g) })
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard { reg: None, inner: Some(g) }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    reg: None,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if exec::rw_write_lock(&self.reg) {
            let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
            Ok(RwLockWriteGuard { reg: Some(&self.reg), inner: Some(g) })
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard { reg: None, inner: Some(g) }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    reg: None,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    reg: Option<&'a Registration>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(reg) = self.reg {
            exec::rw_read_unlock(reg);
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    reg: Option<&'a Registration>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(reg) = self.reg {
            exec::rw_write_unlock(reg);
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}
