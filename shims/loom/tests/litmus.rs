//! Litmus tests for the vendored loom checker itself: classic
//! message-passing and store-buffering shapes where the set of outcomes
//! the model may explore is known from the C11 memory model. These run
//! in the default test tier (no `--cfg loom` needed — they drive
//! `loom::model` directly), so a regression in the checker fails CI
//! before any consumer suite relies on it.

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Release/Acquire message passing: the reader that observes the flag
/// must observe the payload. This must hold on every schedule.
#[test]
fn message_passing_release_acquire_always_sound() {
    loom::model(|| {
        let payload = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (p2, f2) = (Arc::clone(&payload), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            p2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(payload.load(Ordering::Relaxed), 42);
        }
        writer.join().unwrap();
    });
}

/// The same shape with a Relaxed publish is a real bug, and the checker
/// must find the schedule that exposes it: flag observed true while the
/// payload load still returns the stale initial value.
#[test]
fn message_passing_relaxed_publish_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let payload = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (p2, f2) = (Arc::clone(&payload), Arc::clone(&flag));
            let writer = thread::spawn(move || {
                p2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed); // BUG: no release edge
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(payload.load(Ordering::Relaxed), 42);
            }
            writer.join().unwrap();
        });
    }));
    assert!(result.is_err(), "checker failed to expose the stale read a Relaxed publish allows");
}

/// Store buffering with SeqCst: both threads reading the initial value is
/// forbidden under sequential consistency, and the checker's
/// per-location-SC treatment of SeqCst must never produce it.
#[test]
fn store_buffering_seqcst_forbids_both_stale() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r_main = x.load(Ordering::SeqCst);
        let r_spawned = t.join().unwrap();
        assert!(r_main == 1 || r_spawned == 1, "both threads read stale values under SeqCst");
    });
}

/// Store buffering with Relaxed everywhere: both-stale IS allowed by the
/// model, and exhaustive exploration must reach it (this is the
/// exhaustiveness smoke test — a schedule-only checker without weak
/// memory modeling would miss it on x86).
#[test]
fn store_buffering_relaxed_explores_both_stale() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let r_main = x.load(Ordering::Relaxed);
            let r_spawned = t.join().unwrap();
            assert!(r_main == 1 || r_spawned == 1);
        });
    }));
    assert!(result.is_err(), "checker never explored the relaxed both-stale outcome");
}

/// Mutual exclusion plus the release/acquire edge of unlock→lock: two
/// increments through a mutex always total 2.
#[test]
fn mutex_counter_is_exact() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *counter.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

/// A coherence check: once a thread has observed a store, a later load
/// on the same thread may not travel back before it.
#[test]
fn read_read_coherence_holds() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
        });
        let first = x.load(Ordering::Relaxed);
        let second = x.load(Ordering::Relaxed);
        assert!(second >= first, "load traveled backwards in coherence order");
        t.join().unwrap();
    });
}

/// Yield-spin termination: a reader spinning with `yield_now` on a flag
/// must terminate under exhaustive exploration (the scheduler
/// deprioritizes yielded threads instead of replaying the spin forever).
#[test]
fn yield_spin_loop_terminates() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            thread::yield_now();
        }
        t.join().unwrap();
    });
}

/// Join edge: everything the child did happens-before the parent after
/// join, even with Relaxed accesses.
#[test]
fn join_establishes_happens_before() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(7, Ordering::Relaxed);
        });
        t.join().unwrap();
        assert_eq!(x.load(Ordering::Relaxed), 7);
    });
}

/// Passthrough mode: outside `model`, the types behave like std.
#[test]
fn passthrough_outside_model() {
    let x = AtomicU64::new(1);
    x.store(5, Ordering::SeqCst);
    assert_eq!(x.load(Ordering::SeqCst), 5);
    assert_eq!(x.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(x.load(Ordering::SeqCst), 7);
    let m = Mutex::new(3u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 4);
    let h = thread::spawn(|| 11u8);
    assert_eq!(h.join().unwrap(), 11);
}

/// RwLock: a writer publishing under the write lock is visible to a
/// reader under the read lock, and two model iterations of the same
/// scenario stay deterministic.
#[test]
fn rwlock_write_visible_to_reader() {
    loom::model(|| {
        let cell = Arc::new(loom::sync::RwLock::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            *c2.write().unwrap() = 9;
        });
        let seen = *cell.read().unwrap();
        assert!(seen == 0 || seen == 9);
        t.join().unwrap();
        assert_eq!(*cell.read().unwrap(), 9);
    });
}
