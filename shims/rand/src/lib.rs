//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this crate implements
//! exactly the surface the workspace consumes: `StdRng` seeded with
//! `seed_from_u64`, `Rng::gen` / `Rng::gen_range`, and `SliceRandom::shuffle`.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for k-means++ seeding, synthetic data, and rotation sampling, and
//! fully deterministic for a given seed (the reproduction's tests rely on
//! determinism, never on matching upstream `rand`'s exact stream).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from their "standard" distribution
/// (floats in `[0, 1)`, integers over their full range).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to kill modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width inclusive range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                (lo as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(isize, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// xoshiro256++ — the workspace's standard generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    use crate::RngCore;

    /// Slice extension trait (subset: Fisher–Yates `shuffle`).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
            let v = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
        assert!(seen.iter().all(|&s| s), "uniform usize range missed a value");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
    }
}
