//! Vendored stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no registry access, so this crate implements
//! the surface the workspace's property tests consume: the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros, range and tuple strategies,
//! `collection::vec`, `prop_map` / `prop_flat_map`, `any::<T>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its inputs (via the assertion
//!   message) and the deterministic per-test seed instead of a minimal one;
//! * sampling streams differ from upstream (tests here assert invariants,
//!   never exact upstream streams).

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Always produces a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy, used by [`any`].
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.gen::<u64>() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable element counts for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test random source.
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        /// The sampled inputs do not satisfy a `prop_assume!` precondition;
        /// the runner discards the case and draws a fresh one.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    fn fxhash(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: keeps drawing cases until `cases` have been
    /// accepted, panicking on the first failure with the case number and
    /// seed so the run can be replayed exactly.
    pub fn run<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let base = fxhash(name);
        let max_rejects = (config.cases as u64).saturating_mul(64).max(4096);
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while accepted < config.cases {
            let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            case += 1;
            let mut rng = TestRng(rand::rngs::StdRng::seed_from_u64(seed));
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejected}) for {} accepted cases",
                            accepted
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {} (seed {seed:#x}): {msg}", case - 1);
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3usize..=8,
            f in -2.0f32..2.0,
            v in crate::collection::vec(0u32..10, 4..9),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..=8).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((4..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
            let _ = flag;
        }

        #[test]
        fn flat_map_threads_outer_sample(
            m in (2usize..5).prop_flat_map(|n| crate::collection::vec(0usize..100, n * 3)
                .prop_map(move |v| (n, v)))
        ) {
            let (n, v) = m;
            prop_assert_eq!(v.len(), n * 3);
        }

        #[test]
        fn assume_discards_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_and_seed() {
        crate::test_runner::run(
            ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> TestCaseResult {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first: Vec<usize> = Vec::new();
        let mut second: Vec<usize> = Vec::new();
        for out in [&mut first, &mut second] {
            crate::test_runner::run(ProptestConfig::with_cases(16), "determinism_probe", |rng| {
                out.push(crate::strategy::Strategy::sample(&(0usize..1000), rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
