//! End-to-end integration tests: the full train → encode → search pipeline
//! across crates, asserting the invariants the paper's design relies on.

use vaq::baselines::opq::{Opq, OpqConfig};
use vaq::baselines::pq::{Pq, PqConfig};
use vaq::baselines::AnnIndex;
use vaq::core::{SearchStrategy, Vaq, VaqConfig};
use vaq::dataset::{exact_knn, SyntheticSpec};
use vaq::index::ExactScan;
use vaq::metrics::{map_at_k, recall_at_k};

fn retrieve(search: impl Fn(&[f32]) -> Vec<u32>, queries: &vaq::linalg::Matrix) -> Vec<Vec<u32>> {
    (0..queries.rows()).map(|q| search(queries.row(q))).collect()
}

#[test]
fn vaq_full_pipeline_beats_chance_and_respects_budget() {
    let ds = SyntheticSpec::sift_like().generate(2000, 30, 1);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(128, 16).with_ti_clusters(64)).unwrap();
    assert_eq!(vaq.code_bits(), 128);
    let retrieved =
        retrieve(|q| vaq.search(q, 10).unwrap().iter().map(|n| n.index).collect(), &ds.queries);
    let recall = recall_at_k(&retrieved, &truth, 10);
    assert!(recall > 0.4, "pipeline recall too low: {recall}");
}

#[test]
fn vaq_beats_pq_on_skewed_spectrum_at_equal_budget() {
    // The paper's central accuracy claim, end to end.
    let ds = SyntheticSpec::sald_like().generate(2500, 40, 2);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let budget = 64usize;
    let m = 16usize;

    let pq = Pq::train(&ds.data, &PqConfig::new(m).with_bits(budget / m)).unwrap();
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(budget, m).with_ti_clusters(0)).unwrap();

    let r_pq = recall_at_k(
        &retrieve(|q| pq.search(q, 10).iter().map(|n| n.index).collect(), &ds.queries),
        &truth,
        10,
    );
    let r_vaq = recall_at_k(
        &retrieve(
            |q| {
                vaq.search_with(q, 10, SearchStrategy::FullScan)
                    .unwrap()
                    .0
                    .iter()
                    .map(|n| n.index)
                    .collect()
            },
            &ds.queries,
        ),
        &truth,
        10,
    );
    assert!(
        r_vaq > r_pq - 0.02,
        "VAQ ({r_vaq}) should not lose to PQ ({r_pq}) on a steep-spectrum dataset"
    );
}

#[test]
fn pruning_strategies_preserve_the_adc_ranking() {
    // EA is exact; TI with 100% visits is exact. This is the load-bearing
    // correctness property of §III-E.
    let ds = SyntheticSpec::deep_like().generate(1200, 12, 3);
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 8).with_ti_clusters(48)).unwrap();
    for q in 0..ds.queries.rows() {
        let query = ds.queries.row(q);
        let full: Vec<u32> = vaq
            .search_with(query, 10, SearchStrategy::FullScan)
            .unwrap()
            .0
            .iter()
            .map(|n| n.index)
            .collect();
        let ea: Vec<u32> = vaq
            .search_with(query, 10, SearchStrategy::EarlyAbandon)
            .unwrap()
            .0
            .iter()
            .map(|n| n.index)
            .collect();
        let ti_all: Vec<u32> = vaq
            .search_with(query, 10, SearchStrategy::TiEa { visit_frac: 1.0 })
            .unwrap()
            .0
            .iter()
            .map(|n| n.index)
            .collect();
        assert_eq!(full, ea, "EA diverged on query {q}");
        assert_eq!(full, ti_all, "TI(1.0) diverged on query {q}");
    }
}

#[test]
fn map_never_exceeds_recall() {
    let ds = SyntheticSpec::sift_like().generate(800, 20, 4);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    for (budget, m) in [(32usize, 8usize), (64, 16)] {
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(budget, m).with_ti_clusters(32)).unwrap();
        let retrieved =
            retrieve(|q| vaq.search(q, 10).unwrap().iter().map(|n| n.index).collect(), &ds.queries);
        let r = recall_at_k(&retrieved, &truth, 10);
        let m = map_at_k(&retrieved, &truth, 10);
        assert!(m <= r + 1e-9, "MAP {m} > recall {r}");
    }
}

#[test]
fn bigger_budget_never_much_worse() {
    let ds = SyntheticSpec::sift_like().generate(1500, 25, 5);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let mut last = 0.0f64;
    // 8 subspaces × max 13 bits caps the feasible budget at 104.
    for budget in [32usize, 64, 104] {
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(budget, 8).with_ti_clusters(0)).unwrap();
        let retrieved = retrieve(
            |q| {
                vaq.search_with(q, 10, SearchStrategy::FullScan)
                    .unwrap()
                    .0
                    .iter()
                    .map(|n| n.index)
                    .collect()
            },
            &ds.queries,
        );
        let r = recall_at_k(&retrieved, &truth, 10);
        assert!(r >= last - 0.08, "budget {budget}: recall {r} regressed from {last}");
        last = r;
    }
}

#[test]
fn exact_scan_is_the_accuracy_ceiling() {
    let ds = SyntheticSpec::deep_like().generate(600, 15, 6);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let exact = ExactScan::new(ds.data.clone());
    let retrieved =
        retrieve(|q| exact.search(q, 10).iter().map(|n| n.index).collect(), &ds.queries);
    assert_eq!(recall_at_k(&retrieved, &truth, 10), 1.0);
    assert_eq!(map_at_k(&retrieved, &truth, 10), 1.0);
}

#[test]
fn opq_and_vaq_share_projection_quality() {
    // Both rotate with the same eigenbasis; their quantization errors at
    // equal budget must be within a small factor (VAQ can only improve by
    // reallocating bits).
    let ds = SyntheticSpec::sald_like().generate(1000, 0, 7);
    let opq = Opq::train(&ds.data, &OpqConfig::new(8).with_bits(8)).unwrap();
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 8).with_ti_clusters(0)).unwrap();
    let e_opq = opq.quantization_error(&ds.data);
    let e_vaq = vaq.quantization_error(&ds.data).unwrap();
    assert!(
        e_vaq < e_opq * 2.0,
        "VAQ error {e_vaq} should be comparable or better than OPQ {e_opq}"
    );
}

#[test]
fn searches_are_deterministic_across_runs() {
    let ds = SyntheticSpec::sift_like().generate(500, 5, 8);
    let cfg = VaqConfig::new(64, 8).with_seed(123).with_ti_clusters(16);
    let a = Vaq::train(&ds.data, &cfg).unwrap();
    let b = Vaq::train(&ds.data, &cfg).unwrap();
    for q in 0..ds.queries.rows() {
        assert_eq!(
            a.search(ds.queries.row(q), 10).unwrap(),
            b.search(ds.queries.row(q), 10).unwrap()
        );
    }
}
