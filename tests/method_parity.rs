//! Cross-method parity and budget-accounting tests: every method, same
//! workload, checked against the relationships the paper's Table I and
//! evaluation establish.

use vaq::baselines::bolt::{Bolt, BoltConfig};
use vaq::baselines::itq::{ItqConfig, ItqLsh};
use vaq::baselines::opq::{Opq, OpqConfig};
use vaq::baselines::pq::{Pq, PqConfig};
use vaq::baselines::pqfs::{PqFastScan, PqfsConfig};
use vaq::baselines::vq::{Vq, VqConfig};
use vaq::baselines::AnnIndex;
use vaq::core::{SearchStrategy, Vaq, VaqConfig};
use vaq::dataset::{exact_knn, SyntheticSpec};
use vaq::metrics::recall_at_k;

fn recall_of(
    search: impl Fn(&[f32]) -> Vec<u32>,
    ds: &vaq::dataset::Dataset,
    truth: &[Vec<u32>],
) -> f64 {
    let retrieved: Vec<Vec<u32>> =
        (0..ds.queries.rows()).map(|q| search(ds.queries.row(q))).collect();
    recall_at_k(&retrieved, truth, 10)
}

#[test]
fn all_methods_respect_their_declared_bit_budgets() {
    let ds = SyntheticSpec::sift_like().generate(600, 0, 1);
    assert_eq!(Pq::train(&ds.data, &PqConfig::new(16).with_bits(4)).unwrap().code_bits(), 64);
    assert_eq!(Opq::train(&ds.data, &OpqConfig::new(16).with_bits(4)).unwrap().code_bits(), 64);
    assert_eq!(Bolt::train(&ds.data, &BoltConfig::new(16)).unwrap().code_bits(), 64);
    assert_eq!(PqFastScan::train(&ds.data, &PqfsConfig::new(8)).unwrap().code_bits(), 64);
    assert_eq!(ItqLsh::train(&ds.data, &ItqConfig::new(64)).unwrap().code_bits(), 64);
    assert_eq!(Vq::train(&ds.data, &VqConfig::new(8)).unwrap().code_bits(), 8);
    assert_eq!(
        Vaq::train(&ds.data, &VaqConfig::new(64, 16).with_ti_clusters(0)).unwrap().code_bits(),
        64
    );
}

#[test]
fn pqfs_equals_pq_accuracy_by_construction() {
    // Table I row "PQFS": no accuracy change vs PQ.
    let ds = SyntheticSpec::sift_like().generate(1000, 20, 2);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let pqfs = PqFastScan::train(&ds.data, &PqfsConfig::new(8)).unwrap();
    let r_fast = recall_of(|q| pqfs.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
    let r_inner = recall_of(
        |q| pqfs.inner().search_adc(q, 10).iter().map(|n| n.index).collect(),
        &ds,
        &truth,
    );
    assert!((r_fast - r_inner).abs() < 1e-9, "PQFS recall {r_fast} != PQ recall {r_inner}");
}

#[test]
fn quantizers_beat_binary_hashing_at_equal_budget() {
    // §V-A: "ITQ-LSH is not competitive in terms of accuracy".
    let ds = SyntheticSpec::sift_like().generate(1500, 25, 3);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let budget = 64usize;
    let pq = Pq::train(&ds.data, &PqConfig::new(8).with_bits(budget / 8)).unwrap();
    let itq = ItqLsh::train(&ds.data, &ItqConfig::new(budget)).unwrap();
    let r_pq = recall_of(|q| pq.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
    let r_itq = recall_of(|q| itq.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
    assert!(r_pq > r_itq - 0.05, "PQ {r_pq} should outperform ITQ-LSH {r_itq}");
}

#[test]
fn bolt_trades_accuracy_for_table_size_at_equal_budget() {
    // Figure 1's core trade-off: same 64 bits, Bolt uses 16×4-bit
    // subspaces vs PQ's 8×8-bit ones.
    let ds = SyntheticSpec::sald_like().generate(1500, 25, 4);
    let truth = exact_knn(&ds.data, &ds.queries, 10);
    let pq = Pq::train(&ds.data, &PqConfig::new(8).with_bits(8)).unwrap();
    let bolt = Bolt::train(&ds.data, &BoltConfig::new(16)).unwrap();
    let r_pq = recall_of(|q| pq.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
    let r_bolt = recall_of(|q| bolt.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
    assert!(r_pq >= r_bolt - 0.03, "PQ {r_pq} vs Bolt {r_bolt}");
}

#[test]
fn vaq_matches_or_beats_the_best_baseline_on_every_spectrum() {
    for (spec, seed) in [
        (SyntheticSpec::sift_like(), 5u64),
        (SyntheticSpec::sald_like(), 6),
        (SyntheticSpec::deep_like(), 7),
    ] {
        let ds = spec.generate(1200, 20, seed);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let budget = 64usize;
        let pq = Pq::train(&ds.data, &PqConfig::new(8).with_bits(8)).unwrap();
        let opq = Opq::train(&ds.data, &OpqConfig::new(8).with_bits(8)).unwrap();
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(budget, 8).with_ti_clusters(0)).unwrap();
        let r_pq = recall_of(|q| pq.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
        let r_opq = recall_of(|q| opq.search(q, 10).iter().map(|n| n.index).collect(), &ds, &truth);
        let r_vaq = recall_of(
            |q| {
                vaq.search_with(q, 10, SearchStrategy::FullScan)
                    .unwrap()
                    .0
                    .iter()
                    .map(|n| n.index)
                    .collect()
            },
            &ds,
            &truth,
        );
        let best = r_pq.max(r_opq);
        assert!(
            r_vaq > best - 0.08,
            "{}: VAQ {r_vaq} fell too far below best baseline {best}",
            ds.name
        );
    }
}

#[test]
fn every_method_returns_sorted_unique_results() {
    let ds = SyntheticSpec::deep_like().generate(400, 3, 9);
    let methods: Vec<Box<dyn AnnIndex>> = vec![
        Box::new(Pq::train(&ds.data, &PqConfig::new(8).with_bits(4)).unwrap()),
        Box::new(Opq::train(&ds.data, &OpqConfig::new(8).with_bits(4)).unwrap()),
        Box::new(Bolt::train(&ds.data, &BoltConfig::new(8)).unwrap()),
        Box::new(PqFastScan::train(&ds.data, &PqfsConfig::new(4)).unwrap()),
        Box::new(ItqLsh::train(&ds.data, &ItqConfig::new(32)).unwrap()),
        Box::new(Vq::train(&ds.data, &VqConfig::new(6)).unwrap()),
    ];
    for m in &methods {
        for q in 0..ds.queries.rows() {
            let res = m.search(ds.queries.row(q), 15);
            assert_eq!(res.len(), 15, "{} returned wrong k", m.name());
            for w in res.windows(2) {
                assert!(w[0].distance <= w[1].distance, "{} unsorted", m.name());
            }
            let mut ids: Vec<u32> = res.iter().map(|n| n.index).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 15, "{} returned duplicates", m.name());
        }
    }
}
