//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use vaq::core::{allocate_bits, AllocationStrategy, SubspaceLayout, SubspaceMode};
use vaq::linalg::{covariance_centered, sym_eigen, DMatrix, Matrix, Pca};
use vaq::metrics::{average_precision, recall_at_k};
use vaq::milp::{solve_lp, solve_milp, Cmp, Model, Objective};

fn small_matrix() -> impl Strategy<Value = Matrix> {
    // 6..=24 rows × 3..=8 cols of bounded floats.
    (3usize..=8, 6usize..=24).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(-100.0f32..100.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_reconstructs_covariance(m in small_matrix()) {
        let cov = covariance_centered(&m).unwrap();
        let eig = sym_eigen(&cov).unwrap();
        // V Λ Vᵀ == C
        let n = eig.values.len();
        let mut lam = DMatrix::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, eig.values[i]);
        }
        let rec = eig.vectors.matmul(&lam).unwrap()
            .matmul(&eig.vectors.transpose()).unwrap();
        let scale = cov.as_slice().iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(rec.frobenius_distance(&cov) < 1e-6 * scale.max(1.0));
        // Eigenvalues of a PSD matrix are non-negative (tolerance for
        // roundoff) and sorted.
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(eig.values.last().copied().unwrap_or(0.0) > -1e-6 * scale);
    }

    #[test]
    fn pca_projection_is_an_isometry(m in small_matrix()) {
        let pca = Pca::fit(&m).unwrap();
        let z = pca.transform(&m).unwrap();
        // Pairwise distances preserved under the orthonormal projection.
        let i = 0;
        let j = m.rows() - 1;
        let before = vaq::linalg::euclidean(m.row(i), m.row(j));
        let after = vaq::linalg::euclidean(z.row(i), z.row(j));
        prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
    }

    #[test]
    fn milp_solution_is_feasible_and_at_least_lp_rounding(
        weights in proptest::collection::vec(0.01f64..1.0, 3..6),
        budget_per_var in 2usize..6,
    ) {
        let m = weights.len();
        let budget = (budget_per_var * m) as f64;
        let mut model = Model::new(Objective::Maximize);
        let vars: Vec<usize> = weights.iter().map(|&w| model.add_int_var(1.0, 13.0, w)).collect();
        model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, budget);
        let sol = solve_milp(&model).unwrap();
        // Feasible: integral, in bounds, budget met.
        let total: f64 = sol.values.iter().sum();
        prop_assert!((total - budget).abs() < 1e-6);
        for &v in &sol.values {
            prop_assert!((v - v.round()).abs() < 1e-6);
            prop_assert!((1.0..=13.0).contains(&v));
        }
        // MILP optimum cannot exceed the LP relaxation.
        let lp = solve_lp(&model).unwrap();
        prop_assert!(sol.objective <= lp.objective + 1e-6);
    }

    #[test]
    fn bit_allocation_invariants(
        raw in proptest::collection::vec(0.001f64..1.0, 4..12),
        budget_factor in 2usize..10,
    ) {
        let m = raw.len();
        // Sort descending (the layout guarantees this in production).
        let mut w = raw.clone();
        w.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let budget = (budget_factor * m).min(13 * m).max(m);
        let bits = allocate_bits(&w, budget, 1, 13, AllocationStrategy::Adaptive).unwrap();
        prop_assert_eq!(bits.iter().sum::<usize>(), budget);
        prop_assert!(bits.iter().all(|&b| (1..=13).contains(&b)));
        // Importance ordering respected.
        for win in bits.windows(2) {
            prop_assert!(win[0] >= win[1]);
        }
    }

    #[test]
    fn subspace_layout_partitions_dimensions(
        raw in proptest::collection::vec(0.001f64..1.0, 6..32),
        m in 2usize..6,
        balance in any::<bool>(),
    ) {
        prop_assume!(m <= raw.len());
        let mut vars = raw.clone();
        vars.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for mode in [SubspaceMode::Uniform, SubspaceMode::Clustered] {
            let l = SubspaceLayout::build(&vars, m, mode, balance, 1).unwrap();
            // Permutation property.
            let mut p = l.perm.clone();
            p.sort_unstable();
            prop_assert_eq!(p, (0..vars.len()).collect::<Vec<_>>());
            // Ranges tile [0, d).
            prop_assert_eq!(l.ranges[0].0, 0);
            prop_assert_eq!(l.ranges.last().unwrap().1, vars.len());
            for w in l.ranges.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
                prop_assert!(w[0].1 > w[0].0);
            }
            // Descending subspace importance.
            for w in l.variance_share.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-9);
            }
        }
    }

    #[test]
    fn recall_and_ap_are_bounded(
        retrieved in proptest::collection::vec(0u32..50, 0..10),
        truth in proptest::collection::vec(0u32..50, 1..10),
    ) {
        let ap = average_precision(&retrieved, &truth);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        let r = recall_at_k(&[retrieved.clone()], &[truth.clone()], 10);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        prop_assert!(ap <= r + 1e-12, "AP {ap} exceeded recall {r}");
    }

    #[test]
    fn wilcoxon_p_value_valid(
        a in proptest::collection::vec(0.0f64..1.0, 5..40),
    ) {
        let b: Vec<f64> = a.iter().map(|v| 1.0 - v).collect();
        let w = vaq::metrics::wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&w.p_value));
        prop_assert!(w.n_effective <= a.len());
    }
}
