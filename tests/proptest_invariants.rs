//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use std::sync::OnceLock;
use vaq::core::{
    allocate_bits, AllocationStrategy, Audit, SearchStats, SearchStrategy, SubspaceLayout,
    SubspaceMode, Vaq, VaqConfig,
};
use vaq::linalg::{covariance_centered, sym_eigen, DMatrix, Matrix, Pca};
use vaq::metrics::{average_precision, recall_at_k};
use vaq::milp::{solve_lp, solve_milp, Cmp, Model, Objective};

fn small_matrix() -> impl Strategy<Value = Matrix> {
    // 6..=24 rows × 3..=8 cols of bounded floats.
    (3usize..=8, 6usize..=24).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(-100.0f32..100.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

/// One trained index + query pool shared across property cases (training is
/// deterministic, so sharing does not couple the cases).
fn trained_vaq() -> &'static (Vaq, Matrix) {
    static CELL: OnceLock<(Vaq, Matrix)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds = vaq::dataset::SyntheticSpec::sift_like().generate(500, 16, 41);
        let index = Vaq::train(&ds.data, &VaqConfig::new(32, 4).with_seed(41).with_ti_clusters(16))
            .unwrap();
        (index, ds.queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_reconstructs_covariance(m in small_matrix()) {
        let cov = covariance_centered(&m).unwrap();
        let eig = sym_eigen(&cov).unwrap();
        // V Λ Vᵀ == C
        let n = eig.values.len();
        let mut lam = DMatrix::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, eig.values[i]);
        }
        let rec = eig.vectors.matmul(&lam).unwrap()
            .matmul(&eig.vectors.transpose()).unwrap();
        let scale = cov.as_slice().iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(rec.frobenius_distance(&cov) < 1e-6 * scale.max(1.0));
        // Eigenvalues of a PSD matrix are non-negative (tolerance for
        // roundoff) and sorted.
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(eig.values.last().copied().unwrap_or(0.0) > -1e-6 * scale);
    }

    #[test]
    fn pca_projection_is_an_isometry(m in small_matrix()) {
        let pca = Pca::fit(&m).unwrap();
        let z = pca.transform(&m).unwrap();
        // Pairwise distances preserved under the orthonormal projection.
        let i = 0;
        let j = m.rows() - 1;
        let before = vaq::linalg::euclidean(m.row(i), m.row(j));
        let after = vaq::linalg::euclidean(z.row(i), z.row(j));
        prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
    }

    #[test]
    fn milp_solution_is_feasible_and_at_least_lp_rounding(
        weights in proptest::collection::vec(0.01f64..1.0, 3..6),
        budget_per_var in 2usize..6,
    ) {
        let m = weights.len();
        let budget = (budget_per_var * m) as f64;
        let mut model = Model::new(Objective::Maximize);
        let vars: Vec<usize> = weights.iter().map(|&w| model.add_int_var(1.0, 13.0, w)).collect();
        model.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, budget);
        let sol = solve_milp(&model).unwrap();
        // Feasible: integral, in bounds, budget met.
        let total: f64 = sol.values.iter().sum();
        prop_assert!((total - budget).abs() < 1e-6);
        for &v in &sol.values {
            prop_assert!((v - v.round()).abs() < 1e-6);
            prop_assert!((1.0..=13.0).contains(&v));
        }
        // MILP optimum cannot exceed the LP relaxation.
        let lp = solve_lp(&model).unwrap();
        prop_assert!(sol.objective <= lp.objective + 1e-6);
    }

    #[test]
    fn bit_allocation_invariants(
        raw in proptest::collection::vec(0.001f64..1.0, 4..12),
        budget_factor in 2usize..10,
    ) {
        let m = raw.len();
        // Sort descending (the layout guarantees this in production).
        let mut w = raw.clone();
        w.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let budget = (budget_factor * m).min(13 * m).max(m);
        let bits = allocate_bits(&w, budget, 1, 13, AllocationStrategy::Adaptive).unwrap();
        prop_assert_eq!(bits.iter().sum::<usize>(), budget);
        prop_assert!(bits.iter().all(|&b| (1..=13).contains(&b)));
        // Importance ordering respected.
        for win in bits.windows(2) {
            prop_assert!(win[0] >= win[1]);
        }
    }

    #[test]
    fn subspace_layout_partitions_dimensions(
        raw in proptest::collection::vec(0.001f64..1.0, 6..32),
        m in 2usize..6,
        balance in any::<bool>(),
    ) {
        prop_assume!(m <= raw.len());
        let mut vars = raw.clone();
        vars.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for mode in [SubspaceMode::Uniform, SubspaceMode::Clustered] {
            let l = SubspaceLayout::build(&vars, m, mode, balance, 1).unwrap();
            // Permutation property.
            let mut p = l.perm.clone();
            p.sort_unstable();
            prop_assert_eq!(p, (0..vars.len()).collect::<Vec<_>>());
            // Ranges tile [0, d).
            prop_assert_eq!(l.ranges[0].0, 0);
            prop_assert_eq!(l.ranges.last().unwrap().1, vars.len());
            for w in l.ranges.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
                prop_assert!(w[0].1 > w[0].0);
            }
            // Descending subspace importance.
            for w in l.variance_share.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-9);
            }
        }
    }

    #[test]
    fn recall_and_ap_are_bounded(
        retrieved in proptest::collection::vec(0u32..50, 0..10),
        truth in proptest::collection::vec(0u32..50, 1..10),
    ) {
        let ap = average_precision(&retrieved, &truth);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        let r = recall_at_k(std::slice::from_ref(&retrieved), std::slice::from_ref(&truth), 10);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        prop_assert!(ap <= r + 1e-12, "AP {ap} exceeded recall {r}");
    }

    #[test]
    fn batch_search_equals_per_query_search(
        // nq spans the n<4 sequential fallback AND the threaded shard path.
        nq in 1usize..=8,
        k in 1usize..=10,
        strat_idx in 0usize..4,
    ) {
        let (index, pool) = trained_vaq();
        let strategy = [
            SearchStrategy::FullScan,
            SearchStrategy::EarlyAbandon,
            SearchStrategy::TiEa { visit_frac: 0.5 },
            SearchStrategy::Quantized,
        ][strat_idx];
        let cols = pool.cols();
        let mut flat = Vec::with_capacity(nq * cols);
        for qi in 0..nq {
            flat.extend_from_slice(pool.row(qi));
        }
        let queries = Matrix::from_vec(nq, cols, flat);

        let (batch, batch_stats) = index.search_batch(&queries, k, strategy).unwrap();
        prop_assert_eq!(batch.len(), nq);
        let mut expected_stats = SearchStats::default();
        for (qi, got) in batch.iter().enumerate() {
            let (want, stats) = index.search_with(pool.row(qi), k, strategy).unwrap();
            prop_assert_eq!(got, &want, "query {} diverged under {:?}", qi, strategy);
            expected_stats += stats;
        }
        // Batch counters are exactly the sum of the per-query counters —
        // every field, including the quantized-prune count and the table
        // reallocations (both paths use pre-sized arenas, so the refill
        // counters agree at zero rather than being skipped).
        prop_assert_eq!(batch_stats, expected_stats);
    }

    #[test]
    fn trained_index_passes_audit(
        m in 2usize..=5,
        bits_per_sub in 2usize..=5,
        ti_clusters in 0usize..=10,
        seed in 0u64..1_000,
    ) {
        // A small 16-d spec keeps per-case training cheap while still
        // exercising the full five-stage pipeline (PCA → subspaces → bit
        // allocation → dictionaries → TI).
        let spec = vaq::dataset::SyntheticSpec {
            name: "sift-like",
            dim: 16,
            alpha: 0.9,
            clusters: 8,
            center_scale: 1.6,
            post: vaq::dataset::Post::ClipNonNegative,
        };
        let ds = spec.generate(120, 0, seed ^ 0xA5A5);
        let cfg = VaqConfig::new(bits_per_sub * m, m)
            .with_seed(seed)
            .with_ti_clusters(ti_clusters);
        let index = Vaq::train(&ds.data, &cfg).unwrap();
        let report = index.audit();
        prop_assert!(report.is_ok(), "audit of trained index failed:\n{report}");
    }

    #[test]
    fn wilcoxon_p_value_valid(
        a in proptest::collection::vec(0.0f64..1.0, 5..40),
    ) {
        let b: Vec<f64> = a.iter().map(|v| 1.0 - v).collect();
        let w = vaq::metrics::wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&w.p_value));
        prop_assert!(w.n_effective <= a.len());
    }
}
