//! # vaq — Variance-Aware Quantization
//!
//! Facade crate for the full VAQ workspace, a from-scratch Rust
//! reproduction of *"Fast Adaptive Similarity Search through Variance-Aware
//! Quantization"* (Paparrizos et al., ICDE 2022).
//!
//! The typical entry point is [`core::Vaq`]; see `examples/quickstart.rs`
//! for a full train → encode → search round trip. Each subsystem is also
//! published as its own crate and re-exported here:
//!
//! * [`core`] — the VAQ quantizer itself (the paper's contribution).
//! * [`linalg`] — dense matrices, Jacobi eigen, SVD, PCA.
//! * [`kmeans`] — dictionary learning (k-means++, Lloyd, hierarchical).
//! * [`milp`] — the simplex + branch-and-bound solver behind the adaptive
//!   bit allocation.
//! * [`baselines`] — VQ, PQ, OPQ, Bolt, PQ Fast Scan, ITQ-LSH.
//! * [`index`] — exact scan, HNSW, IMI, iSAX2+, DSTree.
//! * [`dataset`] — synthetic workload generators standing in for the
//!   paper's datasets.
//! * [`metrics`] — recall/MAP, Wilcoxon, Friedman + Nemenyi.

#![forbid(unsafe_code)]

pub use vaq_baselines as baselines;
pub use vaq_core as core;
pub use vaq_dataset as dataset;
pub use vaq_index as index;
pub use vaq_kmeans as kmeans;
pub use vaq_linalg as linalg;
pub use vaq_metrics as metrics;
pub use vaq_milp as milp;
