//! End-to-end checks of the `xtask lint` binary: the committed tree plus
//! allowlist must be clean, and a reintroduced violation must fail with a
//! `file:line: VAQxxx` diagnostic.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("xtask binary runs");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn committed_tree_is_clean_under_allowlist() {
    let (ok, text) = run_lint(&repo_root());
    assert!(ok, "lint failed on the committed tree:\n{text}");
    assert!(text.contains("xtask lint: OK"), "{text}");
}

#[test]
fn reintroduced_violation_fails_with_location_and_code() {
    // A scratch workspace with one library file holding a fresh VAQ004
    // violation and no allowlist.
    let dir = std::env::temp_dir().join(format!("vaq-lint-test-{}", std::process::id()));
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(src.join("bad.rs"), "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n")
        .expect("scratch file");

    let (ok, text) = run_lint(&dir);
    std::fs::remove_dir_all(&dir).ok();

    assert!(!ok, "lint must fail on an unallowed violation:\n{text}");
    assert!(
        text.contains("crates/core/src/bad.rs:2: VAQ004"),
        "diagnostic must carry file:line and rule code:\n{text}"
    );
    assert!(text.contains("xtask lint: FAILED"), "{text}");
}
