//! End-to-end checks of the `xtask lint` binary: the committed tree plus
//! allowlist must be clean, and a reintroduced violation must fail with a
//! `file:line: VAQxxx` diagnostic.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("xtask binary runs");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn committed_tree_is_clean_under_allowlist() {
    let (ok, text) = run_lint(&repo_root());
    assert!(ok, "lint failed on the committed tree:\n{text}");
    assert!(text.contains("xtask lint: OK"), "{text}");
}

#[test]
fn reintroduced_violation_fails_with_location_and_code() {
    // A scratch workspace with one library file holding a fresh VAQ004
    // violation and no allowlist.
    let dir = std::env::temp_dir().join(format!("vaq-lint-test-{}", std::process::id()));
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(src.join("bad.rs"), "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n")
        .expect("scratch file");

    let (ok, text) = run_lint(&dir);
    std::fs::remove_dir_all(&dir).ok();

    assert!(!ok, "lint must fail on an unallowed violation:\n{text}");
    assert!(
        text.contains("crates/core/src/bad.rs:2: VAQ004"),
        "diagnostic must carry file:line and rule code:\n{text}"
    );
    assert!(text.contains("xtask lint: FAILED"), "{text}");
}

/// One doctored file per concurrency-discipline rule: each must fail at
/// the exact `file:line` with the right code.
#[test]
fn concurrency_discipline_rules_fail_on_doctored_files() {
    let dir = std::env::temp_dir().join(format!("vaq-lint-test-disc-{}", std::process::id()));

    // VAQ008: a direct std::sync import inside vaq-core.
    let core = dir.join("crates/core/src");
    std::fs::create_dir_all(&core).expect("scratch tree");
    std::fs::write(
        core.join("vaq008.rs"),
        "//! doctored\nuse std::sync::Mutex;\npub fn f() -> Mutex<u32> { Mutex::new(0) }\n",
    )
    .expect("scratch file");

    // VAQ009: a Relaxed store with no ORDERING justification (line 4).
    std::fs::write(
        core.join("vaq009.rs"),
        "//! doctored\nuse crate::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn f(v: &AtomicU64) {\n    v.store(1, Ordering::Relaxed);\n}\n",
    )
    .expect("scratch file");

    // VAQ010: an unchecked narrowing cast in persist.rs (line 3).
    std::fs::write(
        core.join("persist.rs"),
        "//! doctored\npub fn f(v: u64) -> usize {\n    v as usize\n}\n",
    )
    .expect("scratch file");

    let (ok, text) = run_lint(&dir);
    std::fs::remove_dir_all(&dir).ok();

    assert!(!ok, "lint must fail on the doctored tree:\n{text}");
    assert!(text.contains("crates/core/src/vaq008.rs:2: VAQ008"), "{text}");
    assert!(text.contains("crates/core/src/vaq009.rs:4: VAQ009"), "{text}");
    assert!(text.contains("crates/core/src/persist.rs:3: VAQ010"), "{text}");
}

/// The lint header names every rule, so a CI log records what was active.
#[test]
fn lint_output_prints_the_rule_table() {
    let (ok, text) = run_lint(&repo_root());
    assert!(ok, "{text}");
    assert!(text.contains("xtask lint rules:"), "{text}");
    for code in [
        "VAQ001", "VAQ002", "VAQ003", "VAQ004", "VAQ005", "VAQ006", "VAQ007", "VAQ008", "VAQ009",
        "VAQ010",
    ] {
        assert!(text.contains(code), "rule table must list {code}:\n{text}");
    }
}
