//! A minimal token-level lexer for Rust source, sufficient for the VAQ
//! lint rules. No dependency on `syn` (the workspace is offline): the
//! lexer strips comments, strings, and char literals, splits the rest into
//! identifier/number/punctuation tokens with line numbers, and marks
//! `#[cfg(test)]` regions by brace matching so rules can exempt test code.

/// One surviving token: an identifier, a number, or a single punctuation
/// character.
#[derive(Debug, Clone)]
pub struct Token {
    pub text: String,
    pub line: u32,
    /// Inside a `#[cfg(test)]` item (set by [`lex`]'s post-pass).
    pub is_test: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    /// Last line of each comment run carrying a `SAFETY:` marker followed
    /// by non-trivial justification text (an empty `// SAFETY:` records
    /// nothing — rule VAQ005 requires an actual argument).
    pub safety_lines: Vec<u32>,
    /// Same for `ORDERING:` justification comments (rule VAQ009).
    pub ordering_lines: Vec<u32>,
    /// Last line of each comment run naming a CPU feature tier (`ssse3`,
    /// `avx2`, …) — rule VAQ011 requires one next to every `unsafe` in
    /// kernel files, so the justification states which runtime-verified
    /// target feature the block relies on.
    pub feature_lines: Vec<u32>,
}

/// CPU-feature keywords a kernel `unsafe` justification must name
/// (VAQ011). Case-insensitive; `sse2` covers the baseline-guaranteed
/// loads/stores and prefetch.
const FEATURE_KEYWORDS: &[&str] = &["ssse3", "sse2", "avx2", "avx512", "neon"];

/// A contiguous run of comments: first line, last line, accumulated text,
/// and the token count when the run last grew (a token emitted between
/// two comments splits the run, so a trailing comment after code never
/// merges with the next line's comment).
struct CommentRun {
    last: u32,
    text: String,
    ntokens: usize,
}

/// Extends the open run when `start` continues it, else opens a new one.
/// Runs let a `SAFETY:` / `ORDERING:` marker's justification span several
/// `//` lines and still be judged as one comment.
fn push_comment(runs: &mut Vec<CommentRun>, start: u32, end: u32, text: &str, ntokens: usize) {
    if let Some(run) = runs.last_mut() {
        if run.last + 1 >= start && run.ntokens == ntokens {
            run.last = end;
            run.text.push('\n');
            run.text.push_str(text);
            return;
        }
    }
    runs.push(CommentRun { last: end, text: text.to_string(), ntokens });
}

/// The line a justification run vouches from: its last line, or `None`
/// when fewer than three alphanumeric characters follow the marker — a
/// bare `// SAFETY:` or `// ORDERING: .` justifies nothing.
fn marker_line(run: &CommentRun, marker: &str) -> Option<u32> {
    let rest = &run.text[run.text.find(marker)? + marker.len()..];
    let alnum = rest.chars().filter(char::is_ascii_alphanumeric).count();
    (alnum >= 3).then_some(run.last)
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Tokenizes `src`, then marks `#[cfg(test)]` regions.
pub fn lex(src: &str) -> LexedFile {
    let b = src.as_bytes();
    let mut out = LexedFile::default();
    let mut runs: Vec<CommentRun> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                push_comment(&mut runs, line, line, &src[start..i], out.tokens.len());
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push_comment(
                    &mut runs,
                    start_line,
                    line,
                    &src[start..i.min(b.len())],
                    out.tokens.len(),
                );
            }
            b'"' => {
                // Plain string literals survive as single tokens (text
                // includes the quotes, so they can never collide with an
                // identifier) — VAQ006 inspects fault-site name literals.
                let start = i;
                let start_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    text: src[start..i.min(b.len())].to_string(),
                    line: start_line,
                    is_test: false,
                });
            }
            b'r' | b'b' if raw_or_byte_string_start(b, i).is_some() => {
                let (quote, hashes) = raw_or_byte_string_start(b, i).expect("checked");
                i = if hashes == usize::MAX {
                    // Plain byte string b"…".
                    skip_string(b, quote, &mut line)
                } else {
                    skip_raw_string(b, quote, hashes, &mut line)
                };
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => i = skip_char_literal(b, i + 1, &mut line),
            b'\'' => {
                // Lifetime or char literal.
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = match next {
                    Some(n) if is_ident_start(n) => after != Some(b'\''),
                    _ => false,
                };
                if is_lifetime {
                    i += 2;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                } else {
                    i = skip_char_literal(b, i, &mut line);
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token { text: src[start..i].to_string(), line, is_test: false });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (is_ident_continue(b[i])
                        || (b[i] == b'.'
                            && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                            && !src[start..i].contains('.')))
                {
                    i += 1;
                }
                out.tokens.push(Token { text: src[start..i].to_string(), line, is_test: false });
            }
            _ => {
                // Punctuation, one char at a time (multi-char operators are
                // matched as token sequences by the rules). Non-ASCII bytes
                // outside strings are skipped.
                if c.is_ascii() {
                    out.tokens.push(Token { text: (c as char).to_string(), line, is_test: false });
                }
                i += 1;
            }
        }
    }

    for run in &runs {
        if let Some(l) = marker_line(run, "SAFETY:") {
            out.safety_lines.push(l);
        }
        if let Some(l) = marker_line(run, "ORDERING:") {
            out.ordering_lines.push(l);
        }
        let lower = run.text.to_ascii_lowercase();
        if FEATURE_KEYWORDS.iter().any(|k| lower.contains(k)) {
            out.feature_lines.push(run.last);
        }
    }
    mark_test_regions(&mut out.tokens);
    out
}

/// Skips a `"…"` string starting at `i` (the opening quote); returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Detects `r"…"`, `r#"…"#`, `br…`, and `b"…"` starts at `i`. Returns the
/// index of the opening quote plus the hash count (`usize::MAX` marks a
/// plain byte string, handled like a normal string).
fn raw_or_byte_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut k = i;
    let mut saw_b = false;
    if b[k] == b'b' {
        saw_b = true;
        k += 1;
    }
    if b.get(k) == Some(&b'r') {
        k += 1;
        let mut hashes = 0usize;
        while b.get(k) == Some(&b'#') {
            hashes += 1;
            k += 1;
        }
        if b.get(k) == Some(&b'"') {
            return Some((k, hashes));
        }
        return None;
    }
    if saw_b && b.get(k) == Some(&b'"') {
        return Some((k, usize::MAX));
    }
    None
}

/// Skips a raw string whose opening quote is at `i` with `hashes` hashes.
fn skip_raw_string(b: &[u8], i: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut ok = true;
            for h in 0..hashes {
                if b.get(i + 1 + h) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skips a `'…'` char literal starting at the opening quote.
fn skip_char_literal(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    if b.get(i) == Some(&b'\\') {
        i += 2; // escape head; \u{…} tails are consumed by the loop below
    }
    while i < b.len() && b[i] != b'\'' {
        if b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i + 1
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let attr_end = match matching_bracket(tokens, i + 1) {
            Some(e) => e,
            None => break,
        };
        let is_cfg_test = {
            let span = &tokens[i + 1..attr_end];
            span.iter().any(|t| t.text == "cfg") && span.iter().any(|t| t.text == "test")
        };
        if !is_cfg_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut k = attr_end + 1;
        while tokens.get(k).map(|t| t.text.as_str()) == Some("#")
            && tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[")
        {
            match matching_bracket(tokens, k + 1) {
                Some(e) => k = e + 1,
                None => return,
            }
        }
        // The item extends to the matching `}` of its first body brace, or
        // to a top-level `;` for brace-less items.
        let mut depth = 0i32;
        let mut end = tokens.len().saturating_sub(1);
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    end = matching_brace(tokens, k).unwrap_or(tokens.len() - 1);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end.min(tokens.len() - 1);
        for t in tokens[i..=end].iter_mut() {
            t.is_test = true;
        }
        i = end + 1;
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let toks =
            texts("// partial_cmp in a comment\nlet s = \"partial_cmp\"; /* unsafe */ call();");
        assert!(!toks.contains(&"partial_cmp".to_string()));
        assert!(!toks.contains(&"unsafe".to_string()));
        assert!(toks.contains(&"call".to_string()));
    }

    #[test]
    fn plain_string_literals_survive_as_quoted_tokens() {
        let toks = texts("faults::fired(\"varpca.fit\"); next();");
        assert!(toks.contains(&"\"varpca.fit\"".to_string()));
        assert!(toks.contains(&"next".to_string()));
        // The quotes stay in the token text, so a literal can never be
        // mistaken for a bare identifier by the other rules.
        assert!(!toks.iter().any(|t| t == "varpca"));
    }

    #[test]
    fn multiline_string_tracks_following_lines() {
        let lexed = lex("let s = \"a\nb\";\nafter();");
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
        let lit = lexed.tokens.iter().find(|t| t.text.starts_with('"')).unwrap();
        assert_eq!(lit.line, 1);
    }

    #[test]
    fn raw_strings_are_stripped() {
        let toks = texts("let s = r#\"unwrap() \"quoted\" unsafe\"#; next();");
        assert!(!toks.contains(&"unwrap".to_string()));
        assert!(toks.contains(&"next".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = texts("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.contains(&"str".to_string()));
        // The char literal 'x' is stripped, but the lifetime does not
        // swallow the following tokens.
        let toks2 = texts("let c = 'x'; done();");
        assert!(toks2.contains(&"done".to_string()));
        assert!(!toks2.contains(&"x".to_string()));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = texts(r"let c = '\n'; let q = '\''; let u = '\u{1F600}'; end();");
        assert!(toks.contains(&"end".to_string()));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let lexed = lex("fn live() { a.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { b.unwrap(); }\n}\n\
             fn live2() { c.unwrap(); }");
        let unwraps: Vec<bool> =
            lexed.tokens.iter().filter(|t| t.text == "unwrap").map(|t| t.is_test).collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn cfg_test_with_following_attribute() {
        let lexed = lex(
            "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { b.unwrap(); }\nfn l() { c.unwrap(); }",
        );
        let unwraps: Vec<bool> =
            lexed.tokens.iter().filter(|t| t.text == "unwrap").map(|t| t.is_test).collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn safety_comment_lines_are_recorded() {
        let lexed = lex("fn f() {\n    // SAFETY: bounds checked above\n    unsafe { go() }\n}");
        assert_eq!(lexed.safety_lines, vec![2]);
    }

    #[test]
    fn empty_safety_marker_is_not_recorded() {
        // VAQ005 requires an argument: a bare marker, or one followed only
        // by punctuation, vouches for nothing.
        assert!(lex("fn f() {\n    // SAFETY:\n    unsafe { go() }\n}").safety_lines.is_empty());
        assert!(lex("fn f() {\n    // SAFETY: ..\n    unsafe { go() }\n}").safety_lines.is_empty());
        assert!(lex("fn f() {\n    /* SAFETY: */\n    unsafe { go() }\n}").safety_lines.is_empty());
    }

    #[test]
    fn multiline_safety_run_records_its_last_line() {
        // The justification continues across `//` lines; the run vouches
        // from its last line so a long comment still sits "within three
        // lines" of the code below it.
        let lexed = lex("// SAFETY: the caller pinned the buffer\n// for the whole call\n\
                         unsafe { go() }");
        assert_eq!(lexed.safety_lines, vec![2]);
        // A bare marker whose justification lives on the next comment
        // line still counts — the run is judged as one comment.
        let lexed = lex("// SAFETY:\n// bounds were checked above\nunsafe { go() }");
        assert_eq!(lexed.safety_lines, vec![2]);
    }

    #[test]
    fn code_between_comments_splits_the_run() {
        // The second comment must not inherit the first line's marker.
        let lexed = lex("// SAFETY: fine here\nuse x; // unrelated\nunsafe { go() }");
        assert_eq!(lexed.safety_lines, vec![1]);
    }

    #[test]
    fn feature_comment_lines_are_recorded() {
        let lexed = lex("fn f() {\n    // SAFETY: lane count fixed; caller verified AVX2\n    \
                         unsafe { go() }\n}");
        assert_eq!(lexed.feature_lines, vec![2]);
        // Case-insensitive, and multi-line runs vouch from their last line.
        let lexed = lex("// SAFETY: pointers stay in bounds,\n// guarded by the ssse3 probe\n\
                         unsafe { go() }");
        assert_eq!(lexed.feature_lines, vec![2]);
        // A justification that names no feature tier records nothing.
        let lexed = lex("fn f() {\n    // SAFETY: bounds checked above\n    unsafe { go() }\n}");
        assert!(lexed.feature_lines.is_empty());
    }

    #[test]
    fn ordering_comment_lines_are_recorded() {
        let lexed = lex("// ORDERING: Release pairs with the Acquire\n// load in the searcher\n\
                         v.store(1, Ordering::Release);");
        assert_eq!(lexed.ordering_lines, vec![2]);
        assert!(lex("// ORDERING:\nv.store(1, Ordering::Release);").ordering_lines.is_empty());
    }
}
