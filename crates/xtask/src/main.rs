//! `xtask` — repo automation for the VAQ workspace.
//!
//! The only subcommand today is the VAQ lint pass:
//!
//! ```sh
//! cargo run -p xtask -- lint                      # check (CI runs this)
//! cargo run -p xtask -- lint --update-allowlist   # rewrite lint.toml
//! ```
//!
//! The linter is a dependency-free, token-level scanner (see `lexer.rs`)
//! enforcing the repo-specific rules VAQ001–VAQ010 (see `rules.rs` and
//! DESIGN.md §8/§13) against every Rust source file in the workspace,
//! modulo the shrink-only allowlist in `lint.toml` (see `config.rs`).

mod config;
mod lexer;
mod rules;

use rules::{FileClass, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "xtask — VAQ workspace automation

USAGE:
  cargo run -p xtask -- lint [--update-allowlist] [--root DIR]

`lint` scans every workspace .rs file (vendored shims and build output
excluded) for the VAQ001–VAQ010 rules and checks the result against the
shrink-only allowlist in lint.toml. Exit code 1 on any violation not
covered by an exact allowance, or on an allowance wider than reality.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("lint") => match run_lint(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(args: &[String]) -> Result<ExitCode, String> {
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update-allowlist" => update = true,
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?));
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => repo_root()?,
    };

    // The active rule set, up front: a CI log should say what was checked
    // before it says what passed.
    println!("xtask lint rules:");
    for (code, desc) in rules::RULES {
        println!("  {code}  {desc}");
    }

    let files = collect_rust_files(&root)?;
    let mut violations: Vec<Violation> = Vec::new();
    let mut sites_used: Vec<&'static str> = Vec::new();
    for rel in &files {
        let abs = root.join(rel);
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        let lexed = lexer::lex(&src);
        violations.extend(rules::check_file(FileClass::new(rel), &lexed));
        // VAQ006's cross-file half: which registered sites does the
        // workspace actually arm or check? (The registry declaration in
        // faults.rs doesn't count as a use.)
        if !rel.ends_with("core/src/faults.rs") {
            for site in rules::used_fault_sites(&lexed) {
                if !sites_used.contains(&site) {
                    sites_used.push(site);
                }
            }
        }
    }
    for &site in rules::FAULT_SITES {
        if !sites_used.contains(&site) {
            violations.push(Violation {
                rule: "VAQ006",
                path: "crates/core/src/faults.rs".to_string(),
                line: 0,
                message: format!(
                    "registered fault site `{site}` is never armed or checked anywhere \
                     in the workspace — wire it into its stage or drop it from `SITES`"
                ),
            });
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let allowlist_path = root.join("lint.toml");
    if update {
        std::fs::write(&allowlist_path, config::render_allowlist(&violations))
            .map_err(|e| format!("{}: {e}", allowlist_path.display()))?;
        println!(
            "lint.toml rewritten with {} violation(s) across {} file(s) — review the diff; \
             counts may only go down",
            violations.len(),
            files.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let allow = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => config::parse_lint_toml(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", allowlist_path.display())),
    };

    let outcome = config::apply_allowlist(violations, &allow);
    for v in &outcome.unsuppressed {
        println!("{}:{}: {} {}", v.path, v.line, v.rule, v.message);
    }
    for s in &outcome.stale {
        println!("{s}");
    }
    if outcome.is_clean() {
        println!(
            "xtask lint: OK — {} file(s) scanned, {} allowlisted violation(s) remaining",
            files.len(),
            outcome.suppressed
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "xtask lint: FAILED — {} violation(s), {} stale allowance(s)",
            outcome.unsuppressed.len(),
            outcome.stale.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> Result<PathBuf, String> {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").map_err(|_| "CARGO_MANIFEST_DIR unset".to_string())?;
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .ok_or_else(|| "cannot locate the workspace root".to_string())
}

/// Directory names never descended into: build output, vendored shims
/// (external code kept dependency-free), VCS state, and result artifacts.
const SKIP_DIRS: &[&str] = &["target", "shims", ".git", "results", "related"];

/// Collects every `.rs` file under `root`, as sorted repo-relative paths
/// with forward slashes.
fn collect_rust_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}
