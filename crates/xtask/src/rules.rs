//! The VAQ lint rules, evaluated over the token stream of one file.
//!
//! | Code   | Rule |
//! |--------|------|
//! | VAQ001 | no new callers of the deprecated `lookup_tables` / `search::execute` shims outside their parity tests |
//! | VAQ002 | no `Vec<Vec<f32>>` lookup-table pattern in `crates/core` / `crates/baselines` |
//! | VAQ003 | no `partial_cmp(..).unwrap()` / `.unwrap_or(..)` and no `partial_cmp` inside sort/min/max comparators — use `total_cmp` |
//! | VAQ004 | no `unwrap()` / `expect()` in library crates outside `#[cfg(test)]` |
//! | VAQ005 | no `unsafe` without a justifying `// SAFETY:` comment (non-trivial text, within the three preceding lines) |
//! | VAQ006 | fault-site string literals (`fired`, `arm`, …) must name a site registered in `faults::SITES`, and that const must mirror the lint registry |
//! | VAQ007 | no bare `println!` / `eprintln!` in library crates — route diagnostics through `obs::event` / structured logs |
//! | VAQ008 | no direct `std::sync` / `std::thread` in `vaq-core` outside the `crate::sync` facade — loom builds must model every primitive |
//! | VAQ009 | every non-`SeqCst` atomic ordering argument needs an `// ORDERING:` justification within the three preceding lines |
//! | VAQ010 | no `as` integer casts in the serialization/kernel boundary files (`persist.rs`, `wal.rs`, `qtables.rs`, dataset `io.rs`/`largescale.rs`) — use `try_from`/`From` with a typed error |
//! | VAQ011 | `unsafe` in SIMD kernel files additionally needs a comment naming the CPU feature tier the block relies on (ssse3/sse2/avx2/avx512/neon) |
//!
//! Every rule reports a stable code so `lint.toml` allowances and CI logs
//! stay meaningful as the codebase grows. See DESIGN.md §8 and §13.

use crate::lexer::{LexedFile, Token};

/// `code → one-line summary`, printed by `xtask lint` so every CI log
/// shows which rules were active for the run.
pub const RULES: &[(&str, &str)] = &[
    ("VAQ001", "no new callers of the deprecated `lookup_tables`/`search::execute` shims"),
    ("VAQ002", "no `Vec<Vec<f32>>` lookup tables in core/baselines — use the flat `TableArena`"),
    ("VAQ003", "no NaN-unsafe `partial_cmp` unwraps or comparators — use `total_cmp`"),
    ("VAQ004", "no `unwrap()`/`expect()` in library crates outside test code"),
    ("VAQ005", "every `unsafe` needs a justifying `// SAFETY:` comment (non-trivial text)"),
    ("VAQ006", "fault-site names must match the `faults::SITES` registry exactly"),
    ("VAQ007", "no bare `println!`/`eprintln!` in library crates — use `obs::event`"),
    ("VAQ008", "no direct `std::sync`/`std::thread` in vaq-core — go through `crate::sync`"),
    ("VAQ009", "non-SeqCst atomic orderings need an `// ORDERING:` justification"),
    (
        "VAQ010",
        "no `as` integer casts in serialization/kernel boundary files — use `try_from`/`From`",
    ),
    ("VAQ011", "kernel-file `unsafe` must name its CPU feature tier (ssse3/sse2/avx2/avx512/neon)"),
];

/// Non-`SeqCst` ordering variants whose use must be justified (VAQ009).
/// `SeqCst` is the safe default; anything weaker is a claim about the
/// protocol that the comment (and the loom suite) must back up. The cmp
/// variants (`Less`, `Equal`, `Greater`) never match, so
/// `std::cmp::Ordering` code is naturally exempt.
const WEAK_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

/// Integer destination types of the `as` casts VAQ010 bans.
const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// Library crates where panicking on `Option`/`Result` is banned (VAQ004).
const LIB_CRATES: &[&str] =
    &["core", "linalg", "kmeans", "milp", "metrics", "dataset", "baselines", "index"];

/// Comparator-taking functions whose argument must be NaN-safe (VAQ003).
const COMPARATOR_FNS: &[&str] =
    &["sort_by", "sort_unstable_by", "max_by", "min_by", "binary_search_by"];

/// The fault-site registry, mirrored from `vaq-core`'s `faults::SITES`
/// (VAQ006 verifies the two stay identical). A typo'd site name compiles
/// fine but never fires — this list is what catches it.
pub const FAULT_SITES: &[&str] = &[
    "ingress.validate",
    "varpca.fit",
    "subspaces.plan",
    "allocation.milp",
    "dictionary.train",
    "ti.build",
    "persist.from_bytes",
    "persist.wal_append",
    "persist.commit",
    "persist.fsync",
    "persist.mmap",
    "engine.prepare",
    "engine.search",
    "engine.qscan",
    "segment.seal",
    "segment.compact",
];

/// Functions whose first string-literal argument names a fault site
/// (VAQ006): the runtime triggers, the arming API, and test helpers.
const FAULT_FNS: &[&str] = &["fired", "arm", "with_armed", "fault_point"];

/// What the path tells us about a file. Paths are repo-relative with
/// forward slashes.
#[derive(Debug, Clone, Copy)]
pub struct FileClass<'a> {
    path: &'a str,
}

impl<'a> FileClass<'a> {
    pub fn new(path: &'a str) -> FileClass<'a> {
        FileClass { path }
    }

    /// Test-only source: integration tests and benches directories.
    fn in_test_dir(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.contains("/benches/")
            || self.path.starts_with("tests/")
            || self.path.starts_with("benches/")
    }

    /// Library source of a production crate (no bins, no examples).
    fn is_library_src(&self) -> bool {
        if self.path.contains("/bin/") || self.path.contains("examples/") {
            return false;
        }
        if self.path.starts_with("src/") {
            return true; // the root facade crate
        }
        LIB_CRATES.iter().any(|c| self.path.starts_with(&format!("crates/{c}/src/")))
    }

    /// Inside the crates the `Vec<Vec<f32>>` ban applies to.
    fn in_table_banned_crate(&self) -> bool {
        self.path.starts_with("crates/core/src/") || self.path.starts_with("crates/baselines/src/")
    }

    /// `vaq-core` library source, where every sync/thread primitive must
    /// come through the `crate::sync` facade (VAQ008).
    fn in_core_src(&self) -> bool {
        self.path.starts_with("crates/core/src/")
    }

    /// The one file allowed to name `std::sync` / `std::thread` directly:
    /// the facade that maps them to loom under `cfg(loom)`.
    fn is_sync_facade(&self) -> bool {
        self.path == "crates/core/src/sync.rs"
    }

    /// Serialization/kernel boundary files where `as` integer casts are
    /// banned (VAQ010): every length there is attacker-controlled or
    /// feeds an unsafe kernel, so conversions must be checked. The WAL
    /// and the dataset readers/writers parse the same class of untrusted
    /// on-disk input as the manifest loader.
    fn in_cast_banned_file(&self) -> bool {
        self.path.ends_with("core/src/persist.rs")
            || self.path.ends_with("core/src/segment/wal.rs")
            || self.path.ends_with("linalg/src/qtables.rs")
            || self.path.ends_with("dataset/src/io.rs")
            || self.path.ends_with("dataset/src/largescale.rs")
    }

    /// SIMD kernel files where every `unsafe` must also name the CPU
    /// feature tier it relies on (VAQ011): the SAFETY argument for an
    /// intrinsic block is only checkable against the dispatch layer when
    /// it says *which* runtime-verified feature makes it sound.
    fn in_kernel_file(&self) -> bool {
        self.path.ends_with("linalg/src/qtables.rs")
    }
}

/// Runs every rule over one lexed file.
pub fn check_file(class: FileClass<'_>, lexed: &LexedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;

    let push = |out: &mut Vec<Violation>, rule: &'static str, line: u32, message: String| {
        // One diagnostic per (rule, line): composed patterns (e.g. a
        // sort_by whose comparator also calls .unwrap()) fire once.
        if !out.iter().any(|v: &Violation| v.rule == rule && v.line == line) {
            out.push(Violation { rule, path: class.path.to_string(), line, message });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        // ---- VAQ005: unsafe without a SAFETY comment (applies everywhere,
        // including test code).
        if t.text == "unsafe" {
            let documented = lexed.safety_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
            if !documented {
                push(
                    &mut out,
                    "VAQ005",
                    t.line,
                    "`unsafe` without a justifying `// SAFETY:` comment on the preceding \
                     lines (an empty marker does not count)"
                        .into(),
                );
            }
            // ---- VAQ011: in kernel files the justification must also name
            // the CPU feature tier (applies everywhere, including test
            // code, same as VAQ005).
            if class.in_kernel_file() {
                let named = lexed.feature_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
                if !named {
                    push(
                        &mut out,
                        "VAQ011",
                        t.line,
                        "`unsafe` in a SIMD kernel file whose comment names no CPU feature \
                         tier (ssse3/sse2/avx2/avx512/neon) — state which runtime-verified \
                         feature makes the block sound"
                            .into(),
                    );
                }
            }
        }

        // ---- VAQ008: direct std sync/thread primitives in vaq-core
        // (applies everywhere, including test code — `#[cfg(test)]`
        // modules compile under `RUSTFLAGS="--cfg loom"` too, and an
        // unmodeled primitive silently escapes the model checker).
        if class.in_core_src()
            && !class.is_sync_facade()
            && t.text == "std"
            && matches(toks, i + 1, &[":", ":"])
            && toks.get(i + 3).is_some_and(|n| n.text == "sync" || n.text == "thread")
        {
            push(
                &mut out,
                "VAQ008",
                t.line,
                format!(
                    "direct `std::{}` in vaq-core; import through `crate::sync` so \
                     loom builds model the primitive",
                    toks[i + 3].text
                ),
            );
        }

        // ---- VAQ006: fault-site name literals must be registered (applies
        // everywhere, including test code — a typo'd site compiles fine but
        // never fires, silently disarming the chaos coverage).
        if FAULT_FNS.contains(&t.text.as_str()) {
            let open =
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some("!") { i + 2 } else { i + 1 };
            if toks.get(open).map(|n| n.text.as_str()) == Some("(") {
                if let Some(site) = toks
                    .get(open + 1)
                    .and_then(|n| n.text.strip_prefix('"'))
                    .and_then(|s| s.strip_suffix('"'))
                {
                    if !FAULT_SITES.contains(&site) {
                        push(
                            &mut out,
                            "VAQ006",
                            t.line,
                            format!("fault site `{site}` is not registered in `faults::SITES`"),
                        );
                    }
                }
            }
        }

        if t.is_test || class.in_test_dir() {
            continue;
        }

        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());

        // ---- VAQ001: deprecated shim callers.
        if t.text == "lookup_tables" && prev != Some("fn") {
            push(
                &mut out,
                "VAQ001",
                t.line,
                "call to deprecated `lookup_tables` shim; fill a `TableArena` via \
                 `QueryEngine`/`fill_tables` instead"
                    .into(),
            );
        }
        if t.text == "execute"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "search"
        {
            push(
                &mut out,
                "VAQ001",
                t.line,
                "call to deprecated `search::execute` shim; use `QueryEngine::search_with`".into(),
            );
        }

        // ---- VAQ002: nested-Vec lookup tables in core/baselines.
        if class.in_table_banned_crate()
            && t.text == "Vec"
            && matches(toks, i + 1, &["<", "Vec", "<", "f32"])
        {
            push(
                &mut out,
                "VAQ002",
                t.line,
                "`Vec<Vec<f32>>` lookup tables are banned; use the flat `TableArena`".into(),
            );
        }

        // ---- VAQ003a: partial_cmp(..).unwrap() / .unwrap_or(..).
        if t.text == "partial_cmp" && prev != Some("fn") {
            if let Some(close) = skip_balanced_parens(toks, i + 1) {
                let method = toks.get(close + 2).map(|n| n.text.as_str());
                if toks.get(close + 1).map(|n| n.text.as_str()) == Some(".")
                    && matches!(method, Some("unwrap" | "unwrap_or"))
                {
                    // `.unwrap()` panics on NaN; `.unwrap_or(Equal)` silently
                    // makes NaN compare equal to everything, which breaks the
                    // strict-weak-ordering contract of sorts and heaps.
                    push(
                        &mut out,
                        "VAQ003",
                        t.line,
                        format!(
                            "`partial_cmp(..).{}()` is NaN-unsafe; use `total_cmp`",
                            method.unwrap_or_default()
                        ),
                    );
                }
            }
        }

        // ---- VAQ003b: partial_cmp anywhere inside a comparator closure.
        if COMPARATOR_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        {
            if let Some(close) = skip_balanced_parens(toks, i + 1) {
                if toks[i + 1..close].iter().any(|x| x.text == "partial_cmp") {
                    push(
                        &mut out,
                        "VAQ003",
                        t.line,
                        format!(
                            "NaN-unsafe comparator: `partial_cmp` inside `{}`; use `total_cmp`",
                            t.text
                        ),
                    );
                }
            }
        }

        // ---- VAQ007: bare stdout/stderr printing in library code. Library
        // crates report through `Result`s, `obs::event`, or the degradation
        // log — never by writing to the process streams, which callers
        // cannot capture, rate-limit, or machine-parse.
        if class.is_library_src()
            && (t.text == "println" || t.text == "eprintln")
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            push(
                &mut out,
                "VAQ007",
                t.line,
                format!(
                    "bare `{}!` in library code; emit a structured `obs::event` \
                     (or return the message in a `Result`) instead",
                    t.text
                ),
            );
        }

        // ---- VAQ004: unwrap/expect in library code.
        if class.is_library_src() && (t.text == "unwrap" || t.text == "expect") && prev == Some(".")
        {
            push(
                &mut out,
                "VAQ004",
                t.line,
                format!(
                    "`.{}()` in library code; propagate a `Result` (or budget it in lint.toml)",
                    t.text
                ),
            );
        }

        // ---- VAQ009: weak atomic orderings must be argued. A missing
        // comment usually means the ordering was guessed; the loom suite
        // can prove the protocol, but only the comment says what the
        // protocol *is*.
        if class.is_library_src()
            && t.text == "Ordering"
            && matches(toks, i + 1, &[":", ":"])
            && toks.get(i + 3).is_some_and(|n| WEAK_ORDERINGS.contains(&n.text.as_str()))
        {
            let justified = lexed.ordering_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
            if !justified {
                push(
                    &mut out,
                    "VAQ009",
                    t.line,
                    format!(
                        "`Ordering::{}` without an `// ORDERING:` justification on the \
                         preceding lines — name the pairing store/load (or use `SeqCst`)",
                        toks[i + 3].text
                    ),
                );
            }
        }

        // ---- VAQ010: lossy-looking `as` integer casts in the boundary
        // files. `use x as y` aliases never name a primitive integer, so
        // only real casts match.
        if class.in_cast_banned_file()
            && t.text == "as"
            && toks.get(i + 1).is_some_and(|n| INT_TYPES.contains(&n.text.as_str()))
        {
            push(
                &mut out,
                "VAQ010",
                t.line,
                format!(
                    "`as {}` cast in a serialization/kernel boundary file; convert with \
                     `try_from`/`From` and report a typed error",
                    toks[i + 1].text
                ),
            );
        }
    }

    // ---- VAQ006 (registry sync): the `SITES` const in faults.rs must
    // list exactly the sites this lint knows about, so the two registries
    // cannot drift apart.
    if class.path.ends_with("core/src/faults.rs") {
        if let Some(decl) = toks.iter().position(|t| t.text == "SITES") {
            let declared: Vec<&str> = toks[decl..]
                .iter()
                .take_while(|t| t.text != ";")
                .filter_map(|t| t.text.strip_prefix('"').and_then(|s| s.strip_suffix('"')))
                .collect();
            let missing: Vec<&&str> =
                FAULT_SITES.iter().filter(|s| !declared.contains(s)).collect();
            let extra: Vec<&&str> = declared.iter().filter(|s| !FAULT_SITES.contains(s)).collect();
            if !missing.is_empty() || !extra.is_empty() {
                push(
                    &mut out,
                    "VAQ006",
                    toks[decl].line,
                    format!(
                        "faults::SITES disagrees with the lint registry \
                         (missing {missing:?}, unexpected {extra:?}); update \
                         xtask rules::FAULT_SITES together with faults.rs"
                    ),
                );
            }
        }
    }
    out
}

/// Registered fault sites referenced by this file through any of the
/// [`FAULT_FNS`] call forms. `main` aggregates these across the workspace
/// to flag registry entries nothing ever arms or checks.
pub fn used_fault_sites(lexed: &LexedFile) -> Vec<&'static str> {
    let toks = &lexed.tokens;
    let mut used = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !FAULT_FNS.contains(&t.text.as_str()) {
            continue;
        }
        let open =
            if toks.get(i + 1).map(|n| n.text.as_str()) == Some("!") { i + 2 } else { i + 1 };
        if toks.get(open).map(|n| n.text.as_str()) != Some("(") {
            continue;
        }
        if let Some(site) = toks
            .get(open + 1)
            .and_then(|n| n.text.strip_prefix('"'))
            .and_then(|s| s.strip_suffix('"'))
        {
            if let Some(&known) = FAULT_SITES.iter().find(|&&s| s == site) {
                if !used.contains(&known) {
                    used.push(known);
                }
            }
        }
    }
    used
}

/// True when the tokens starting at `start` spell out `pattern`.
fn matches(toks: &[Token], start: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| toks.get(start + k).is_some_and(|t| t.text == *want))
}

/// If `open` indexes a `(`, returns the index of its matching `)`.
fn skip_balanced_parens(toks: &[Token], open: usize) -> Option<usize> {
    if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(FileClass::new(path), &lex(src))
    }

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        check(path, src).into_iter().map(|v| v.rule).collect()
    }

    const LIB: &str = "crates/core/src/example.rs";

    #[test]
    fn deprecated_shim_call_is_vaq001() {
        let v = check(LIB, "fn f(e: &Encoder, q: &[f32]) { let t = e.lookup_tables(q); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "VAQ001");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn deprecated_execute_call_is_vaq001() {
        assert_eq!(
            codes(LIB, "fn f() { let hits = crate::search::execute(&view, q, 5); }"),
            vec!["VAQ001"]
        );
    }

    #[test]
    fn shim_definition_is_exempt() {
        assert!(codes(LIB, "pub fn lookup_tables(&self) {}").is_empty());
        assert!(codes(LIB, "pub fn execute(view: &IndexView) {}").is_empty());
    }

    #[test]
    fn shim_call_in_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(e: &Encoder) { e.lookup_tables(q); }\n}";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn nested_vec_tables_are_vaq002_in_core_only() {
        let src = "fn f() -> Vec<Vec<f32>> { vec![] }";
        // The definition line also trips no other rule.
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["VAQ002"]);
        assert_eq!(codes("crates/baselines/src/x.rs", src), vec!["VAQ002"]);
        assert!(codes("crates/bench/src/x.rs", src).is_empty());
    }

    /// A path outside the library crates, so `.unwrap()` itself (VAQ004)
    /// stays out of the picture.
    const BIN: &str = "crates/bench/src/bin/example.rs";

    #[test]
    fn partial_cmp_unwrap_is_vaq003() {
        assert_eq!(
            codes(BIN, "fn f(a: f32, b: f32) { let o = a.partial_cmp(&b).unwrap(); let _ = o; }"),
            vec!["VAQ003"]
        );
    }

    #[test]
    fn partial_cmp_sort_is_vaq003_once() {
        // sort_by + partial_cmp + unwrap on one line still reports once.
        let v = check(BIN, "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "VAQ003");
    }

    #[test]
    fn library_partial_cmp_unwrap_trips_both_rules() {
        let mut c = codes(LIB, "fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap(); }");
        c.sort_unstable();
        assert_eq!(c, vec!["VAQ003", "VAQ004"]);
    }

    #[test]
    fn partial_cmp_unwrap_or_in_comparator_is_vaq003() {
        let src = "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(O::Equal)); }";
        assert_eq!(codes(LIB, src), vec!["VAQ003"]);
    }

    #[test]
    fn partial_cmp_unwrap_or_outside_comparator_is_vaq003() {
        // The `.unwrap_or(Equal)` spelling never panics, but it makes NaN
        // compare equal to everything — same hazard, same rule.
        let src = "fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap_or(O::Equal); }";
        assert_eq!(codes(BIN, src), vec!["VAQ003"]);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        assert!(codes(LIB, "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
    }

    #[test]
    fn partial_cmp_in_ord_impl_is_allowed() {
        // `fn partial_cmp` definitions and unwrap_or-based Ord impls pass.
        let src = "impl PartialOrd for N { fn partial_cmp(&self, o: &N) -> Option<Ordering> { \
                   Some(self.cmp(o)) } }";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn library_unwrap_is_vaq004() {
        assert_eq!(codes(LIB, "fn f(x: Option<u8>) { x.unwrap(); }"), vec!["VAQ004"]);
        assert_eq!(codes(LIB, "fn f(x: Option<u8>) { x.expect(\"set\"); }"), vec!["VAQ004"]);
    }

    #[test]
    fn unwrap_or_is_not_vaq004() {
        assert!(codes(LIB, "fn f(x: Option<u8>) { x.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn bench_and_test_unwrap_are_exempt() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(codes("crates/bench/src/bin/tool.rs", src).is_empty());
        assert!(codes("crates/core/tests/props.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(codes(LIB, test_mod).is_empty());
    }

    #[test]
    fn library_println_is_vaq007() {
        assert_eq!(codes(LIB, "fn f() { println!(\"ready\"); }"), vec!["VAQ007"]);
        assert_eq!(codes(LIB, "fn f() { eprintln!(\"warn: {x}\"); }"), vec!["VAQ007"]);
    }

    #[test]
    fn println_outside_library_src_is_exempt() {
        let src = "fn f() { println!(\"progress\"); eprintln!(\"err\"); }";
        // Binaries and examples print by design; tests print for debugging.
        assert!(codes(BIN, src).is_empty());
        assert!(codes("crates/core/tests/props.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { println!(\"dbg\"); }\n}";
        assert!(codes(LIB, test_mod).is_empty());
    }

    #[test]
    fn println_identifier_without_bang_is_not_vaq007() {
        // A plain identifier (e.g. a local fn named `println`) is not the
        // macro; only the `println !` token pair trips the rule.
        assert!(codes(LIB, "fn f() { let println = 3; let _ = println; }").is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_vaq005() {
        assert_eq!(codes(LIB, "fn f() { unsafe { go() } }"), vec!["VAQ005"]);
    }

    #[test]
    fn documented_unsafe_is_clean() {
        let src = "fn f() {\n    // SAFETY: bounds checked above\n    unsafe { go() }\n}";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn unsafe_in_string_is_ignored() {
        assert!(codes(LIB, "fn f() { let s = \"unsafe { }\"; }").is_empty());
    }

    #[test]
    fn empty_safety_marker_is_still_vaq005() {
        // The marker alone no longer satisfies the rule; the justification
        // text is what the audit reads.
        let src = "fn f() {\n    // SAFETY:\n    unsafe { go() }\n}";
        assert_eq!(codes(LIB, src), vec!["VAQ005"]);
    }

    #[test]
    fn multiline_safety_justification_is_clean() {
        let src = "fn f() {\n    // SAFETY: the match guard verified the\n    \
                   // CPU feature at runtime\n    unsafe { go() }\n}";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn direct_std_sync_in_core_is_vaq008() {
        assert_eq!(codes(LIB, "use std::sync::Mutex;"), vec!["VAQ008"]);
        assert_eq!(codes(LIB, "fn f() { std::thread::spawn(|| {}); }"), vec!["VAQ008"]);
        // Test modules are NOT exempt: they compile under --cfg loom too.
        let test_mod = "#[cfg(test)]\nmod tests {\n use std::sync::Arc;\n}";
        assert_eq!(codes(LIB, test_mod), vec!["VAQ008"]);
    }

    #[test]
    fn std_sync_outside_core_or_in_facade_is_exempt() {
        let src = "use std::sync::Mutex;";
        assert!(codes("crates/core/src/sync.rs", src).is_empty());
        assert!(codes("crates/bench/src/bin/tool.rs", src).is_empty());
        assert!(codes("crates/index/src/dstree.rs", src).is_empty());
        // `crate::sync` and other std modules in core stay clean.
        assert!(codes(LIB, "use crate::sync::Mutex; use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn unjustified_weak_ordering_is_vaq009() {
        let src = "fn f(v: &AtomicU64) { v.load(Ordering::Acquire); }";
        let v = check(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "VAQ009");
        assert_eq!(v[0].line, 1);
        assert_eq!(
            codes(LIB, "fn f(v: &AtomicU64) { v.store(3, Ordering::Relaxed); }"),
            vec!["VAQ009"]
        );
    }

    #[test]
    fn justified_or_seqcst_ordering_is_clean() {
        let src = "fn f(v: &AtomicU64) {\n    // ORDERING: Acquire pairs with the Release\n    \
                   // bump in `install`.\n    v.load(Ordering::Acquire);\n}";
        assert!(codes(LIB, src).is_empty());
        assert!(codes(LIB, "fn f(v: &AtomicU64) { v.load(Ordering::SeqCst); }").is_empty());
        // An empty marker is as good as no marker.
        let bare = "fn f(v: &AtomicU64) {\n    // ORDERING:\n    v.load(Ordering::Acquire);\n}";
        assert_eq!(codes(LIB, bare), vec!["VAQ009"]);
    }

    #[test]
    fn cmp_ordering_and_test_code_are_exempt_from_vaq009() {
        assert!(codes(LIB, "fn f(a: &N, o: &N) -> bool { a.cmp(o) == Ordering::Less }").is_empty());
        let test_mod =
            "#[cfg(test)]\nmod tests {\n fn t(v: &AtomicU64) { v.load(Ordering::Relaxed); }\n}";
        assert!(codes(LIB, test_mod).is_empty());
        assert!(codes(
            "crates/core/tests/model.rs",
            "fn t(v: &AtomicU64) { \
             v.load(Ordering::Relaxed); }"
        )
        .is_empty());
    }

    #[test]
    fn integer_cast_in_boundary_files_is_vaq010() {
        let src = "fn f(v: u64) -> usize { v as usize }";
        let v = check("crates/core/src/persist.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "VAQ010");
        assert_eq!(v[0].line, 1);
        assert_eq!(
            codes("crates/linalg/src/qtables.rs", "fn f(c: u16) -> u8 { c as u8 }"),
            vec!["VAQ010"]
        );
        assert_eq!(
            codes("crates/dataset/src/io.rs", "fn f(n: usize) -> i32 { n as i32 }"),
            vec!["VAQ010"]
        );
        assert_eq!(
            codes("crates/core/src/segment/wal.rs", "fn f(n: u64) -> u32 { n as u32 }"),
            vec!["VAQ010"]
        );
    }

    #[test]
    fn casts_elsewhere_and_checked_conversions_are_exempt_from_vaq010() {
        assert!(codes(LIB, "fn f(v: u64) -> usize { v as usize }").is_empty());
        let p = "crates/core/src/persist.rs";
        assert!(
            codes(p, "use bytes::Buf as B; fn f(v: u16) -> usize { usize::from(v) }").is_empty()
        );
        assert!(codes(p, "fn f(x: usize) -> f32 { x as f32 }").is_empty()); // float, not integer
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t(v: u64) -> usize { v as usize }\n}";
        assert!(codes(p, test_mod).is_empty());
    }

    #[test]
    fn rule_table_covers_every_emitted_code() {
        for (code, _) in RULES {
            assert!(code.starts_with("VAQ"), "{code}");
        }
        assert_eq!(RULES.len(), 11);
    }

    #[test]
    fn kernel_unsafe_without_feature_comment_is_vaq011() {
        let k = "crates/linalg/src/qtables.rs";
        // SAFETY text present but no feature tier named: VAQ005 passes,
        // VAQ011 fires.
        let src = "fn f() {\n    // SAFETY: pointer stays in bounds\n    unsafe { go() }\n}";
        assert_eq!(codes(k, src), vec!["VAQ011"]);
        // Naming the tier in the same run satisfies both rules.
        let good = "fn f() {\n    // SAFETY: lanes stay in bounds; caller verified AVX2\n    \
                    unsafe { go() }\n}";
        assert!(codes(k, good).is_empty());
        // Test code in kernel files is NOT exempt (same as VAQ005).
        let test_mod = "#[cfg(test)]\nmod tests {\n // SAFETY: fine\n unsafe { go() }\n}";
        assert_eq!(codes(k, test_mod), vec!["VAQ011"]);
        // Outside kernel files only VAQ005 applies.
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn unregistered_fault_site_is_vaq006() {
        assert_eq!(
            codes(LIB, "fn f() { if faults::fired(\"varpca.fitt\") { return; } }"),
            vec!["VAQ006"]
        );
        assert!(codes(LIB, "fn f() { if faults::fired(\"varpca.fit\") { return; } }").is_empty());
    }

    #[test]
    fn fault_site_rule_applies_inside_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { arm(\"nope.site\", Trigger::Always); }\n}";
        assert_eq!(codes(LIB, src), vec!["VAQ006"]);
    }

    #[test]
    fn macro_form_and_non_literal_fault_args() {
        assert_eq!(codes(LIB, "fn f() { fault_point!(\"bogus.site\"); }"), vec!["VAQ006"]);
        assert!(codes(LIB, "fn f(site: &str) { if faults::fired(site) { return; } }").is_empty());
    }

    #[test]
    fn sites_const_must_match_the_lint_registry() {
        let path = "crates/core/src/faults.rs";
        let good = format!(
            "pub const SITES: &[&str] = &[{}];",
            FAULT_SITES.iter().map(|s| format!("{s:?}")).collect::<Vec<_>>().join(", ")
        );
        assert!(codes(path, &good).is_empty());
        let bad = "pub const SITES: &[&str] = &[\"ingress.validate\", \"made.up\"];";
        assert_eq!(codes(path, bad), vec!["VAQ006"]);
    }

    #[test]
    fn used_fault_sites_are_collected_once_each() {
        let lexed = lex("fn f() { if fired(\"varpca.fit\") { } arm(\"ti.build\", T); \
             fired(\"varpca.fit\"); fired(\"bogus.site\"); }");
        assert_eq!(used_fault_sites(&lexed), vec!["varpca.fit", "ti.build"]);
    }
}
