//! The VAQ lint rules, evaluated over the token stream of one file.
//!
//! | Code   | Rule |
//! |--------|------|
//! | VAQ001 | no new callers of the deprecated `lookup_tables` / `search::execute` shims outside their parity tests |
//! | VAQ002 | no `Vec<Vec<f32>>` lookup-table pattern in `crates/core` / `crates/baselines` |
//! | VAQ003 | no `partial_cmp(..).unwrap()` / `.unwrap_or(..)` and no `partial_cmp` inside sort/min/max comparators — use `total_cmp` |
//! | VAQ004 | no `unwrap()` / `expect()` in library crates outside `#[cfg(test)]` |
//! | VAQ005 | no `unsafe` without a `// SAFETY:` comment within the three preceding lines |
//! | VAQ006 | fault-site string literals (`fired`, `arm`, …) must name a site registered in `faults::SITES`, and that const must mirror the lint registry |
//! | VAQ007 | no bare `println!` / `eprintln!` in library crates — route diagnostics through `obs::event` / structured logs |
//!
//! Every rule reports a stable code so `lint.toml` allowances and CI logs
//! stay meaningful as the codebase grows. See DESIGN.md §8.

use crate::lexer::{LexedFile, Token};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// Library crates where panicking on `Option`/`Result` is banned (VAQ004).
const LIB_CRATES: &[&str] =
    &["core", "linalg", "kmeans", "milp", "metrics", "dataset", "baselines", "index"];

/// Comparator-taking functions whose argument must be NaN-safe (VAQ003).
const COMPARATOR_FNS: &[&str] =
    &["sort_by", "sort_unstable_by", "max_by", "min_by", "binary_search_by"];

/// The fault-site registry, mirrored from `vaq-core`'s `faults::SITES`
/// (VAQ006 verifies the two stay identical). A typo'd site name compiles
/// fine but never fires — this list is what catches it.
pub const FAULT_SITES: &[&str] = &[
    "ingress.validate",
    "varpca.fit",
    "subspaces.plan",
    "allocation.milp",
    "dictionary.train",
    "ti.build",
    "persist.from_bytes",
    "engine.prepare",
    "engine.search",
    "engine.qscan",
    "segment.seal",
    "segment.compact",
];

/// Functions whose first string-literal argument names a fault site
/// (VAQ006): the runtime triggers, the arming API, and test helpers.
const FAULT_FNS: &[&str] = &["fired", "arm", "with_armed", "fault_point"];

/// What the path tells us about a file. Paths are repo-relative with
/// forward slashes.
#[derive(Debug, Clone, Copy)]
pub struct FileClass<'a> {
    path: &'a str,
}

impl<'a> FileClass<'a> {
    pub fn new(path: &'a str) -> FileClass<'a> {
        FileClass { path }
    }

    /// Test-only source: integration tests and benches directories.
    fn in_test_dir(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.contains("/benches/")
            || self.path.starts_with("tests/")
            || self.path.starts_with("benches/")
    }

    /// Library source of a production crate (no bins, no examples).
    fn is_library_src(&self) -> bool {
        if self.path.contains("/bin/") || self.path.contains("examples/") {
            return false;
        }
        if self.path.starts_with("src/") {
            return true; // the root facade crate
        }
        LIB_CRATES.iter().any(|c| self.path.starts_with(&format!("crates/{c}/src/")))
    }

    /// Inside the crates the `Vec<Vec<f32>>` ban applies to.
    fn in_table_banned_crate(&self) -> bool {
        self.path.starts_with("crates/core/src/") || self.path.starts_with("crates/baselines/src/")
    }
}

/// Runs every rule over one lexed file.
pub fn check_file(class: FileClass<'_>, lexed: &LexedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;

    let push = |out: &mut Vec<Violation>, rule: &'static str, line: u32, message: String| {
        // One diagnostic per (rule, line): composed patterns (e.g. a
        // sort_by whose comparator also calls .unwrap()) fire once.
        if !out.iter().any(|v: &Violation| v.rule == rule && v.line == line) {
            out.push(Violation { rule, path: class.path.to_string(), line, message });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        // ---- VAQ005: unsafe without a SAFETY comment (applies everywhere,
        // including test code).
        if t.text == "unsafe" {
            let documented = lexed.safety_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
            if !documented {
                push(
                    &mut out,
                    "VAQ005",
                    t.line,
                    "`unsafe` without a `// SAFETY:` comment on the preceding lines".into(),
                );
            }
        }

        // ---- VAQ006: fault-site name literals must be registered (applies
        // everywhere, including test code — a typo'd site compiles fine but
        // never fires, silently disarming the chaos coverage).
        if FAULT_FNS.contains(&t.text.as_str()) {
            let open =
                if toks.get(i + 1).map(|n| n.text.as_str()) == Some("!") { i + 2 } else { i + 1 };
            if toks.get(open).map(|n| n.text.as_str()) == Some("(") {
                if let Some(site) = toks
                    .get(open + 1)
                    .and_then(|n| n.text.strip_prefix('"'))
                    .and_then(|s| s.strip_suffix('"'))
                {
                    if !FAULT_SITES.contains(&site) {
                        push(
                            &mut out,
                            "VAQ006",
                            t.line,
                            format!("fault site `{site}` is not registered in `faults::SITES`"),
                        );
                    }
                }
            }
        }

        if t.is_test || class.in_test_dir() {
            continue;
        }

        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());

        // ---- VAQ001: deprecated shim callers.
        if t.text == "lookup_tables" && prev != Some("fn") {
            push(
                &mut out,
                "VAQ001",
                t.line,
                "call to deprecated `lookup_tables` shim; fill a `TableArena` via \
                 `QueryEngine`/`fill_tables` instead"
                    .into(),
            );
        }
        if t.text == "execute"
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "search"
        {
            push(
                &mut out,
                "VAQ001",
                t.line,
                "call to deprecated `search::execute` shim; use `QueryEngine::search_with`".into(),
            );
        }

        // ---- VAQ002: nested-Vec lookup tables in core/baselines.
        if class.in_table_banned_crate()
            && t.text == "Vec"
            && matches(toks, i + 1, &["<", "Vec", "<", "f32"])
        {
            push(
                &mut out,
                "VAQ002",
                t.line,
                "`Vec<Vec<f32>>` lookup tables are banned; use the flat `TableArena`".into(),
            );
        }

        // ---- VAQ003a: partial_cmp(..).unwrap() / .unwrap_or(..).
        if t.text == "partial_cmp" && prev != Some("fn") {
            if let Some(close) = skip_balanced_parens(toks, i + 1) {
                let method = toks.get(close + 2).map(|n| n.text.as_str());
                if toks.get(close + 1).map(|n| n.text.as_str()) == Some(".")
                    && matches!(method, Some("unwrap" | "unwrap_or"))
                {
                    // `.unwrap()` panics on NaN; `.unwrap_or(Equal)` silently
                    // makes NaN compare equal to everything, which breaks the
                    // strict-weak-ordering contract of sorts and heaps.
                    push(
                        &mut out,
                        "VAQ003",
                        t.line,
                        format!(
                            "`partial_cmp(..).{}()` is NaN-unsafe; use `total_cmp`",
                            method.unwrap_or_default()
                        ),
                    );
                }
            }
        }

        // ---- VAQ003b: partial_cmp anywhere inside a comparator closure.
        if COMPARATOR_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        {
            if let Some(close) = skip_balanced_parens(toks, i + 1) {
                if toks[i + 1..close].iter().any(|x| x.text == "partial_cmp") {
                    push(
                        &mut out,
                        "VAQ003",
                        t.line,
                        format!(
                            "NaN-unsafe comparator: `partial_cmp` inside `{}`; use `total_cmp`",
                            t.text
                        ),
                    );
                }
            }
        }

        // ---- VAQ007: bare stdout/stderr printing in library code. Library
        // crates report through `Result`s, `obs::event`, or the degradation
        // log — never by writing to the process streams, which callers
        // cannot capture, rate-limit, or machine-parse.
        if class.is_library_src()
            && (t.text == "println" || t.text == "eprintln")
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            push(
                &mut out,
                "VAQ007",
                t.line,
                format!(
                    "bare `{}!` in library code; emit a structured `obs::event` \
                     (or return the message in a `Result`) instead",
                    t.text
                ),
            );
        }

        // ---- VAQ004: unwrap/expect in library code.
        if class.is_library_src() && (t.text == "unwrap" || t.text == "expect") && prev == Some(".")
        {
            push(
                &mut out,
                "VAQ004",
                t.line,
                format!(
                    "`.{}()` in library code; propagate a `Result` (or budget it in lint.toml)",
                    t.text
                ),
            );
        }
    }

    // ---- VAQ006 (registry sync): the `SITES` const in faults.rs must
    // list exactly the sites this lint knows about, so the two registries
    // cannot drift apart.
    if class.path.ends_with("core/src/faults.rs") {
        if let Some(decl) = toks.iter().position(|t| t.text == "SITES") {
            let declared: Vec<&str> = toks[decl..]
                .iter()
                .take_while(|t| t.text != ";")
                .filter_map(|t| t.text.strip_prefix('"').and_then(|s| s.strip_suffix('"')))
                .collect();
            let missing: Vec<&&str> =
                FAULT_SITES.iter().filter(|s| !declared.contains(s)).collect();
            let extra: Vec<&&str> = declared.iter().filter(|s| !FAULT_SITES.contains(s)).collect();
            if !missing.is_empty() || !extra.is_empty() {
                push(
                    &mut out,
                    "VAQ006",
                    toks[decl].line,
                    format!(
                        "faults::SITES disagrees with the lint registry \
                         (missing {missing:?}, unexpected {extra:?}); update \
                         xtask rules::FAULT_SITES together with faults.rs"
                    ),
                );
            }
        }
    }
    out
}

/// Registered fault sites referenced by this file through any of the
/// [`FAULT_FNS`] call forms. `main` aggregates these across the workspace
/// to flag registry entries nothing ever arms or checks.
pub fn used_fault_sites(lexed: &LexedFile) -> Vec<&'static str> {
    let toks = &lexed.tokens;
    let mut used = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !FAULT_FNS.contains(&t.text.as_str()) {
            continue;
        }
        let open =
            if toks.get(i + 1).map(|n| n.text.as_str()) == Some("!") { i + 2 } else { i + 1 };
        if toks.get(open).map(|n| n.text.as_str()) != Some("(") {
            continue;
        }
        if let Some(site) = toks
            .get(open + 1)
            .and_then(|n| n.text.strip_prefix('"'))
            .and_then(|s| s.strip_suffix('"'))
        {
            if let Some(&known) = FAULT_SITES.iter().find(|&&s| s == site) {
                if !used.contains(&known) {
                    used.push(known);
                }
            }
        }
    }
    used
}

/// True when the tokens starting at `start` spell out `pattern`.
fn matches(toks: &[Token], start: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| toks.get(start + k).is_some_and(|t| t.text == *want))
}

/// If `open` indexes a `(`, returns the index of its matching `)`.
fn skip_balanced_parens(toks: &[Token], open: usize) -> Option<usize> {
    if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(FileClass::new(path), &lex(src))
    }

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        check(path, src).into_iter().map(|v| v.rule).collect()
    }

    const LIB: &str = "crates/core/src/example.rs";

    #[test]
    fn deprecated_shim_call_is_vaq001() {
        let v = check(LIB, "fn f(e: &Encoder, q: &[f32]) { let t = e.lookup_tables(q); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "VAQ001");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn deprecated_execute_call_is_vaq001() {
        assert_eq!(
            codes(LIB, "fn f() { let hits = crate::search::execute(&view, q, 5); }"),
            vec!["VAQ001"]
        );
    }

    #[test]
    fn shim_definition_is_exempt() {
        assert!(codes(LIB, "pub fn lookup_tables(&self) {}").is_empty());
        assert!(codes(LIB, "pub fn execute(view: &IndexView) {}").is_empty());
    }

    #[test]
    fn shim_call_in_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(e: &Encoder) { e.lookup_tables(q); }\n}";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn nested_vec_tables_are_vaq002_in_core_only() {
        let src = "fn f() -> Vec<Vec<f32>> { vec![] }";
        // The definition line also trips no other rule.
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["VAQ002"]);
        assert_eq!(codes("crates/baselines/src/x.rs", src), vec!["VAQ002"]);
        assert!(codes("crates/bench/src/x.rs", src).is_empty());
    }

    /// A path outside the library crates, so `.unwrap()` itself (VAQ004)
    /// stays out of the picture.
    const BIN: &str = "crates/bench/src/bin/example.rs";

    #[test]
    fn partial_cmp_unwrap_is_vaq003() {
        assert_eq!(
            codes(BIN, "fn f(a: f32, b: f32) { let o = a.partial_cmp(&b).unwrap(); let _ = o; }"),
            vec!["VAQ003"]
        );
    }

    #[test]
    fn partial_cmp_sort_is_vaq003_once() {
        // sort_by + partial_cmp + unwrap on one line still reports once.
        let v = check(BIN, "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "VAQ003");
    }

    #[test]
    fn library_partial_cmp_unwrap_trips_both_rules() {
        let mut c = codes(LIB, "fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap(); }");
        c.sort_unstable();
        assert_eq!(c, vec!["VAQ003", "VAQ004"]);
    }

    #[test]
    fn partial_cmp_unwrap_or_in_comparator_is_vaq003() {
        let src = "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(O::Equal)); }";
        assert_eq!(codes(LIB, src), vec!["VAQ003"]);
    }

    #[test]
    fn partial_cmp_unwrap_or_outside_comparator_is_vaq003() {
        // The `.unwrap_or(Equal)` spelling never panics, but it makes NaN
        // compare equal to everything — same hazard, same rule.
        let src = "fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap_or(O::Equal); }";
        assert_eq!(codes(BIN, src), vec!["VAQ003"]);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        assert!(codes(LIB, "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
    }

    #[test]
    fn partial_cmp_in_ord_impl_is_allowed() {
        // `fn partial_cmp` definitions and unwrap_or-based Ord impls pass.
        let src = "impl PartialOrd for N { fn partial_cmp(&self, o: &N) -> Option<Ordering> { \
                   Some(self.cmp(o)) } }";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn library_unwrap_is_vaq004() {
        assert_eq!(codes(LIB, "fn f(x: Option<u8>) { x.unwrap(); }"), vec!["VAQ004"]);
        assert_eq!(codes(LIB, "fn f(x: Option<u8>) { x.expect(\"set\"); }"), vec!["VAQ004"]);
    }

    #[test]
    fn unwrap_or_is_not_vaq004() {
        assert!(codes(LIB, "fn f(x: Option<u8>) { x.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn bench_and_test_unwrap_are_exempt() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(codes("crates/bench/src/bin/tool.rs", src).is_empty());
        assert!(codes("crates/core/tests/props.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(codes(LIB, test_mod).is_empty());
    }

    #[test]
    fn library_println_is_vaq007() {
        assert_eq!(codes(LIB, "fn f() { println!(\"ready\"); }"), vec!["VAQ007"]);
        assert_eq!(codes(LIB, "fn f() { eprintln!(\"warn: {x}\"); }"), vec!["VAQ007"]);
    }

    #[test]
    fn println_outside_library_src_is_exempt() {
        let src = "fn f() { println!(\"progress\"); eprintln!(\"err\"); }";
        // Binaries and examples print by design; tests print for debugging.
        assert!(codes(BIN, src).is_empty());
        assert!(codes("crates/core/tests/props.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { println!(\"dbg\"); }\n}";
        assert!(codes(LIB, test_mod).is_empty());
    }

    #[test]
    fn println_identifier_without_bang_is_not_vaq007() {
        // A plain identifier (e.g. a local fn named `println`) is not the
        // macro; only the `println !` token pair trips the rule.
        assert!(codes(LIB, "fn f() { let println = 3; let _ = println; }").is_empty());
    }

    #[test]
    fn undocumented_unsafe_is_vaq005() {
        assert_eq!(codes(LIB, "fn f() { unsafe { go() } }"), vec!["VAQ005"]);
    }

    #[test]
    fn documented_unsafe_is_clean() {
        let src = "fn f() {\n    // SAFETY: bounds checked above\n    unsafe { go() }\n}";
        assert!(codes(LIB, src).is_empty());
    }

    #[test]
    fn unsafe_in_string_is_ignored() {
        assert!(codes(LIB, "fn f() { let s = \"unsafe { }\"; }").is_empty());
    }

    #[test]
    fn unregistered_fault_site_is_vaq006() {
        assert_eq!(
            codes(LIB, "fn f() { if faults::fired(\"varpca.fitt\") { return; } }"),
            vec!["VAQ006"]
        );
        assert!(codes(LIB, "fn f() { if faults::fired(\"varpca.fit\") { return; } }").is_empty());
    }

    #[test]
    fn fault_site_rule_applies_inside_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { arm(\"nope.site\", Trigger::Always); }\n}";
        assert_eq!(codes(LIB, src), vec!["VAQ006"]);
    }

    #[test]
    fn macro_form_and_non_literal_fault_args() {
        assert_eq!(codes(LIB, "fn f() { fault_point!(\"bogus.site\"); }"), vec!["VAQ006"]);
        assert!(codes(LIB, "fn f(site: &str) { if faults::fired(site) { return; } }").is_empty());
    }

    #[test]
    fn sites_const_must_match_the_lint_registry() {
        let path = "crates/core/src/faults.rs";
        let good = format!(
            "pub const SITES: &[&str] = &[{}];",
            FAULT_SITES.iter().map(|s| format!("{s:?}")).collect::<Vec<_>>().join(", ")
        );
        assert!(codes(path, &good).is_empty());
        let bad = "pub const SITES: &[&str] = &[\"ingress.validate\", \"made.up\"];";
        assert_eq!(codes(path, bad), vec!["VAQ006"]);
    }

    #[test]
    fn used_fault_sites_are_collected_once_each() {
        let lexed = lex("fn f() { if fired(\"varpca.fit\") { } arm(\"ti.build\", T); \
             fired(\"varpca.fit\"); fired(\"bogus.site\"); }");
        assert_eq!(used_fault_sites(&lexed), vec!["varpca.fit", "ti.build"]);
    }
}
