//! `lint.toml` — the shrink-only allowlist for pre-existing violations.
//!
//! The file is a flat array of tables, parsed by a tiny hand-written
//! reader (the workspace is offline; no `toml` crate):
//!
//! ```toml
//! [[allow]]
//! rule = "VAQ004"
//! path = "crates/core/src/vaq.rs"
//! max = 12
//! ```
//!
//! `max` is an exact budget, not a ceiling: when a file drops below its
//! allowance the lint *fails* until the entry is tightened, so the
//! allowlist can only shrink over time (DESIGN.md §8).

use crate::rules::Violation;
use std::collections::BTreeMap;

/// One allowance: up to `max` violations of `rule` in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub max: usize,
}

/// Parses the `lint.toml` subset. Unknown keys and malformed lines are
/// hard errors: a typo must not silently widen the allowlist.
pub fn parse_lint_toml(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<BTreeMap<String, String>> = Vec::new();
    let mut in_entry = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(BTreeMap::new());
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{}: unknown table `{line}`", lineno + 1));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = value`", lineno + 1));
        };
        let key = key.trim();
        let value = value.trim();
        if !in_entry {
            // Top-level scalars (e.g. a format version) are tolerated.
            if key == "version" {
                continue;
            }
            return Err(format!("lint.toml:{}: key `{key}` outside [[allow]]", lineno + 1));
        }
        let entry = entries.last_mut().expect("in_entry implies an open entry");
        let stored = match key {
            "rule" | "path" => {
                let v =
                    value.strip_prefix('"').and_then(|v| v.strip_suffix('"')).ok_or_else(|| {
                        format!("lint.toml:{}: `{key}` must be a quoted string", lineno + 1)
                    })?;
                v.to_string()
            }
            "max" => {
                value.parse::<usize>().map_err(|_| {
                    format!("lint.toml:{}: `max` must be a non-negative integer", lineno + 1)
                })?;
                value.to_string()
            }
            other => {
                return Err(format!("lint.toml:{}: unknown key `{other}`", lineno + 1));
            }
        };
        if entry.insert(key.to_string(), stored).is_some() {
            return Err(format!("lint.toml:{}: duplicate key `{key}`", lineno + 1));
        }
    }

    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let get = |k: &str| {
            e.get(k).cloned().ok_or_else(|| format!("lint.toml: [[allow]] entry missing `{k}`"))
        };
        let entry = AllowEntry {
            rule: get("rule")?,
            path: get("path")?,
            max: get("max")?.parse().expect("validated above"),
        };
        if entry.max == 0 {
            return Err(format!(
                "lint.toml: ({}, {}) allows 0 violations — delete the entry instead",
                entry.rule, entry.path
            ));
        }
        out.push(entry);
    }
    for (i, a) in out.iter().enumerate() {
        if out[..i].iter().any(|b| a.rule == b.rule && a.path == b.path) {
            return Err(format!("lint.toml: duplicate entry for ({}, {})", a.rule, a.path));
        }
    }
    Ok(out)
}

/// The outcome of matching violations against the allowlist.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations not covered by any allowance — each fails the lint.
    pub unsuppressed: Vec<Violation>,
    /// Shrink-only policy failures: allowances wider than reality.
    pub stale: Vec<String>,
    /// Number of violations silenced by exact allowances.
    pub suppressed: usize,
}

impl LintOutcome {
    pub fn is_clean(&self) -> bool {
        self.unsuppressed.is_empty() && self.stale.is_empty()
    }
}

/// Applies the allowlist: a file/rule pair is silenced only while its
/// violation count *exactly* matches its `max` budget.
pub fn apply_allowlist(violations: Vec<Violation>, allow: &[AllowEntry]) -> LintOutcome {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &violations {
        *counts.entry((v.rule.to_string(), v.path.clone())).or_insert(0) += 1;
    }

    let mut outcome = LintOutcome::default();
    for entry in allow {
        let actual = counts.get(&(entry.rule.clone(), entry.path.clone())).copied().unwrap_or(0);
        if actual < entry.max {
            outcome.stale.push(format!(
                "lint.toml: ({}, {}) allows {} but only {actual} remain — \
                 tighten the allowance (shrink-only policy)",
                entry.rule, entry.path, entry.max
            ));
        }
    }

    for v in violations {
        let budget =
            allow.iter().find(|e| e.rule == v.rule && e.path == v.path).map(|e| e.max).unwrap_or(0);
        let actual = counts[&(v.rule.to_string(), v.path.clone())];
        if budget >= actual {
            outcome.suppressed += 1;
        } else {
            outcome.unsuppressed.push(v);
        }
    }
    outcome
}

/// Renders an allowlist covering exactly the given violations (used by
/// `xtask lint --update-allowlist`).
pub fn render_allowlist(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in violations {
        *counts.entry((v.rule.to_string(), v.path.clone())).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# VAQ lint allowlist — pre-existing violations only. Shrink-only policy:\n\
         # `max` is exact; fixing a violation requires lowering (or deleting) the\n\
         # matching entry, and new violations are never absorbed silently.\n\
         # Regenerate with `cargo run -p xtask -- lint --update-allowlist` (review\n\
         # the diff: counts may only go down). See DESIGN.md §8.\n\
         version = 1\n",
    );
    for ((rule, path), max) in counts {
        out.push_str(&format!("\n[[allow]]\nrule = \"{rule}\"\npath = \"{path}\"\nmax = {max}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(rule: &'static str, path: &str, line: u32) -> Violation {
        Violation { rule, path: path.to_string(), line, message: String::new() }
    }

    #[test]
    fn parses_entries() {
        let toml = "# comment\nversion = 1\n\n[[allow]]\nrule = \"VAQ004\"\n\
                    path = \"crates/core/src/vaq.rs\"\nmax = 3\n";
        let entries = parse_lint_toml(toml).unwrap();
        assert_eq!(
            entries,
            vec![AllowEntry {
                rule: "VAQ004".into(),
                path: "crates/core/src/vaq.rs".into(),
                max: 3
            }]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_lint_toml("[[allow]]\nrule = VAQ004\n").is_err()); // unquoted
        assert!(parse_lint_toml("[[allow]]\nmax = -1\n").is_err());
        assert!(parse_lint_toml("stray = 1\n").is_err());
        assert!(parse_lint_toml("[[allow]]\nrule = \"R\"\npath = \"p\"\n").is_err()); // no max
        assert!(parse_lint_toml("[[allow]]\nrule = \"R\"\npath = \"p\"\nmax = 0\n").is_err());
    }

    #[test]
    fn rejects_duplicate_entries() {
        let toml = "[[allow]]\nrule = \"R\"\npath = \"p\"\nmax = 1\n\
                    [[allow]]\nrule = \"R\"\npath = \"p\"\nmax = 2\n";
        assert!(parse_lint_toml(toml).is_err());
    }

    #[test]
    fn exact_budget_suppresses() {
        let allow = vec![AllowEntry { rule: "VAQ004".into(), path: "a.rs".into(), max: 2 }];
        let outcome =
            apply_allowlist(vec![viol("VAQ004", "a.rs", 1), viol("VAQ004", "a.rs", 9)], &allow);
        assert!(outcome.is_clean());
        assert_eq!(outcome.suppressed, 2);
    }

    #[test]
    fn over_budget_fails() {
        let allow = vec![AllowEntry { rule: "VAQ004".into(), path: "a.rs".into(), max: 1 }];
        let outcome =
            apply_allowlist(vec![viol("VAQ004", "a.rs", 1), viol("VAQ004", "a.rs", 9)], &allow);
        assert_eq!(outcome.unsuppressed.len(), 2);
    }

    #[test]
    fn stale_budget_fails_shrink_only() {
        let allow = vec![AllowEntry { rule: "VAQ004".into(), path: "a.rs".into(), max: 3 }];
        let outcome = apply_allowlist(vec![viol("VAQ004", "a.rs", 1)], &allow);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.stale.len(), 1);
        // The violation itself is still silenced; only the width fails.
        assert!(outcome.unsuppressed.is_empty());
    }

    #[test]
    fn uncovered_violation_fails() {
        let outcome = apply_allowlist(vec![viol("VAQ001", "b.rs", 7)], &[]);
        assert_eq!(outcome.unsuppressed.len(), 1);
    }

    #[test]
    fn render_round_trips() {
        let violations =
            vec![viol("VAQ004", "a.rs", 1), viol("VAQ004", "a.rs", 2), viol("VAQ002", "b.rs", 3)];
        let rendered = render_allowlist(&violations);
        let parsed = parse_lint_toml(&rendered).unwrap();
        assert_eq!(parsed.len(), 2);
        let outcome = apply_allowlist(violations, &parsed);
        assert!(outcome.is_clean());
    }
}
