//! Dense two-phase primal simplex.
//!
//! The models this workspace solves are tiny (≤ ~100 variables, ≤ ~300
//! rows), so a dense tableau with Bland's anti-cycling rule is both simple
//! and fast. Standardization:
//!
//! 1. Every variable `x ∈ [lb, ub]` is shifted to `x' = x − lb ≥ 0`; finite
//!    upper bounds become explicit `x' ≤ ub − lb` rows.
//! 2. Rows are normalized to non-negative right-hand sides.
//! 3. `≤` rows get a slack, `≥` rows a surplus plus an artificial, `=` rows
//!    an artificial.
//! 4. Phase 1 minimizes the artificial sum; a positive optimum proves
//!    infeasibility. Phase 2 optimizes the real objective with artificials
//!    pinned out of the basis.

use crate::{Cmp, Model, Objective, Solution, SolveError};

/// Numerical tolerance for pivot selection and feasibility checks.
const EPS: f64 = 1e-9;

/// Hard cap on simplex pivots (problems here need a few dozen).
const MAX_PIVOTS: usize = 100_000;

/// Solves the LP relaxation of `model` (integrality flags are ignored).
pub fn solve_lp(model: &Model) -> Result<Solution, SolveError> {
    if model.vars.is_empty() {
        return Err(SolveError::EmptyModel);
    }
    // Validate bounds early: lb > ub is trivially infeasible.
    for v in &model.vars {
        if v.lb > v.ub + EPS {
            return Err(SolveError::Infeasible);
        }
    }

    let n = model.vars.len();
    // Shifted objective: maximize Σ c_i x'_i (+ constant Σ c_i lb_i).
    let sign = match model.objective {
        Objective::Maximize => 1.0,
        Objective::Minimize => -1.0,
    };
    let c: Vec<f64> = model.vars.iter().map(|v| sign * v.obj).collect();
    let constant: f64 = model.vars.iter().map(|v| v.obj * v.lb).sum();

    // Build rows: user constraints (rhs adjusted by lb shift) + upper bounds.
    struct Row {
        a: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len());
    for con in &model.constraints {
        let mut a = vec![0.0; n];
        let mut rhs = con.rhs;
        for &(v, coef) in &con.coeffs {
            a[v] += coef;
            rhs -= coef * model.vars[v].lb;
        }
        rows.push(Row { a, cmp: con.cmp, rhs });
    }
    for (i, v) in model.vars.iter().enumerate() {
        if v.ub.is_finite() {
            let mut a = vec![0.0; n];
            a[i] = 1.0;
            rows.push(Row { a, cmp: Cmp::Le, rhs: v.ub - v.lb });
        }
    }

    // Normalize to rhs >= 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for a in r.a.iter_mut() {
                *a = -*a;
            }
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural n][slack/surplus s][artificial t].
    let num_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
    let num_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
    let total = n + num_slack + num_art;

    // Tableau: m rows × (total + 1) columns (last column = rhs).
    let width = total + 1;
    let mut t = vec![0.0f64; m * width];
    let mut basis = vec![0usize; m];
    let mut art_cols: Vec<usize> = Vec::with_capacity(num_art);

    let mut slack_at = n;
    let mut art_at = n + num_slack;
    for (i, r) in rows.iter().enumerate() {
        let row = &mut t[i * width..(i + 1) * width];
        row[..n].copy_from_slice(&r.a);
        row[total] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                row[slack_at] = 1.0;
                basis[i] = slack_at;
                slack_at += 1;
            }
            Cmp::Ge => {
                row[slack_at] = -1.0;
                slack_at += 1;
                row[art_at] = 1.0;
                basis[i] = art_at;
                art_cols.push(art_at);
                art_at += 1;
            }
            Cmp::Eq => {
                row[art_at] = 1.0;
                basis[i] = art_at;
                art_cols.push(art_at);
                art_at += 1;
            }
        }
    }

    // ---- Phase 1: minimize sum of artificials (maximize −Σ art). ----
    if num_art > 0 {
        let mut obj1 = vec![0.0f64; width];
        for &a in &art_cols {
            obj1[a] = -1.0;
        }
        // Price out basic artificials.
        let mut z1 = vec![0.0f64; width];
        for (i, &b) in basis.iter().enumerate() {
            let cb = obj1[b];
            if cb != 0.0 {
                for j in 0..width {
                    z1[j] += cb * t[i * width + j];
                }
            }
        }
        let mut reduced: Vec<f64> = (0..width).map(|j| obj1[j] - z1[j]).collect();
        let no_ban = vec![false; total];
        run_simplex(&mut t, &mut basis, &mut reduced, m, total, width, &no_ban)?;
        // Feasibility check: artificial sum must be ~0.
        let art_sum: f64 = basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| art_cols.contains(&b))
            .map(|(i, _)| t[i * width + total])
            .sum();
        if art_sum > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        // Drive any remaining basic artificials out of the basis (degenerate
        // at zero) by pivoting on any non-artificial column with a non-zero
        // entry; if none exists, the row is redundant and can stay (its rhs
        // is zero).
        for i in 0..m {
            if art_cols.contains(&basis[i]) {
                let mut pivoted = false;
                for j in 0..n + num_slack {
                    if t[i * width + j].abs() > EPS {
                        pivot(&mut t, &mut basis, i, j, m, width, &mut []);
                        pivoted = true;
                        break;
                    }
                }
                let _ = pivoted;
            }
        }
    }

    // ---- Phase 2: optimize the real objective. ----
    // Artificials keep a zero objective: any still basic after phase 1 sit
    // at value zero on redundant rows (every pivotable row was cleared
    // above), so they contribute nothing — and a big-M penalty here would
    // poison the reduced costs with catastrophic cancellation. They are
    // barred from *entering* below instead.
    let mut obj2 = vec![0.0f64; width];
    obj2[..n].copy_from_slice(&c);
    let mut z2 = vec![0.0f64; width];
    for (i, &b) in basis.iter().enumerate() {
        let cb = obj2[b];
        if cb != 0.0 {
            for j in 0..width {
                z2[j] += cb * t[i * width + j];
            }
        }
    }
    let mut reduced: Vec<f64> = (0..width).map(|j| obj2[j] - z2[j]).collect();
    // Artificial columns must never re-enter the basis: their incremental
    // reduced costs can drift positive after pivots, and re-admitting one
    // lets it rise from zero, silently leaving the true feasible region.
    let mut banned = vec![false; total];
    for &a in &art_cols {
        banned[a] = true;
    }
    run_simplex(&mut t, &mut basis, &mut reduced, m, total, width, &banned)?;

    // Extract solution (shift back by lb).
    let mut values: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            values[b] = model.vars[b].lb + t[i * width + total];
        }
    }
    // Clamp tiny negatives / bound overshoots from roundoff.
    for (v, var) in values.iter_mut().zip(model.vars.iter()) {
        if *v < var.lb {
            *v = var.lb;
        }
        if *v > var.ub {
            *v = var.ub;
        }
    }
    let objective: f64 =
        values.iter().zip(model.vars.iter()).map(|(&x, v)| v.obj * (x - v.lb)).sum::<f64>()
            + constant;
    Ok(Solution { values, objective, optimal: true })
}

/// Primal simplex iterations with Bland's rule. `reduced` is maintained as
/// the reduced-cost row for a *maximization*; positive entries are entering
/// candidates.
fn run_simplex(
    t: &mut [f64],
    basis: &mut [usize],
    reduced: &mut [f64],
    m: usize,
    total: usize,
    width: usize,
    banned: &[bool],
) -> Result<(), SolveError> {
    for _ in 0..MAX_PIVOTS {
        // Bland: smallest-index non-banned column with positive reduced cost.
        let enter = (0..total).find(|&j| !banned[j] && reduced[j] > EPS);
        let Some(enter) = enter else {
            return Ok(());
        };
        // Ratio test: smallest rhs/a over rows with a > 0; Bland ties on the
        // smallest basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            let a = t[i * width + enter];
            if a > EPS {
                let ratio = t[i * width + total] / a;
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(SolveError::Unbounded);
        };
        pivot(t, basis, leave, enter, m, width, reduced);
    }
    Err(SolveError::LimitReached { what: "simplex pivot" })
}

/// Pivots the tableau on `(row, col)`, updating basis and (optionally) the
/// reduced-cost row.
fn pivot(
    t: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    m: usize,
    width: usize,
    reduced: &mut [f64],
) {
    let p = t[row * width + col];
    debug_assert!(p.abs() > 0.0, "zero pivot");
    let inv = 1.0 / p;
    for j in 0..width {
        t[row * width + j] *= inv;
    }
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = t[i * width + col];
        if factor != 0.0 {
            for j in 0..width {
                t[i * width + j] -= factor * t[row * width + j];
            }
        }
    }
    if !reduced.is_empty() {
        let factor = reduced[col];
        if factor != 0.0 {
            for j in 0..width {
                reduced[j] -= factor * t[row * width + j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model, Objective};

    #[test]
    fn textbook_max_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), obj 36.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 5.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6, "{s:?}");
        assert!((s.values[x] - 2.0).abs() < 1e-6);
        assert!((s.values[y] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 → x=8, y=2? No: cost of x is
        // lower, so push x up: y=0, x=10 (x>=2 satisfied) → obj 20.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 2.0);
        let y = m.add_var(0.0, f64::INFINITY, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 20.0).abs() < 1e-6, "{s:?}");
        assert!((s.values[x] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint_respected() {
        // max x + y s.t. x + y = 5, x <= 3 → obj 5.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 3.0, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
        assert!((s.values[x] + s.values[y] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn variable_bounds_enforced() {
        // max x with 1 <= x <= 7 → 7; min → 1.
        let mut m = Model::new(Objective::Maximize);
        m.add_var(1.0, 7.0, 1.0);
        assert!((solve_lp(&m).unwrap().objective - 7.0).abs() < 1e-9);
        let mut m2 = Model::new(Objective::Minimize);
        m2.add_var(1.0, 7.0, 1.0);
        assert!((solve_lp(&m2).unwrap().objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        assert_eq!(solve_lp(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn contradictory_bounds_infeasible() {
        let mut m = Model::new(Objective::Maximize);
        m.add_var(5.0, 1.0, 1.0);
        assert_eq!(solve_lp(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Objective::Maximize);
        m.add_var(0.0, f64::INFINITY, 1.0);
        assert_eq!(solve_lp(&m).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn empty_model_errors() {
        let m = Model::new(Objective::Maximize);
        assert_eq!(solve_lp(&m).unwrap_err(), SolveError::EmptyModel);
    }

    #[test]
    fn negative_lower_bounds_shifted_correctly() {
        // max x + y with x ∈ [−5, −1], y ∈ [−2, 3], x + y <= 0 → x=−1, y=1? Wait
        // x+y ≤ 0 and maximize: best is x=−1 (max of x) then y ≤ 1 → y=1;
        // but y could go to 3 if x=−3. Objective x+y is capped at 0 by the
        // row, achievable → obj 0.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(-5.0, -1.0, 1.0);
        let y = m.add_var(-2.0, 3.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 0.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 0.0).abs() < 1e-6, "{s:?}");
        assert!(s.values[x] >= -5.0 - 1e-9 && s.values[x] <= -1.0 + 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate construction; Bland's rule must still finish.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 0.75);
        let y = m.add_var(0.0, f64::INFINITY, -150.0);
        let z = m.add_var(0.0, f64::INFINITY, 0.02);
        let w = m.add_var(0.0, f64::INFINITY, -6.0);
        m.add_constraint(vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], Cmp::Le, 0.0);
        m.add_constraint(vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], Cmp::Le, 0.0);
        m.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 0.05).abs() < 1e-6, "{s:?}");
    }
}
