//! Mixed-integer linear programming for VAQ's adaptive bit allocation.
//!
//! Paper §III-C poses the budget allocation as
//!
//! ```text
//! maximize  Wᵀ·y    subject to  A·y ≤ b,  y ≥ 0,  y ∈ ℤᵈ
//! ```
//!
//! and notes that "standard solvers with branch and bound optimization can
//! solve it efficiently" — a fraction of a second even for the million-scale
//! datasets, because the problem only has one variable per *subspace*
//! (16–64 of them). This crate is that standard solver, built from scratch:
//!
//! * [`Model`] — a small model-builder API: variables with bounds and
//!   integrality flags, linear rows with `≤ / ≥ / =` senses, maximize or
//!   minimize.
//! * [`simplex`] — a dense two-phase primal simplex over the standard-form
//!   tableau (artificial variables + Bland's rule, so it cannot cycle).
//! * [`branch_bound`] — best-bound branch-and-bound on the LP relaxation,
//!   branching on the most fractional integer variable.
//!
//! The API is deliberately general (any LP/MILP of this size solves fine) so
//! new constraints — the paper's motivating example is a query optimizer
//! imposing service-level limits on subspaces — can be added by pushing one
//! more row, not by writing a new solver.

#![forbid(unsafe_code)]

pub mod branch_bound;
pub mod simplex;

pub use branch_bound::{solve_milp, solve_milp_with_limit};
pub use simplex::solve_lp;

use std::fmt;

/// Comparison sense of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

/// One decision variable.
#[derive(Debug, Clone)]
pub struct Var {
    /// Lower bound (≥ 0 after standardization; negative bounds are shifted).
    pub lb: f64,
    /// Upper bound; `f64::INFINITY` for unbounded.
    pub ub: f64,
    /// Objective coefficient.
    pub obj: f64,
    /// Whether branch-and-bound must drive this variable to an integer.
    pub integer: bool,
}

/// One linear constraint row, stored sparsely as `(var, coefficient)`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Non-zero coefficients.
    pub coeffs: Vec<(usize, f64)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// A linear / mixed-integer program under construction.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) vars: Vec<Var>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Objective,
}

impl Model {
    /// Creates an empty model with the given direction.
    pub fn new(objective: Objective) -> Self {
        Model { vars: Vec::new(), constraints: Vec::new(), objective }
    }

    /// Adds a continuous variable; returns its index.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> usize {
        self.vars.push(Var { lb, ub, obj, integer: false });
        self.vars.len() - 1
    }

    /// Adds an integer variable; returns its index.
    pub fn add_int_var(&mut self, lb: f64, ub: f64, obj: f64) -> usize {
        self.vars.push(Var { lb, ub, obj, integer: true });
        self.vars.len() - 1
    }

    /// Adds a constraint row. Coefficients reference variable indices
    /// returned by `add_var`/`add_int_var`.
    ///
    /// # Panics
    /// Panics if any referenced variable does not exist.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        for &(v, _) in &coeffs {
            assert!(v < self.vars.len(), "constraint references unknown variable {v}");
        }
        self.constraints.push(Constraint { coeffs, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The optimization direction.
    pub fn direction(&self) -> Objective {
        self.objective
    }

    /// Re-checks a solution against the model: variable bounds,
    /// integrality of integer variables, every constraint row, and the
    /// reported objective value, all within tolerance `tol`.
    ///
    /// The branch-and-bound solver asserts this on its own output in debug
    /// builds; callers holding extra invariants (e.g. VAQ's C1–C4 bit
    /// constraints) can also run it after the fact.
    pub fn check_solution(&self, sol: &Solution, tol: f64) -> Result<(), String> {
        if sol.values.len() != self.vars.len() {
            return Err(format!(
                "solution has {} values for {} variables",
                sol.values.len(),
                self.vars.len()
            ));
        }
        for (i, (v, &x)) in self.vars.iter().zip(sol.values.iter()).enumerate() {
            if !x.is_finite() {
                return Err(format!("variable {i} is {x}"));
            }
            if x < v.lb - tol || x > v.ub + tol {
                return Err(format!("variable {i} = {x} outside bounds [{}, {}]", v.lb, v.ub));
            }
            if v.integer && (x - x.round()).abs() > tol {
                return Err(format!("integer variable {i} = {x} is fractional"));
            }
        }
        for (row, c) in self.constraints.iter().enumerate() {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * sol.values[v]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "constraint {row} violated: lhs {lhs} {} rhs {}",
                    match c.cmp {
                        Cmp::Le => "≤",
                        Cmp::Ge => "≥",
                        Cmp::Eq => "=",
                    },
                    c.rhs
                ));
            }
        }
        let obj: f64 = self.vars.iter().zip(sol.values.iter()).map(|(v, &x)| v.obj * x).sum();
        if (obj - sol.objective).abs() > tol * (1.0 + sol.objective.abs()) {
            return Err(format!(
                "reported objective {} disagrees with recomputed {obj}",
                sol.objective
            ));
        }
        Ok(())
    }
}

/// A solver result: the best solution found.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Variable values, indexed like the model's variables.
    pub values: Vec<f64>,
    /// Objective value at `values` (in the model's direction).
    pub objective: f64,
    /// `true` when the solver proved optimality. `false` marks an anytime
    /// result: the best incumbent when a node/iteration budget ran out.
    pub optimal: bool,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No assignment satisfies all constraints and bounds.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The model has no variables.
    EmptyModel,
    /// Iteration/node limit exhausted before proving optimality.
    LimitReached {
        /// Which limit was hit.
        what: &'static str,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::EmptyModel => write!(f, "model has no variables"),
            SolveError::LimitReached { what } => write!(f, "{what} limit reached"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_builder_tracks_counts() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_int_var(0.0, 5.0, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 7.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(m.vars[y].integer);
        assert!(!m.vars[x].integer);
    }

    #[test]
    #[should_panic]
    fn constraint_with_unknown_var_panics() {
        let mut m = Model::new(Objective::Maximize);
        m.add_constraint(vec![(3, 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn check_solution_accepts_valid_and_rejects_corruption() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_int_var(0.0, 5.0, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 7.0);

        let sol = |values: Vec<f64>, objective: f64| Solution { values, objective, optimal: true };
        let good = sol(vec![2.0, 5.0], 12.0);
        assert!(m.check_solution(&good, 1e-9).is_ok());

        // Out of bounds.
        let oob = sol(vec![-1.0, 5.0], 9.0);
        assert!(m.check_solution(&oob, 1e-9).unwrap_err().contains("bounds"));
        // Fractional integer.
        let frac = sol(vec![2.0, 2.5], 7.0);
        assert!(m.check_solution(&frac, 1e-9).unwrap_err().contains("fractional"));
        // Constraint violated.
        let infeas = sol(vec![6.0, 5.0], 16.0);
        assert!(m.check_solution(&infeas, 1e-9).unwrap_err().contains("constraint"));
        // Objective mismatch.
        let lied = sol(vec![2.0, 5.0], 99.0);
        assert!(m.check_solution(&lied, 1e-9).unwrap_err().contains("objective"));
        // NaN value.
        let nan = sol(vec![f64::NAN, 5.0], 10.0);
        assert!(m.check_solution(&nan, 1e-9).is_err());
        // Wrong arity.
        let short = sol(vec![2.0], 2.0);
        assert!(m.check_solution(&short, 1e-9).is_err());
    }
}
