//! Branch-and-bound over the simplex relaxation.
//!
//! The paper (§III-C) cites Land & Doig's branch-and-bound as the standard
//! way to solve the bit-allocation ILP. This is a best-bound implementation:
//! nodes carry tightened variable bounds, the node with the most promising
//! LP relaxation is expanded first, and branching splits on the most
//! fractional integer variable (`x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`). Incumbents prune
//! nodes whose relaxation bound cannot beat them.

use crate::simplex::solve_lp;
use crate::{Model, Objective, Solution, SolveError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tolerance within which a value counts as integral.
const INT_EPS: f64 = 1e-6;

/// Cap on explored nodes. Bit-allocation problems close in tens of nodes;
/// this guards against pathological user models.
const MAX_NODES: usize = 200_000;

struct Node {
    /// Per-variable `(lb, ub)` overrides.
    bounds: Vec<(f64, f64)>,
    /// Relaxation objective (already normalized to "higher is better").
    score: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.total_cmp(&other.score)
    }
}

/// Solves the mixed-integer program: all variables flagged with
/// `add_int_var` are driven to integral values.
///
/// Returns [`SolveError::Infeasible`] when no integral assignment exists.
/// When the node budget runs out before optimality is proven, the solver
/// behaves as an *anytime* algorithm: the best incumbent (if one was
/// found) is returned with [`Solution::optimal`] set to `false`, and
/// [`SolveError::LimitReached`] is returned only when the budget expired
/// with no feasible integral point in hand.
pub fn solve_milp(model: &Model) -> Result<Solution, SolveError> {
    solve_milp_with_limit(model, MAX_NODES)
}

/// [`solve_milp`] with an explicit node budget, exposed so callers (and
/// tests) can bound the time spent proving optimality.
pub fn solve_milp_with_limit(model: &Model, max_nodes: usize) -> Result<Solution, SolveError> {
    if model.vars.is_empty() {
        return Err(SolveError::EmptyModel);
    }
    let dir = match model.objective {
        Objective::Maximize => 1.0,
        Objective::Minimize => -1.0,
    };

    let root_bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lb, v.ub)).collect();
    let root = relax(model, &root_bounds)?;
    let mut heap = BinaryHeap::new();
    heap.push(Node { bounds: root_bounds, score: dir * root.objective });

    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;

    while let Some(node) = heap.pop() {
        nodes += 1;
        if nodes > max_nodes {
            return match incumbent {
                Some(mut best) => {
                    best.optimal = false;
                    debug_check(model, &best);
                    Ok(best)
                }
                None => Err(SolveError::LimitReached { what: "branch-and-bound node" }),
            };
        }
        // Bound: even the relaxation cannot beat the incumbent.
        if let Some(inc) = &incumbent {
            if node.score <= dir * inc.objective + INT_EPS {
                continue;
            }
        }
        // Re-solve (score was computed when pushed; bounds are the state).
        let sol = match relax(model, &node.bounds) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(inc) = &incumbent {
            if dir * sol.objective <= dir * inc.objective + INT_EPS {
                continue;
            }
        }

        // Most fractional integer variable.
        let frac = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| (i, (sol.values[i] - sol.values[i].round()).abs()))
            .filter(|&(_, f)| f > INT_EPS)
            .max_by(|a, b| a.1.total_cmp(&b.1));

        match frac {
            None => {
                // Integral: round off the dust and accept as incumbent.
                let mut vals = sol.values.clone();
                for (i, v) in model.vars.iter().enumerate() {
                    if v.integer {
                        vals[i] = vals[i].round();
                    }
                }
                let objective: f64 =
                    vals.iter().zip(model.vars.iter()).map(|(&x, v)| v.obj * x).sum();
                let better = incumbent
                    .as_ref()
                    .map(|inc| dir * objective > dir * inc.objective + INT_EPS)
                    .unwrap_or(true);
                if better {
                    incumbent = Some(Solution { values: vals, objective, optimal: true });
                }
            }
            Some((i, _)) => {
                let v = sol.values[i];
                let floor = v.floor();
                // Down branch: x_i ≤ ⌊v⌋.
                let mut down = node.bounds.clone();
                down[i].1 = down[i].1.min(floor);
                if down[i].0 <= down[i].1 + INT_EPS {
                    if let Ok(s) = relax(model, &down) {
                        heap.push(Node { bounds: down, score: dir * s.objective });
                    }
                }
                // Up branch: x_i ≥ ⌈v⌉.
                let mut up = node.bounds.clone();
                up[i].0 = up[i].0.max(floor + 1.0);
                if up[i].0 <= up[i].1 + INT_EPS {
                    if let Ok(s) = relax(model, &up) {
                        heap.push(Node { bounds: up, score: dir * s.objective });
                    }
                }
            }
        }
    }

    let best = incumbent.ok_or(SolveError::Infeasible)?;
    debug_check(model, &best);
    Ok(best)
}

/// Debug-build self-check: any solution handed back must re-verify.
fn debug_check(model: &Model, sol: &Solution) {
    if cfg!(debug_assertions) {
        if let Err(msg) = model.check_solution(sol, 1e-6) {
            panic!("branch-and-bound produced an invalid solution: {msg}");
        }
    }
}

/// Solves the LP relaxation of `model` under overridden variable bounds.
fn relax(model: &Model, bounds: &[(f64, f64)]) -> Result<Solution, SolveError> {
    let mut relaxed = model.clone();
    for (v, &(lb, ub)) in relaxed.vars.iter_mut().zip(bounds.iter()) {
        v.lb = lb;
        v.ub = ub;
    }
    solve_lp(&relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model, Objective};

    #[test]
    fn knapsack_small() {
        // max 8a + 11b + 6c + 4d, weights 5,7,4,3 ≤ 14, binary.
        // Optimum: b + c + d = 21 (weight 14).
        let mut m = Model::new(Objective::Maximize);
        let a = m.add_int_var(0.0, 1.0, 8.0);
        let b = m.add_int_var(0.0, 1.0, 11.0);
        let c = m.add_int_var(0.0, 1.0, 6.0);
        let d = m.add_int_var(0.0, 1.0, 4.0);
        m.add_constraint(vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], Cmp::Le, 14.0);
        let s = solve_milp(&m).unwrap();
        assert!((s.objective - 21.0).abs() < 1e-6, "{s:?}");
        assert_eq!(s.values[a].round() as i64, 0);
        assert_eq!(s.values[b].round() as i64, 1);
    }

    #[test]
    fn lp_relaxation_fractional_but_milp_integral() {
        // max x s.t. 2x <= 5, x integer → LP gives 2.5, MILP gives 2.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_int_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 5.0);
        let lp = solve_lp(&m).unwrap();
        assert!((lp.objective - 2.5).abs() < 1e-6);
        let ip = solve_milp(&m).unwrap();
        assert!((ip.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 3x + 2y, x integer, x + y <= 4.5, y <= 1.3.
        // LP optimum is x=4.5; branching down gives x=4, y=0.5 → obj 13.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_int_var(0.0, 100.0, 3.0);
        let y = m.add_var(0.0, 1.3, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.5);
        let s = solve_milp(&m).unwrap();
        assert!((s.values[x] - 4.0).abs() < 1e-6, "{s:?}");
        assert!((s.values[y] - 0.5).abs() < 1e-6, "{s:?}");
        assert!((s.objective - 13.0).abs() < 1e-6);
    }

    #[test]
    fn equality_budget_milp() {
        // The exact structure of VAQ's C3: Σ y = budget with bounds.
        let mut m = Model::new(Objective::Maximize);
        let w = [0.5, 0.3, 0.15, 0.05];
        let vars: Vec<usize> = w.iter().map(|&wi| m.add_int_var(1.0, 13.0, wi)).collect();
        let coeffs: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(coeffs, Cmp::Eq, 32.0);
        let s = solve_milp(&m).unwrap();
        let total: f64 = s.values.iter().sum();
        assert!((total - 32.0).abs() < 1e-6);
        // Greedy: most important subspace maxes out first.
        assert!((s.values[vars[0]] - 13.0).abs() < 1e-6);
        assert!(s.values[vars[3]] >= 1.0 - 1e-9);
    }

    #[test]
    fn node_limit_returns_best_incumbent() {
        // Knapsack from above: optimum 21. Under every node budget the
        // solver must hand back either a typed error or a *feasible*
        // incumbent no better than the optimum, flagging optimality
        // honestly.
        let mut m = Model::new(Objective::Maximize);
        let vars: [usize; 4] = [
            m.add_int_var(0.0, 1.0, 8.0),
            m.add_int_var(0.0, 1.0, 11.0),
            m.add_int_var(0.0, 1.0, 6.0),
            m.add_int_var(0.0, 1.0, 4.0),
        ];
        m.add_constraint(
            vec![(vars[0], 5.0), (vars[1], 7.0), (vars[2], 4.0), (vars[3], 3.0)],
            Cmp::Le,
            14.0,
        );
        let full = solve_milp(&m).unwrap();
        assert!(full.optimal);

        let mut saw_anytime = false;
        for limit in 1..64 {
            match solve_milp_with_limit(&m, limit) {
                Ok(s) => {
                    m.check_solution(&s, 1e-6).expect("incumbent must be feasible");
                    assert!(s.objective <= full.objective + 1e-9);
                    if !s.optimal {
                        saw_anytime = true;
                        assert!(s.objective.is_finite());
                    }
                }
                Err(e) => {
                    assert_eq!(e, SolveError::LimitReached { what: "branch-and-bound node" })
                }
            }
        }
        assert!(saw_anytime, "some node budget should yield a non-optimal incumbent");
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 3 with x integer has no solution.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_int_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Eq, 3.0);
        assert_eq!(solve_milp(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn minimization_milp() {
        // min x + y s.t. 3x + 2y >= 7, integers → (1,2) = 3.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_int_var(0.0, 10.0, 1.0);
        let y = m.add_int_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Ge, 7.0);
        let s = solve_milp(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6, "{s:?}");
    }

    #[test]
    fn milp_on_pure_continuous_model_matches_lp() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 4.0, 2.0);
        let y = m.add_var(0.0, 4.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let lp = solve_lp(&m).unwrap();
        let ip = solve_milp(&m).unwrap();
        assert!((lp.objective - ip.objective).abs() < 1e-9);
    }

    #[test]
    fn tight_bounds_force_value() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_int_var(3.0, 3.0, 1.0);
        let s = solve_milp(&m).unwrap();
        assert_eq!(s.values[x], 3.0);
    }

    #[test]
    fn chain_constrained_binary_model_regression() {
        // Regression for a phase-2 bug where artificial columns could
        // re-enter the basis after reduced-cost drift, surfacing as a bogus
        // "unbounded" on this bounded unit-bit model (many Ge-0 chain rows
        // plus one equality).
        let m = 8usize;
        let extra = 12usize;
        let mut shares = vec![1.0f64 / 8.0; m];
        shares[7] *= 50.0;
        let mut model = Model::new(Objective::Maximize);
        let mut z = vec![Vec::new(); m];
        for (i, zi) in z.iter_mut().enumerate() {
            for j in 0..extra {
                let gain = shares[i] * 0.5f64.powi(j as i32 + 1);
                zi.push(model.add_int_var(0.0, 1.0, gain));
            }
        }
        model.add_constraint(z.iter().flatten().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 24.0);
        for zi in &z {
            for j in 1..zi.len() {
                model.add_constraint(vec![(zi[j - 1], 1.0), (zi[j], -1.0)], Cmp::Ge, 0.0);
            }
        }
        let lp = solve_lp(&model).expect("bounded model must solve");
        let ip = solve_milp(&model).expect("bounded model must solve");
        assert!(ip.objective <= lp.objective + 1e-9);
        let total: f64 = ip.values.iter().sum();
        assert!((total - 24.0).abs() < 1e-6);
    }

    #[test]
    fn exhaustive_check_against_enumeration() {
        // Randomized small ILPs cross-checked against brute force.
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0
        };
        for _case in 0..25 {
            let mut m = Model::new(Objective::Maximize);
            let n = 3;
            let ub = 4.0;
            let obj: Vec<f64> = (0..n).map(|_| next()).collect();
            let vars: Vec<usize> = obj.iter().map(|&o| m.add_int_var(0.0, ub, o)).collect();
            // Two random ≤ rows with positive coefficients (always feasible
            // at the origin).
            let mut rows = Vec::new();
            for _ in 0..2 {
                let coefs: Vec<f64> = (0..n).map(|_| next().abs() + 0.1).collect();
                let rhs = 5.0 * (next().abs() + 0.2);
                m.add_constraint(
                    vars.iter().zip(coefs.iter()).map(|(&v, &c)| (v, c)).collect(),
                    Cmp::Le,
                    rhs,
                );
                rows.push((coefs, rhs));
            }
            let s = solve_milp(&m).unwrap();
            // Brute force over the 5^3 grid.
            let mut best = f64::NEG_INFINITY;
            for a in 0..=4 {
                for b in 0..=4 {
                    for c in 0..=4 {
                        let x = [a as f64, b as f64, c as f64];
                        if rows.iter().all(|(co, rhs)| {
                            co.iter().zip(x.iter()).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-9
                        }) {
                            let o: f64 = obj.iter().zip(x.iter()).map(|(o, v)| o * v).sum();
                            best = best.max(o);
                        }
                    }
                }
            }
            assert!(
                (s.objective - best).abs() < 1e-6,
                "case {_case}: milp {} vs brute {best}",
                s.objective
            );
        }
    }
}
