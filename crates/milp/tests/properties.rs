//! Property tests for the LP/MILP solver: random models cross-checked
//! against brute-force enumeration and structural invariants.

use proptest::prelude::*;
use vaq_milp::{solve_lp, solve_milp, Cmp, Model, Objective};

/// Random small ILP: n ∈ 2..4 integer vars in [0, ub], 1..3 ≤-rows with
/// non-negative coefficients (origin always feasible).
fn small_ilp() -> impl Strategy<Value = (Model, Vec<Vec<f64>>, Vec<f64>, usize)> {
    (2usize..=3, 1usize..=3, 2usize..=4).prop_flat_map(|(n, rows, ub)| {
        let objs = proptest::collection::vec(-1.0f64..1.0, n);
        let coefs = proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), rows);
        let rhss = proptest::collection::vec(0.5f64..4.0, rows);
        (objs, coefs, rhss).prop_map(move |(objs, coefs, rhss)| {
            let mut m = Model::new(Objective::Maximize);
            let vars: Vec<usize> = objs.iter().map(|&o| m.add_int_var(0.0, ub as f64, o)).collect();
            for (c, &r) in coefs.iter().zip(rhss.iter()) {
                m.add_constraint(
                    vars.iter().zip(c.iter()).map(|(&v, &cc)| (v, cc)).collect(),
                    Cmp::Le,
                    r,
                );
            }
            (m, coefs, rhss, ub)
        })
    })
}

fn brute_force_best(objs: &[f64], coefs: &[Vec<f64>], rhss: &[f64], ub: usize) -> f64 {
    let n = objs.len();
    let mut best = f64::NEG_INFINITY;
    let total = (ub + 1).pow(n as u32);
    for idx in 0..total {
        let mut x = Vec::with_capacity(n);
        let mut rest = idx;
        for _ in 0..n {
            x.push((rest % (ub + 1)) as f64);
            rest /= ub + 1;
        }
        let feasible = coefs
            .iter()
            .zip(rhss.iter())
            .all(|(c, &r)| c.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>() <= r + 1e-9);
        if feasible {
            let obj: f64 = objs.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
            best = best.max(obj);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn milp_matches_brute_force((model, coefs, rhss, ub) in small_ilp()) {
        let objs: Vec<f64> = (0..model.num_vars()).map(|_| 0.0).collect();
        // Recover objective coefficients through the public solution:
        // easier to recompute from the model—model fields are private, so
        // evaluate through brute force using the coefs/rhss we kept and the
        // solver's own objective value.
        let _ = objs;
        let sol = solve_milp(&model).expect("origin is feasible");
        // Feasibility of the returned point.
        for (c, &r) in coefs.iter().zip(rhss.iter()) {
            let lhs: f64 = c.iter().zip(sol.values.iter()).map(|(a, b)| a * b).sum();
            prop_assert!(lhs <= r + 1e-6, "constraint violated: {lhs} > {r}");
        }
        for &v in &sol.values {
            prop_assert!((v - v.round()).abs() < 1e-6, "non-integral {v}");
            prop_assert!((-1e-9..=(ub as f64 + 1e-9)).contains(&v));
        }
        // Optimality vs enumeration: need objective coefficients — the
        // solver reports its own objective; brute force recomputes using
        // the same linear form via finite differences on the solution is
        // impossible, so instead verify optimality bound via LP relaxation
        // and lower bound via the solver's own feasible point.
        let lp = solve_lp(&model).expect("lp solves");
        prop_assert!(sol.objective <= lp.objective + 1e-6,
            "integer optimum exceeds LP relaxation");
    }

    #[test]
    fn lp_bound_tightness_on_budget_models(
        weights in proptest::collection::vec(0.01f64..1.0, 2..8),
        budget in 1usize..20,
    ) {
        // max Σ w x, Σ x = budget, 0 ≤ x ≤ budget: LP and MILP agree
        // (the constraint matrix is totally unimodular).
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<usize> = weights
            .iter()
            .map(|&w| m.add_int_var(0.0, budget as f64, w))
            .collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, budget as f64);
        let lp = solve_lp(&m).expect("feasible");
        let ip = solve_milp(&m).expect("feasible");
        prop_assert!((lp.objective - ip.objective).abs() < 1e-6,
            "TU model gap: lp {} vs ip {}", lp.objective, ip.objective);
        // The optimum puts everything on the max-weight variable.
        let wmax = weights.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((ip.objective - wmax * budget as f64).abs() < 1e-6);
    }
}

/// Deterministic cross-check with explicit objective bookkeeping (the
/// proptest above cannot see private model fields; this one rebuilds the
/// model from known data).
#[test]
fn milp_equals_enumeration_on_fixed_grid() {
    let objs = [0.7, -0.2, 0.4];
    let coefs = vec![vec![0.5, 0.3, 0.9], vec![0.2, 0.8, 0.1]];
    let rhss = vec![2.5, 1.7];
    let ub = 3usize;
    let mut m = Model::new(Objective::Maximize);
    let vars: Vec<usize> = objs.iter().map(|&o| m.add_int_var(0.0, ub as f64, o)).collect();
    for (c, &r) in coefs.iter().zip(rhss.iter()) {
        m.add_constraint(vars.iter().zip(c.iter()).map(|(&v, &cc)| (v, cc)).collect(), Cmp::Le, r);
    }
    let sol = solve_milp(&m).unwrap();
    let best = brute_force_best(&objs, &coefs, &rhss, ub);
    assert!((sol.objective - best).abs() < 1e-9, "milp {} vs brute {best}", sol.objective);
}
