//! Dense linear algebra substrate for the VAQ reproduction.
//!
//! The VAQ pipeline ("Fast Adaptive Similarity Search through Variance-Aware
//! Quantization", ICDE 2022) measures the importance of data dimensions
//! through the eigen-spectrum of the covariance matrix (Algorithm 1,
//! `VarPCA`). The baselines it compares against need a little more: OPQ's
//! non-parametric variant solves an orthogonal Procrustes problem per
//! iteration and ITQ alternates sign-quantization with Procrustes rotations.
//!
//! This crate provides exactly that surface, implemented from scratch:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix tuned for bulk row access
//!   (each row is one data vector, matching how quantizers scan data).
//! * [`DMatrix`] — a small row-major `f64` matrix used for covariance /
//!   eigen work where `f32` accumulation error would distort eigenvalues.
//! * [`eigen::sym_eigen`] — cyclic Jacobi eigendecomposition for symmetric
//!   matrices (covariance matrices are symmetric PSD).
//! * [`svd::svd`] / [`svd::procrustes`] — singular value decomposition via
//!   the eigendecomposition of `AᵀA`, and the orthogonal Procrustes solve
//!   `argmin_R ‖A − BR‖` built on it.
//! * [`pca::Pca`] — principal component analysis: fit on a sample, project
//!   data and queries, expose the explained-variance profile that drives
//!   VAQ's bit allocation.
//!
//! Everything is deterministic: no randomized algorithms are used, so the
//! same input always yields the same rotation, which keeps the experiment
//! harness reproducible.

pub mod covariance;
pub mod eigen;
pub mod matrix;
pub mod mmap;
pub mod norms;
pub mod pca;
pub mod qtables;
pub mod sketch;
pub mod svd;
pub mod tables;

pub use covariance::{column_means, covariance, covariance_centered};
pub use eigen::{sym_eigen, SymEigen};
pub use matrix::{DMatrix, Matrix};
pub use mmap::{
    Advice, CodesStorage, ExtentSpan, F32Storage, MappedRegion, MappedSpan, ScanPrefetch,
    U16Storage, U32Storage, U64Storage, PAGE_ALIGN,
};
pub use norms::{dot, euclidean, hamming, squared_euclidean};
pub use pca::Pca;
pub use qtables::{
    accumulate_qsums, accumulate_qsums_multi, accumulate_qsums_with, active_kernel,
    install_kernel_timing_hook, kernel_supported, prefetch_read, KernelTimingHook, PackedCodes,
    PackedRow, QuantizedTables, ScanKernel, QUERY_TILE,
};
pub use sketch::FrequentDirections;
pub use svd::{procrustes, svd, Svd};
pub use tables::{squared_distances_into, TableArena};

use std::fmt;

/// Errors produced by the linear-algebra layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The input matrix was expected to be square.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// An iterative routine failed to converge within its iteration cap.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where at least one row/column is required.
    Empty {
        /// The operation that received empty input.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "expected square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NoConvergence { routine, iterations } => {
                write!(f, "{routine} did not converge after {iterations} iterations")
            }
            LinalgError::Empty { op } => write!(f, "{op} requires non-empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
