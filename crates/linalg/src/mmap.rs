//! Read-only memory-mapped regions and the typed storages that let index
//! payloads borrow their bytes from a map instead of owning them.
//!
//! The out-of-core path (persist format `VAQ4`) lays sealed-segment
//! payloads out as page-aligned extents so the scan kernels can read them
//! straight from the page cache. Each payload is wrapped in a storage enum
//! — [`CodesStorage`], [`U16Storage`], [`U32Storage`], [`F32Storage`],
//! [`U64Storage`] — that is either `Owned` (a plain `Vec`, the in-RAM
//! path) or `Mapped` (a typed window into an [`MappedRegion`]). Both
//! variants deref to the same slice type, so every consumer downstream of
//! the load path is storage-agnostic and answers are byte-identical.
//!
//! Mapped constructors are *total*: any bounds, alignment, or endianness
//! problem yields `None` and the caller degrades to an owned copy. The
//! `unsafe` needed for the FFI and the typed reinterpretation lives
//! entirely in this module (every other crate in the workspace forbids
//! unsafe code).
//!
//! Platform support is Linux/macOS on 64-bit little-endian targets; on
//! anything else [`MappedRegion::map_file`] returns `None` and loaders
//! fall back to owned reads.
//!
//! # Caveat: the backing file must not shrink
//!
//! A `MAP_PRIVATE, PROT_READ` mapping is immune to logical writes by other
//! processes, but truncating the backing file below a mapped page turns
//! accesses into `SIGBUS`. The persist layer only maps files it has just
//! committed atomically and never truncates in place, so this is only
//! reachable by outside interference with the index directory.

use std::fmt;
use std::fs::File;
use std::sync::Arc;

/// Page size assumed by the `VAQ4` extent layout. Real page size is
/// queried nowhere: 4096 divides every page size the supported targets
/// use, so aligning extents to it keeps typed loads aligned and lets
/// `madvise` round to real page boundaries itself.
pub const PAGE_ALIGN: usize = 4096;

/// Advice passed to [`MappedRegion::advise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential access (aggressive readahead).
    Sequential,
    /// Expect random access (no readahead).
    Random,
    /// The range will be needed soon (fault it in asynchronously).
    WillNeed,
}

#[cfg(all(
    not(miri),
    any(target_os = "linux", target_os = "macos"),
    target_pointer_width = "64",
    target_endian = "little"
))]
mod sys {
    use super::Advice;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    // Stable across Linux and macOS on the supported targets.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_RANDOM: i32 = 1;
    const MADV_SEQUENTIAL: i32 = 2;
    const MADV_WILLNEED: i32 = 3;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn madvise(addr: *mut core::ffi::c_void, len: usize, advice: i32) -> i32;
    }

    /// Maps `len` bytes of `file` read-only and private. `None` on any
    /// failure (callers degrade to owned reads). `len` must be non-zero.
    pub(super) fn map(file: &File, len: usize) -> Option<*const u8> {
        // SAFETY: addr=null lets the kernel pick a placement, the fd is
        // live for the duration of the call, and a PROT_READ|MAP_PRIVATE
        // mapping cannot alias any writable Rust memory.
        let ptr = unsafe {
            mmap(core::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
        };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        Some(ptr as *const u8)
    }

    pub(super) fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: (ptr, len) is exactly the mapping returned by `map`;
        // the caller (Drop) guarantees no outstanding borrows.
        unsafe {
            munmap(ptr as *mut core::ffi::c_void, len);
        }
    }

    /// Advisory only: errors are ignored. `addr` must be page-aligned.
    pub(super) fn advise(addr: *const u8, len: usize, advice: Advice) {
        let flag = match advice {
            Advice::Sequential => MADV_SEQUENTIAL,
            Advice::Random => MADV_RANDOM,
            Advice::WillNeed => MADV_WILLNEED,
        };
        // SAFETY: (addr, len) lies within a live mapping owned by the
        // calling MappedRegion and addr is page-aligned (the caller
        // rounds down); madvise never writes through the pointer.
        unsafe {
            madvise(addr as *mut core::ffi::c_void, len, flag);
        }
    }
}

// Miri cannot interpret foreign mmap/munmap calls, so it takes the
// degrade-to-owned stub like any other unsupported target.
#[cfg(not(all(
    not(miri),
    any(target_os = "linux", target_os = "macos"),
    target_pointer_width = "64",
    target_endian = "little"
)))]
mod sys {
    use super::Advice;
    use std::fs::File;

    pub(super) fn map(_file: &File, _len: usize) -> Option<*const u8> {
        None
    }

    pub(super) fn unmap(_ptr: *const u8, _len: usize) {}

    pub(super) fn advise(_addr: *const u8, _len: usize, _advice: Advice) {}
}

/// A read-only, private memory mapping of a whole file. Shared by `Arc`
/// between every storage carved out of it; the mapping lives until the
/// last storage drops.
pub struct MappedRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never handed out mutably; a
// `&MappedRegion` only permits reads of immutable bytes, which is safe
// from any thread.
unsafe impl Send for MappedRegion {}
// SAFETY: as above — shared reads of read-only pages are data-race free.
unsafe impl Sync for MappedRegion {}

impl MappedRegion {
    /// Maps `file` (its full current length) read-only. `None` when the
    /// platform is unsupported, the file is empty, its length does not
    /// fit in `usize`, or the `mmap` call fails — callers degrade to an
    /// owned read.
    pub fn map_file(file: &File) -> Option<Arc<MappedRegion>> {
        let len = file.metadata().ok()?.len();
        let len = usize::try_from(len).ok()?;
        if len == 0 {
            return None;
        }
        let ptr = sys::map(file, len)?;
        Some(Arc::new(MappedRegion { ptr, len }))
    }

    /// Total mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is mapped (never the case for a region built
    /// by [`MappedRegion::map_file`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 || self.ptr.is_null() {
            return &[];
        }
        // SAFETY: ptr is the live mapping base and len its exact length;
        // the pages are immutable for the mapping's lifetime, and the
        // returned borrow cannot outlive `self`, which owns the unmap.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }

    fn base_addr(&self) -> usize {
        self.ptr as usize
    }

    /// Issues `madvise` for `offset..offset + len` (clamped to the
    /// region, rounded out to page boundaries). Purely advisory: failures
    /// and out-of-range requests are ignored.
    pub fn advise(&self, offset: usize, len: usize, advice: Advice) {
        if self.len == 0 || len == 0 || offset >= self.len {
            return;
        }
        let end = offset.saturating_add(len).min(self.len);
        let start = offset - (offset % PAGE_ALIGN);
        // SAFETY-free wrapper: sys::advise holds the unsafe block.
        sys::advise(self.as_bytes()[start..].as_ptr(), end - start, advice);
    }
}

impl Drop for MappedRegion {
    fn drop(&mut self) {
        if self.len > 0 && !self.ptr.is_null() {
            sys::unmap(self.ptr, self.len);
        }
    }
}

impl fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedRegion").field("len", &self.len).finish()
    }
}

/// Where a mapped storage's bytes live inside its region, for the VAQ113
/// audit ("mapped extents stay within file bounds and alignment").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedSpan {
    /// Byte offset of the storage's first element inside the region.
    pub offset: usize,
    /// Length of the storage in bytes.
    pub byte_len: usize,
    /// Total region (file) length in bytes.
    pub region_len: usize,
    /// Whether `offset` sits on a [`PAGE_ALIGN`] boundary.
    pub aligned: bool,
}

macro_rules! typed_storage {
    ($(#[$doc:meta])* $name:ident, $elem:ty) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub enum $name {
            /// The in-RAM path: the storage owns its elements.
            Owned(Vec<$elem>),
            /// A typed window of `len` elements starting `offset` bytes
            /// into a shared read-only mapping.
            Mapped {
                /// The backing mapping, shared with sibling storages.
                region: Arc<MappedRegion>,
                /// Byte offset of the first element.
                offset: usize,
                /// Element (not byte) count.
                len: usize,
            },
        }

        impl $name {
            /// A mapped storage of `len` elements at byte `offset`.
            /// `None` when the window escapes the region, the offset is
            /// misaligned for the element type, or the byte size
            /// overflows — callers degrade to an owned copy.
            pub fn mapped(
                region: Arc<MappedRegion>,
                offset: usize,
                len: usize,
            ) -> Option<$name> {
                let bytes = len.checked_mul(core::mem::size_of::<$elem>())?;
                let end = offset.checked_add(bytes)?;
                if end > region.len() {
                    return None;
                }
                if region
                    .base_addr()
                    .checked_add(offset)?
                    % core::mem::align_of::<$elem>()
                    != 0
                {
                    return None;
                }
                Some($name::Mapped { region, offset, len })
            }

            /// The elements, whichever variant holds them.
            pub fn as_slice(&self) -> &[$elem] {
                match self {
                    $name::Owned(v) => v.as_slice(),
                    $name::Mapped { region, offset, len } => {
                        if *len == 0 {
                            return &[];
                        }
                        let base = region.as_bytes()[*offset..].as_ptr();
                        // SAFETY: the `mapped` constructor proved that
                        // `offset + len * size_of::<elem>()` fits in the
                        // region and that `base` is aligned for the
                        // element type; the target is little-endian (cfg
                        // on sys::map), the bytes are immutable, and any
                        // bit pattern is a valid u8/u16/u32/u64/f32.
                        unsafe {
                            core::slice::from_raw_parts(base as *const $elem, *len)
                        }
                    }
                }
            }

            /// A mutable owned vector, materializing a copy when the
            /// storage is mapped (copy-on-write for the rare mutating
            /// paths, e.g. deletes on a mapped index).
            pub fn to_mut(&mut self) -> &mut Vec<$elem> {
                if let $name::Mapped { .. } = self {
                    *self = $name::Owned(self.as_slice().to_vec());
                }
                match self {
                    $name::Owned(v) => v,
                    // Unreachable: the match above rewrote Mapped.
                    $name::Mapped { .. } => unreachable!("storage just materialized"),
                }
            }

            /// Span metadata when mapped (`None` for owned storage); see
            /// [`MappedSpan`].
            pub fn mapped_span(&self) -> Option<MappedSpan> {
                match self {
                    $name::Owned(_) => None,
                    $name::Mapped { region, offset, len } => Some(MappedSpan {
                        offset: *offset,
                        byte_len: len * core::mem::size_of::<$elem>(),
                        region_len: region.len(),
                        aligned: offset % PAGE_ALIGN == 0,
                    }),
                }
            }

            /// `true` when the storage borrows from a mapping.
            pub fn is_mapped(&self) -> bool {
                matches!(self, $name::Mapped { .. })
            }
        }

        impl core::ops::Deref for $name {
            type Target = [$elem];

            fn deref(&self) -> &[$elem] {
                self.as_slice()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::Owned(Vec::new())
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> $name {
                $name::Owned(v)
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &$name) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    $name::Owned(v) => {
                        write!(f, concat!(stringify!($name), "::Owned(len={})"), v.len())
                    }
                    $name::Mapped { offset, len, .. } => write!(
                        f,
                        concat!(stringify!($name), "::Mapped(offset={}, len={})"),
                        offset, len
                    ),
                }
            }
        }
    };
}

typed_storage!(
    /// Byte storage for [`crate::PackedCodes`] blocks.
    CodesStorage,
    u8
);
typed_storage!(
    /// Storage for row-major `u16` code arrays.
    U16Storage,
    u16
);
typed_storage!(
    /// Storage for `u32` arrays (global ids, TI member indices).
    U32Storage,
    u32
);
typed_storage!(
    /// Storage for `f32` arrays (TI member distances).
    F32Storage,
    f32
);
typed_storage!(
    /// Storage for `u64` arrays (tombstone bitmap words).
    U64Storage,
    u64
);

impl Eq for CodesStorage {}
impl Eq for U16Storage {}
impl Eq for U32Storage {}
impl Eq for U64Storage {}

/// One extent's placement inside a mapped file, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentSpan {
    /// Absolute byte offset of the payload.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Prefetch hints for one mapped segment's scan-relevant extents. Built
/// by the loader, consulted by the query engine: linear strategies
/// declare a sequential pass over the code extents, TI-pruned scans
/// declare random access plus per-cluster `WILLNEED` on the member
/// tables in visit order.
#[derive(Debug, Clone)]
pub struct ScanPrefetch {
    region: Arc<MappedRegion>,
    codes: ExtentSpan,
    packed: ExtentSpan,
    ti_idx: ExtentSpan,
    ti_dist: ExtentSpan,
}

impl ScanPrefetch {
    /// Binds prefetch hints to a segment's extents (zero-length spans are
    /// simply never advised).
    pub fn new(
        region: Arc<MappedRegion>,
        codes: ExtentSpan,
        packed: ExtentSpan,
        ti_idx: ExtentSpan,
        ti_dist: ExtentSpan,
    ) -> ScanPrefetch {
        ScanPrefetch { region, codes, packed, ti_idx, ti_dist }
    }

    /// Declares a front-to-back pass over the code extents (FullScan,
    /// EarlyAbandon, and the Quantized block scan).
    pub fn advise_sequential_scan(&self) {
        self.region.advise(self.codes.offset, self.codes.len, Advice::Sequential);
        self.region.advise(self.packed.offset, self.packed.len, Advice::Sequential);
    }

    /// Declares scattered row access over the code extents (TI-pruned
    /// scans rerank member rows in cluster order, not file order).
    pub fn advise_random_scan(&self) {
        self.region.advise(self.codes.offset, self.codes.len, Advice::Random);
        self.region.advise(self.packed.offset, self.packed.len, Advice::Random);
    }

    /// Asks the kernel to fault in the member tables of one TI cluster
    /// (elements `start..end` of the concatenated member arrays) ahead of
    /// its scan. Cluster member tables are contiguous, so this is one
    /// `WILLNEED` per table per visited cluster.
    pub fn advise_ti_cluster(&self, start: usize, end: usize) {
        if end <= start {
            return;
        }
        let (bytes_start, bytes_len) = (start * 4, (end - start) * 4);
        if bytes_len <= self.ti_idx.len && bytes_start <= self.ti_idx.len - bytes_len {
            self.region.advise(self.ti_idx.offset + bytes_start, bytes_len, Advice::WillNeed);
        }
        if bytes_len <= self.ti_dist.len && bytes_start <= self.ti_dist.len - bytes_len {
            self.region.advise(self.ti_dist.offset + bytes_start, bytes_len, Advice::WillNeed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(bytes: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "vaq-mmap-test-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        (path.clone(), File::open(&path).unwrap())
    }

    #[test]
    fn owned_storages_deref_and_compare() {
        let a = U32Storage::from(vec![1, 2, 3]);
        let b = U32Storage::from(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(a.mapped_span().is_none());
        assert!(!a.is_mapped());
    }

    #[cfg(all(
        not(miri),
        any(target_os = "linux", target_os = "macos"),
        target_pointer_width = "64",
        target_endian = "little"
    ))]
    mod mapped {
        use super::*;

        #[test]
        fn mapped_bytes_match_the_file() {
            let payload: Vec<u8> = (0..=255u8).cycle().take(9000).collect();
            let (path, f) = tmp_file(&payload);
            let region = MappedRegion::map_file(&f).expect("mmap supported here");
            assert_eq!(region.as_bytes(), &payload[..]);
            let storage = CodesStorage::mapped(Arc::clone(&region), 100, 500).unwrap();
            assert_eq!(&storage[..], &payload[100..600]);
            let span = storage.mapped_span().unwrap();
            assert_eq!(span.byte_len, 500);
            assert_eq!(span.region_len, 9000);
            assert!(!span.aligned);
            std::fs::remove_file(path).unwrap();
        }

        #[test]
        fn typed_views_decode_little_endian_values() {
            let mut bytes = vec![0u8; 4096 + 16];
            bytes[4096..4100].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            bytes[4100..4104].copy_from_slice(&7u32.to_le_bytes());
            bytes[4104..4108].copy_from_slice(&1.5f32.to_le_bytes());
            let (path, f) = tmp_file(&bytes);
            let region = MappedRegion::map_file(&f).unwrap();
            let ints = U32Storage::mapped(Arc::clone(&region), 4096, 2).unwrap();
            assert_eq!(&ints[..], &[0xDEAD_BEEF, 7]);
            assert!(ints.mapped_span().unwrap().aligned);
            let floats = F32Storage::mapped(Arc::clone(&region), 4104, 1).unwrap();
            assert_eq!(&floats[..], &[1.5]);
            std::fs::remove_file(path).unwrap();
        }

        #[test]
        fn out_of_bounds_and_misaligned_windows_are_refused() {
            let (path, f) = tmp_file(&[0u8; 64]);
            let region = MappedRegion::map_file(&f).unwrap();
            assert!(U32Storage::mapped(Arc::clone(&region), 0, 17).is_none(), "past end");
            assert!(U32Storage::mapped(Arc::clone(&region), 2, 1).is_none(), "misaligned");
            assert!(
                U64Storage::mapped(Arc::clone(&region), usize::MAX, 1).is_none(),
                "offset overflow"
            );
            assert!(U32Storage::mapped(Arc::clone(&region), 0, 16).is_some());
            std::fs::remove_file(path).unwrap();
        }

        #[test]
        fn to_mut_materializes_an_owned_copy() {
            let (path, f) = tmp_file(&[1, 2, 3, 4, 5, 6, 7, 8]);
            let region = MappedRegion::map_file(&f).unwrap();
            let mut storage = CodesStorage::mapped(region, 0, 8).unwrap();
            storage.to_mut()[0] = 99;
            assert!(!storage.is_mapped());
            assert_eq!(&storage[..], &[99, 2, 3, 4, 5, 6, 7, 8]);
            std::fs::remove_file(path).unwrap();
        }

        #[test]
        fn advise_is_safe_everywhere_in_range_and_out() {
            let (path, f) = tmp_file(&vec![7u8; 5000]);
            let region = MappedRegion::map_file(&f).unwrap();
            region.advise(0, 5000, Advice::Sequential);
            region.advise(4096, 100_000, Advice::WillNeed);
            region.advise(100_000, 10, Advice::Random);
            region.advise(0, 0, Advice::WillNeed);
            let pf = ScanPrefetch::new(
                region,
                ExtentSpan { offset: 0, len: 4096 },
                ExtentSpan { offset: 4096, len: 904 },
                ExtentSpan { offset: 0, len: 0 },
                ExtentSpan { offset: 0, len: 0 },
            );
            pf.advise_sequential_scan();
            pf.advise_random_scan();
            pf.advise_ti_cluster(0, 10);
            std::fs::remove_file(path).unwrap();
        }
    }
}
