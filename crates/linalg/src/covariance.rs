//! Covariance computation for `VarPCA` (paper Algorithm 1).
//!
//! The paper computes the eigen-spectrum of `Xᵀ X`; we additionally offer the
//! mean-centered version, which is the textbook covariance and what the
//! partial-balancing analysis assumes (the z-normalized UCR-style data is
//! already centered, so the two coincide there). Accumulation is in `f64`:
//! million-row sums in `f32` lose enough precision to reorder the small
//! eigenvalues that decide the last few bits of the budget.

use crate::matrix::{DMatrix, Matrix};
use crate::{LinalgError, Result};

/// Per-column means of a data matrix.
pub fn column_means(x: &Matrix) -> Result<Vec<f64>> {
    if x.rows() == 0 {
        return Err(LinalgError::Empty { op: "column_means" });
    }
    let mut means = vec![0.0f64; x.cols()];
    for row in x.iter_rows() {
        for (m, &v) in means.iter_mut().zip(row.iter()) {
            *m += v as f64;
        }
    }
    let inv = 1.0 / x.rows() as f64;
    for m in means.iter_mut() {
        *m *= inv;
    }
    Ok(means)
}

/// Uncentered scatter matrix `Xᵀ X / n` as used by Algorithm 1 of the paper.
pub fn covariance(x: &Matrix) -> Result<DMatrix> {
    accumulate(x, None)
}

/// Mean-centered covariance `(X−μ)ᵀ(X−μ) / n`.
pub fn covariance_centered(x: &Matrix) -> Result<DMatrix> {
    let means = column_means(x)?;
    accumulate(x, Some(&means))
}

fn accumulate(x: &Matrix, means: Option<&[f64]>) -> Result<DMatrix> {
    if x.rows() == 0 {
        return Err(LinalgError::Empty { op: "covariance" });
    }
    let d = x.cols();
    let mut cov = vec![0.0f64; d * d];
    let mut centered = vec![0.0f64; d];
    for row in x.iter_rows() {
        match means {
            Some(mu) => {
                for ((c, &v), &m) in centered.iter_mut().zip(row.iter()).zip(mu.iter()) {
                    *c = v as f64 - m;
                }
            }
            None => {
                for (c, &v) in centered.iter_mut().zip(row.iter()) {
                    *c = v as f64;
                }
            }
        }
        // Upper triangle only; mirrored below.
        for i in 0..d {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let dst = &mut cov[i * d + i..(i + 1) * d];
            for (a, &cj) in dst.iter_mut().zip(centered[i..].iter()) {
                *a += ci * cj;
            }
        }
    }
    let inv = 1.0 / x.rows() as f64;
    for v in cov.iter_mut() {
        *v *= inv;
    }
    // Mirror upper triangle to lower.
    for i in 0..d {
        for j in 0..i {
            cov[i * d + j] = cov[j * d + i];
        }
    }
    Ok(DMatrix::from_vec(d, d, cov))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 10.0]])
    }

    #[test]
    fn means_are_correct() {
        let m = column_means(&toy()).unwrap();
        assert!((m[0] - 3.0).abs() < 1e-12);
        assert!((m[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_errors() {
        let e = Matrix::zeros(0, 3);
        assert!(matches!(column_means(&e), Err(LinalgError::Empty { .. })));
        assert!(matches!(covariance(&e), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn centered_covariance_matches_hand_computation() {
        // Columns are perfectly correlated: col2 = 2*col1. Centered column 1
        // is [-2, 0, 2] so var = 8/3.
        let c = covariance_centered(&toy()).unwrap();
        assert!((c.get(0, 0) - 8.0 / 3.0).abs() < 1e-9);
        assert!((c.get(1, 1) - 32.0 / 3.0).abs() < 1e-9);
        assert!((c.get(0, 1) - 16.0 / 3.0).abs() < 1e-9);
        assert_eq!(c.get(0, 1), c.get(1, 0));
    }

    #[test]
    fn uncentered_scatter_matches_xtx() {
        let x = toy();
        let c = covariance(&x).unwrap();
        // X^T X / n computed directly.
        let xt = x.transpose();
        let xtx = xt.matmul(&x).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((c.get(i, j) - xtx.get(i, j) as f64 / 3.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn covariance_is_symmetric() {
        let x = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.5, 2.0],
            vec![0.0, 3.0, -2.0, 1.0],
            vec![4.0, 1.0, 1.0, -1.0],
            vec![-2.0, 0.0, 3.0, 0.5],
        ]);
        let c = covariance_centered(&x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }

    #[test]
    fn constant_column_has_zero_variance() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]);
        let c = covariance_centered(&x).unwrap();
        assert!(c.get(0, 0).abs() < 1e-12);
        assert!(c.get(0, 1).abs() < 1e-12);
    }
}
