//! Singular value decomposition and the orthogonal Procrustes solve.
//!
//! The only SVD consumers in this workspace are small square problems:
//! OPQ's non-parametric rotation update and ITQ's rotation step both need
//! `argmax_R tr(RᵀM)` over orthogonal `R` for a `d×d` (or `b×b`) matrix `M`,
//! whose solution is `R = U Vᵀ` from `M = U Σ Vᵀ`. For such sizes the
//! one-sided eigen approach is accurate and simple: eigendecompose
//! `MᵀM = V Σ² Vᵀ`, then recover `U = M V Σ⁻¹` (with Gram–Schmidt
//! completion for null directions).

use crate::eigen::sym_eigen;
use crate::matrix::DMatrix;
use crate::{LinalgError, Result};

/// Result of [`svd`]: `a = u * diag(sigma) * vt`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns), `m×n` for an `m×n` input.
    pub u: DMatrix,
    /// Singular values in descending order (length `n`).
    pub sigma: Vec<f64>,
    /// Transposed right singular vectors, `n×n`.
    pub vt: DMatrix,
}

/// Computes the thin SVD of `a` via the eigendecomposition of `aᵀa`.
///
/// Suitable for the small (`n ≲ few hundred`) square/tall matrices used by
/// OPQ and ITQ. Singular values below `1e-12 · σ₀` are treated as zero and
/// their left singular vectors are completed by modified Gram–Schmidt
/// against the columns already produced.
pub fn svd(a: &DMatrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty { op: "svd" });
    }
    let ata = a.transpose().matmul(a)?;
    let eig = sym_eigen(&ata)?;
    let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let v = eig.vectors; // n×n, columns are right singular vectors.

    // U columns: a * v_j / sigma_j where sigma_j is significant.
    let mut u = DMatrix::zeros(m, n);
    let tol = sigma.first().copied().unwrap_or(0.0) * 1e-12;
    let mut null_cols: Vec<usize> = Vec::new();
    for j in 0..n {
        if sigma[j] > tol && sigma[j] > 0.0 {
            let inv = 1.0 / sigma[j];
            for i in 0..m {
                let mut s = 0.0;
                for k in 0..n {
                    s += a.get(i, k) * v.get(k, j);
                }
                u.set(i, j, s * inv);
            }
        } else {
            null_cols.push(j);
        }
    }
    // Complete null columns to an orthonormal set (only matters for
    // rank-deficient inputs; Procrustes still needs a full rotation).
    for &j in &null_cols {
        let mut best: Option<Vec<f64>> = None;
        for seed in 0..m {
            let mut cand = vec![0.0f64; m];
            cand[seed] = 1.0;
            // Orthogonalize against existing columns.
            for jj in 0..n {
                if jj == j || null_cols.contains(&jj) && jj > j {
                    continue;
                }
                let mut proj = 0.0;
                for i in 0..m {
                    proj += cand[i] * u.get(i, jj);
                }
                for i in 0..m {
                    cand[i] -= proj * u.get(i, jj);
                }
            }
            let nrm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if nrm > 1e-8 {
                for c in cand.iter_mut() {
                    *c /= nrm;
                }
                best = Some(cand);
                break;
            }
        }
        if let Some(col) = best {
            for i in 0..m {
                u.set(i, j, col[i]);
            }
        }
    }

    Ok(Svd { u, sigma, vt: v.transpose() })
}

/// Solves the orthogonal Procrustes problem: the orthogonal matrix `R`
/// maximizing `tr(Rᵀ m)`, i.e. `R = U Vᵀ` for `m = U Σ Vᵀ`.
///
/// OPQ's non-parametric iteration and ITQ's rotation update both reduce to
/// this call with `m = XᵀB` (data against its current quantization).
pub fn procrustes(m: &DMatrix) -> Result<DMatrix> {
    let (r, c) = m.shape();
    if r != c {
        return Err(LinalgError::NotSquare { shape: (r, c) });
    }
    let s = svd(m)?;
    s.u.matmul(&s.vt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(s: &Svd) -> DMatrix {
        let n = s.sigma.len();
        let mut d = DMatrix::zeros(n, n);
        for i in 0..n {
            d.set(i, i, s.sigma[i]);
        }
        s.u.matmul(&d).unwrap().matmul(&s.vt).unwrap()
    }

    #[test]
    fn svd_reconstructs_full_rank_square() {
        let a = DMatrix::from_vec(3, 3, vec![2.0, 0.5, -1.0, 0.0, 3.0, 0.7, 1.0, -0.2, 1.5]);
        let s = svd(&a).unwrap();
        assert!(reconstruct(&s).frobenius_distance(&a) < 1e-8);
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let a = DMatrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let s = svd(&a).unwrap();
        assert!(reconstruct(&s).frobenius_distance(&a) < 1e-8);
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = DMatrix::from_vec(3, 3, vec![1.0, 4.0, 0.0, -2.0, 0.5, 3.0, 0.0, 1.0, -1.0]);
        let s = svd(&a).unwrap();
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(s.sigma.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_of_identity() {
        let s = svd(&DMatrix::identity(3)).unwrap();
        for &v in &s.sigma {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn procrustes_returns_orthogonal_matrix() {
        let m = DMatrix::from_vec(3, 3, vec![2.0, -1.0, 0.3, 0.5, 1.0, -0.7, -0.2, 0.8, 1.5]);
        let r = procrustes(&m).unwrap();
        let rtr = r.transpose().matmul(&r).unwrap();
        assert!(rtr.frobenius_distance(&DMatrix::identity(3)) < 1e-8);
    }

    #[test]
    fn procrustes_recovers_known_rotation() {
        // If m is already orthogonal, procrustes(m) == m.
        let theta = 0.7f64;
        let m = DMatrix::from_vec(2, 2, vec![theta.cos(), -theta.sin(), theta.sin(), theta.cos()]);
        let r = procrustes(&m).unwrap();
        assert!(r.frobenius_distance(&m) < 1e-8);
    }

    #[test]
    fn procrustes_maximizes_trace() {
        // tr(Rᵀ M) for the Procrustes solution must beat the identity and a
        // few fixed rotations.
        let m = DMatrix::from_vec(2, 2, vec![0.0, -2.0, 2.0, 0.0]);
        let r = procrustes(&m).unwrap();
        let tr = |r: &DMatrix| -> f64 {
            let p = r.transpose().matmul(&m).unwrap();
            p.get(0, 0) + p.get(1, 1)
        };
        let best = tr(&r);
        assert!(best >= tr(&DMatrix::identity(2)) - 1e-9);
        for k in 1..8 {
            let th = k as f64 * std::f64::consts::PI / 4.0;
            let rot = DMatrix::from_vec(2, 2, vec![th.cos(), -th.sin(), th.sin(), th.cos()]);
            assert!(best >= tr(&rot) - 1e-9);
        }
    }

    #[test]
    fn procrustes_rejects_non_square() {
        assert!(matches!(procrustes(&DMatrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn svd_rank_deficient_still_orthogonal_u() {
        // Rank-1 matrix.
        let a = DMatrix::from_vec(3, 3, vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 3.0, 6.0, 9.0]);
        let s = svd(&a).unwrap();
        assert!(reconstruct(&s).frobenius_distance(&a) < 1e-7);
        assert!(s.sigma[1] < 1e-6 * s.sigma[0].max(1.0));
    }
}
