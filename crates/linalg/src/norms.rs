//! Vector distance kernels.
//!
//! These are the innermost loops of every scan in the workspace, so they are
//! written to auto-vectorize: 4-way unrolled accumulation over exact chunks
//! with a scalar tail. No `unsafe` — the chunking gives LLVM the alignment
//! and trip-count information it needs.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (debug builds) if the lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        acc[0] += a[o] * b[o];
        acc[1] += a[o + 1] * b[o + 1];
        acc[2] += a[o + 2] * b[o + 2];
        acc[3] += a[o + 3] * b[o + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Squared Euclidean distance between two equal-length slices.
///
/// This is the workhorse of k-means assignment and ADC table construction;
/// callers that need the true metric (triangle-inequality pruning) take the
/// square root once at the end via [`euclidean`].
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        let d0 = a[o] - b[o];
        let d1 = a[o + 1] - b[o + 1];
        let d2 = a[o + 2] - b[o + 2];
        let d3 = a[o + 3] - b[o + 3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Euclidean (ℓ2) distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// ℓ2 norm of a vector.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalizes `a` to unit ℓ2 norm in place; leaves zero vectors untouched.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in a.iter_mut() {
            *v *= inv;
        }
    }
}

/// Hamming distance between two equal-length packed bit codes.
#[inline]
pub fn hamming(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x ^ y).count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_values() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_non_multiple_of_four() {
        // 7 elements: 1 chunk of 4 plus a tail of 3.
        let a: Vec<f32> = (1..=7).map(|v| v as f32).collect();
        let expect: f32 = a.iter().map(|v| v * v).sum();
        assert_eq!(dot(&a, &a), expect);
    }

    #[test]
    fn squared_euclidean_known_values() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn squared_euclidean_is_symmetric_and_zero_on_diagonal() {
        let a = [1.0, -2.0, 3.5, 0.25, 9.0];
        let b = [0.5, 2.0, -3.5, 1.25, -9.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
        assert_eq!(squared_euclidean(&a, &a), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        assert_eq!(hamming(&[0b1010], &[0b0110]), 2);
        assert_eq!(hamming(&[u64::MAX, 0], &[0, 0]), 64);
        assert_eq!(hamming(&[7, 7], &[7, 7]), 0);
    }
}
