//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Covariance matrices are symmetric positive semi-definite and small
//! (`d ≤ ~3000` for the paper's datasets), which is exactly the regime where
//! Jacobi shines: it is simple, unconditionally stable, and computes
//! eigen*vectors* to high relative accuracy — important because VAQ uses the
//! eigenvectors as the rotation applied to every query.
//!
//! The solver sweeps all off-diagonal `(p, q)` pairs, annihilating each with
//! a Givens rotation, until the off-diagonal Frobenius norm falls below a
//! tolerance relative to the diagonal magnitude. Convergence of cyclic
//! Jacobi is quadratic once the matrix is nearly diagonal; 30 sweeps is far
//! beyond what any PSD covariance needs.

use crate::matrix::DMatrix;
use crate::{LinalgError, Result};

/// Result of [`sym_eigen`]: eigenvalues sorted in descending order and the
/// matching eigenvectors stored as *columns* of `vectors`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending (`values[0]` is the largest).
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: DMatrix,
}

impl SymEigen {
    /// Fraction of total absolute eigenvalue mass carried by each
    /// eigenvalue — paper Equation 6, the "normalized energy" VAQ uses as
    /// the per-dimension importance measure.
    pub fn normalized_energy(&self) -> Vec<f64> {
        let total: f64 = self.values.iter().map(|v| v.abs()).sum();
        if total == 0.0 {
            return vec![0.0; self.values.len()];
        }
        self.values.iter().map(|v| v.abs() / total).collect()
    }
}

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 64;

/// Relative off-diagonal tolerance at which the matrix counts as diagonal.
const TOL: f64 = 1e-12;

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// Returns eigenvalues in descending order with matching eigenvector
/// columns. The input must be square; symmetry is assumed (only the upper
/// triangle drives the rotations, and the matrix is symmetrized up front to
/// guard against tiny asymmetries from accumulation order).
pub fn sym_eigen(m: &DMatrix) -> Result<SymEigen> {
    let (r, c) = m.shape();
    if r != c {
        return Err(LinalgError::NotSquare { shape: (r, c) });
    }
    let n = r;
    if n == 0 {
        return Err(LinalgError::Empty { op: "sym_eigen" });
    }

    // Work on a symmetrized copy.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = 0.5 * (m.get(i, j) + m.get(j, i));
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        let mut diag = 0.0f64;
        for i in 0..n {
            diag += a[i * n + i].abs();
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() <= TOL * diag.max(1e-300) {
            converged = true;
            break;
        }

        // Threshold Jacobi: skip rotations that cannot meaningfully reduce
        // the off-diagonal mass this sweep. The threshold shrinks with the
        // remaining off-norm, so convergence is unaffected while late
        // sweeps (nearly diagonal matrix) become almost free.
        let pairs = (n * (n - 1) / 2).max(1) as f64;
        let threshold = (off / pairs).sqrt() * 0.1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq == 0.0 || apq.abs() < threshold {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Rotation angle that annihilates a[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let cos = 1.0 / (1.0 + t * t).sqrt();
                let sin = t * cos;

                // Apply rotation to rows/columns p and q of A.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = cos * akp - sin * akq;
                    a[k * n + q] = sin * akp + cos * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = cos * apk - sin * aqk;
                    a[q * n + k] = sin * apk + cos * aqk;
                }
                // Accumulate rotation into eigenvector matrix.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = cos * vkp - sin * vkq;
                    v[k * n + q] = sin * vkp + cos * vkq;
                }
            }
        }
    }
    if !converged {
        // One final tolerance check after the last sweep (the loop checks at
        // sweep start, so a converging final sweep would otherwise error).
        let mut off = 0.0f64;
        let mut diag = 0.0f64;
        for i in 0..n {
            diag += a[i * n + i].abs();
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() > 1e-8 * diag.max(1e-300) {
            return Err(LinalgError::NoConvergence { routine: "jacobi", iterations: MAX_SWEEPS });
        }
    }

    // Extract diagonal and sort descending, carrying eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[j * n + j].total_cmp(&a[i * n + i]));
    let values: Vec<f64> = order.iter().map(|&i| a[i * n + i]).collect();
    let mut vectors = DMatrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for k in 0..n {
            vectors.set(k, dst, v[k * n + src]);
        }
    }
    Ok(SymEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEigen) -> DMatrix {
        // V Λ Vᵀ
        let n = e.values.len();
        let mut lam = DMatrix::zeros(n, n);
        for i in 0..n {
            lam.set(i, i, e.values[i]);
        }
        e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut m = DMatrix::zeros(3, 3);
        m.set(0, 0, 1.0);
        m.set(1, 1, 5.0);
        m.set(2, 2, 3.0);
        let e = sym_eigen(&m).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = DMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eigen(&m).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_is_accurate() {
        // Random-ish symmetric 5x5.
        let mut m = DMatrix::zeros(5, 5);
        let mut s = 1u64;
        for i in 0..5 {
            for j in i..5 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let e = sym_eigen(&m).unwrap();
        assert!(reconstruct(&e).frobenius_distance(&m) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = DMatrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]);
        let e = sym_eigen(&m).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.frobenius_distance(&DMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let m = DMatrix::from_vec(
            4,
            4,
            vec![1.0, 0.2, 0.0, 0.1, 0.2, 7.0, 0.3, 0.0, 0.0, 0.3, 4.0, 0.5, 0.1, 0.0, 0.5, 2.0],
        );
        let e = sym_eigen(&m).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn normalized_energy_sums_to_one() {
        let m = DMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eigen(&m).unwrap();
        let en = e.normalized_energy();
        assert!((en.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(en[0] >= en[1]);
    }

    #[test]
    fn non_square_errors() {
        let m = DMatrix::zeros(2, 3);
        assert!(matches!(sym_eigen(&m), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn empty_errors() {
        let m = DMatrix::zeros(0, 0);
        assert!(matches!(sym_eigen(&m), Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn zero_matrix_all_zero_eigenvalues() {
        let e = sym_eigen(&DMatrix::zeros(3, 3)).unwrap();
        assert_eq!(e.values, vec![0.0; 3]);
        assert_eq!(e.normalized_energy(), vec![0.0; 3]);
    }
}
