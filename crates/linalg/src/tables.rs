//! Flat ADC lookup-table storage.
//!
//! An ADC scan consumes one distance table per subspace: `table[s][c]` is
//! the squared distance from the query's s-th sub-vector to centroid `c`
//! of subspace `s`. The natural `Vec<Vec<f32>>` layout costs one heap
//! allocation per table per query and a pointer chase per lookup — Quick
//! ADC and Quicker ADC (André et al.) show a flat, cache-friendly layout
//! is the prerequisite for every downstream ADC speedup. [`TableArena`] is
//! that layout: one contiguous `f32` buffer plus precomputed per-subspace
//! offsets, refilled in place so steady-state batch queries allocate
//! nothing.

use crate::Matrix;

/// Fills `out` with the squared Euclidean distances from `query` to every
/// row of `centroids`, in one pass over the centroid block.
///
/// This is the batched stripe kernel behind ADC table construction: one
/// call fills a whole subspace's table. Walking `centroids.as_slice()`
/// linearly (rather than calling [`crate::squared_euclidean`] per row)
/// keeps the centroid block streaming through cache, and the 4-wide
/// accumulators auto-vectorize like the scalar kernels in [`crate::norms`].
///
/// # Panics
/// Panics (debug builds) if `query.len() != centroids.cols()` or
/// `out.len() != centroids.rows()`.
#[inline]
pub fn squared_distances_into(query: &[f32], centroids: &Matrix, out: &mut [f32]) {
    debug_assert_eq!(query.len(), centroids.cols());
    debug_assert_eq!(out.len(), centroids.rows());
    let d = centroids.cols();
    let block = centroids.as_slice();
    let chunks = d / 4;
    for (r, slot) in out.iter_mut().enumerate() {
        let row = &block[r * d..r * d + d];
        let mut acc = [0.0f32; 4];
        for i in 0..chunks {
            let o = i * 4;
            let d0 = query[o] - row[o];
            let d1 = query[o + 1] - row[o + 1];
            let d2 = query[o + 2] - row[o + 2];
            let d3 = query[o + 3] - row[o + 3];
            acc[0] += d0 * d0;
            acc[1] += d1 * d1;
            acc[2] += d2 * d2;
            acc[3] += d3 * d3;
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for i in chunks * 4..d {
            let diff = query[i] - row[i];
            sum += diff * diff;
        }
        *slot = sum;
    }
}

/// Contiguous storage for one query's ADC lookup tables.
///
/// Table `s` occupies `buf[offsets[s]..offsets[s+1]]`. The arena is meant
/// to be owned by a long-lived query engine and refilled per query:
/// [`TableArena::ensure_layout`] only touches the heap when the layout
/// actually changes, and [`TableArena::reallocations`] counts those events
/// so tests can assert the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct TableArena {
    buf: Vec<f32>,
    offsets: Vec<usize>,
    reallocations: usize,
}

impl TableArena {
    pub fn new() -> TableArena {
        TableArena::default()
    }

    /// An arena pre-sized for tables of the given lengths.
    pub fn with_layout(sizes: &[usize]) -> TableArena {
        let mut arena = TableArena::new();
        arena.ensure_layout(sizes.iter().copied());
        arena
    }

    /// Re-shapes the arena for tables of the given lengths. Cheap when the
    /// layout is unchanged (one pass over `offsets`, no heap traffic).
    pub fn ensure_layout(&mut self, sizes: impl IntoIterator<Item = usize>) {
        let mut matches = !self.offsets.is_empty();
        let mut count = 0usize;
        let mut total = 0usize;
        let mut new_offsets: Vec<usize> = Vec::new();
        for size in sizes {
            if matches
                && (count + 1 >= self.offsets.len()
                    || self.offsets[count + 1] - self.offsets[count] != size)
            {
                matches = false;
                // Preserve the already-validated prefix.
                new_offsets = self.offsets[..count + 1].to_vec();
            }
            if !matches && new_offsets.is_empty() {
                new_offsets.push(0);
            }
            if !matches {
                new_offsets.push(total + size);
            }
            count += 1;
            total += size;
        }
        if matches && count + 1 == self.offsets.len() {
            return;
        }
        if new_offsets.is_empty() {
            new_offsets = if matches {
                // `matches` held throughout but the old layout has extra tables.
                self.offsets[..count + 1].to_vec()
            } else {
                // Empty arena asked for an empty layout.
                vec![0]
            };
        }
        self.offsets = new_offsets;
        if total > self.buf.len() {
            self.reallocations += 1;
            self.buf.resize(total, 0.0);
        }
    }

    /// Number of tables in the current layout.
    pub fn num_tables(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total `f32` slots across all tables.
    pub fn len(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start offset of each table, plus one past-the-end sentinel.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat buffer; index with `offsets()[s] + code`.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf[..self.len()]
    }

    /// Table `s` as a slice.
    #[inline]
    pub fn table(&self, s: usize) -> &[f32] {
        &self.buf[self.offsets[s]..self.offsets[s + 1]]
    }

    /// Mutable table `s`, for in-place filling.
    #[inline]
    pub fn table_mut(&mut self, s: usize) -> &mut [f32] {
        &mut self.buf[self.offsets[s]..self.offsets[s + 1]]
    }

    /// One table lookup: `table(s)[code]` without slice re-borrowing.
    #[inline]
    pub fn lookup(&self, s: usize, code: usize) -> f32 {
        debug_assert!(self.offsets[s] + code < self.offsets[s + 1]);
        self.buf[self.offsets[s] + code]
    }

    /// Iterates the tables in subspace order.
    pub fn tables(&self) -> impl Iterator<Item = &[f32]> {
        self.offsets.windows(2).map(|w| &self.buf[w[0]..w[1]])
    }

    /// Fills every table through `fill(s, table_s)`.
    pub fn fill_with(&mut self, mut fill: impl FnMut(usize, &mut [f32])) {
        for s in 0..self.num_tables() {
            let (lo, hi) = (self.offsets[s], self.offsets[s + 1]);
            fill(s, &mut self.buf[lo..hi]);
        }
    }

    /// Times the backing buffer had to grow. A steady-state query loop
    /// re-using one arena holds this constant — the zero-allocation
    /// property the batch search path relies on.
    pub fn reallocations(&self) -> usize {
        self.reallocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_centroids() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 2.0], vec![-1.0, 0.5, 3.0]])
    }

    #[test]
    fn stripe_kernel_matches_scalar_distances() {
        let cb = toy_centroids();
        let q = [0.5, -1.0, 2.0];
        let mut out = vec![0.0; cb.rows()];
        squared_distances_into(&q, &cb, &mut out);
        for (r, &got) in out.iter().enumerate() {
            let want = crate::squared_euclidean(&q, cb.row(r));
            assert!((got - want).abs() < 1e-6, "row {r}: {got} vs {want}");
        }
    }

    #[test]
    fn stripe_kernel_handles_wide_rows_with_tail() {
        // 7-dim rows: one 4-chunk plus a 3-tail.
        let rows: Vec<Vec<f32>> =
            (0..5).map(|r| (0..7).map(|c| (r * 7 + c) as f32 * 0.25 - 3.0).collect()).collect();
        let cb = Matrix::from_rows(&rows);
        let q: Vec<f32> = (0..7).map(|c| c as f32 * 0.5).collect();
        let mut out = vec![0.0; 5];
        squared_distances_into(&q, &cb, &mut out);
        for (r, &got) in out.iter().enumerate() {
            assert!((got - crate::squared_euclidean(&q, cb.row(r))).abs() < 1e-5);
        }
    }

    #[test]
    fn arena_layout_and_indexing() {
        let mut arena = TableArena::with_layout(&[4, 2, 3]);
        assert_eq!(arena.num_tables(), 3);
        assert_eq!(arena.len(), 9);
        assert_eq!(arena.offsets(), &[0, 4, 6, 9]);
        arena.fill_with(|s, t| {
            for (c, v) in t.iter_mut().enumerate() {
                *v = (s * 10 + c) as f32;
            }
        });
        assert_eq!(arena.table(1), &[10.0, 11.0]);
        assert_eq!(arena.lookup(2, 2), 22.0);
        assert_eq!(arena.as_slice().len(), 9);
        let collected: Vec<usize> = arena.tables().map(|t| t.len()).collect();
        assert_eq!(collected, vec![4, 2, 3]);
    }

    #[test]
    fn refilling_same_layout_never_reallocates() {
        let mut arena = TableArena::with_layout(&[8, 8, 8]);
        let baseline = arena.reallocations();
        for pass in 0..100 {
            arena.ensure_layout([8usize, 8, 8]);
            arena.fill_with(|s, t| t.fill((pass + s) as f32));
        }
        assert_eq!(arena.reallocations(), baseline, "steady state must not grow");
    }

    #[test]
    fn shrinking_layout_reuses_the_buffer() {
        let mut arena = TableArena::with_layout(&[16, 16]);
        let baseline = arena.reallocations();
        arena.ensure_layout([4usize, 4]);
        assert_eq!(arena.num_tables(), 2);
        assert_eq!(arena.len(), 8);
        assert_eq!(arena.reallocations(), baseline, "shrink must reuse the buffer");
        arena.ensure_layout([16usize, 16, 16]);
        assert_eq!(arena.reallocations(), baseline + 1, "growth must be counted");
    }

    #[test]
    fn layout_change_with_same_total_is_detected() {
        let mut arena = TableArena::with_layout(&[4, 2]);
        arena.ensure_layout([2usize, 4]);
        assert_eq!(arena.offsets(), &[0, 2, 6]);
        arena.ensure_layout([2usize]);
        assert_eq!(arena.num_tables(), 1);
        assert_eq!(arena.len(), 2);
    }
}
