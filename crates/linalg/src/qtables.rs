//! Quantized ADC scan: `u8` lookup tables, a blocked/transposed code
//! layout, and in-register `pshufb` accumulation kernels.
//!
//! The exact ADC loop pays one `u16` code load plus one random `f32`
//! table read per subspace per vector. Quick ADC and Quicker ADC (André
//! et al.) remove that bottleneck with 8-bit-quantized tables small
//! enough to live in SIMD registers, looked up 16–32 lanes at a time
//! with `pshufb`. This module provides the three pieces the query engine
//! composes:
//!
//! 1. [`PackedCodes`] — the codes of every ≤8-bit subspace, transposed
//!    into blocks of [`BLOCK`] vectors laid out subspace-major, so one
//!    SIMD load grabs the same subspace's code for 32 consecutive
//!    vectors. Built once at encode time.
//! 2. [`QuantizedTables`] — a per-query `u8` quantization of the exact
//!    `f32` tables using a per-table minimum plus one shared step
//!    (`delta`), constructed so the de-quantized sum is a certified
//!    *lower bound* on the exact distance.
//! 3. [`accumulate_qsums`] — the scan kernel summing quantized entries
//!    for every vector, dispatching at runtime between a portable scalar
//!    loop and SSSE3/AVX2 `pshufb` kernels on x86_64.
//!
//! # The lower-bound contract
//!
//! For entry value `t` of packed table `s`, the stored byte is
//! `q = floor((t - min_s) / delta)` clamped to `0..=254` and then
//! *verified* in `f64` so `min_s + delta*q <= t` holds. Summing `q` over
//! packed subspaces and adding every table's minimum — including tables
//! too wide to pack — reconstructs `base + delta * qsum`, which cannot
//! exceed the exact distance in real arithmetic; a small multiplicative
//! slack ([`QuantizedTables::bound_scale`]) absorbs the `f32` rounding
//! of both the reconstruction and the exact path's own accumulation.
//! Subspaces wider than 8 bits therefore stay on the `f32` path without
//! breaking the bound: their minima are folded into `base`.
//!
//! # Why `0..=254` and at most 257 subspaces
//!
//! The kernels accumulate into `u16` lanes. With entries capped at 254,
//! up to 257 packed subspaces sum to at most `254 * 257 = 65 278`, which
//! fits `u16::MAX`; [`PackedCodes::pack`] refuses wider plans (the
//! engine then falls back to the exact scan).

use crate::mmap::CodesStorage;
use crate::tables::TableArena;
use std::sync::OnceLock;

/// Number of vectors per packed block. One AVX2 register holds the codes
/// of a whole block; SSSE3 processes it as two 16-lane halves.
pub const BLOCK: usize = 32;

/// Largest number of ≤8-bit subspaces the `u16` accumulators can take
/// without overflow (entries are capped at 254; `254 * 257 <= u16::MAX`).
pub const MAX_PACKED_SUBSPACES: usize = 257;

/// Codes of the ≤8-bit subspaces, transposed into a blocked layout:
/// block-major, then subspace-major, then the [`BLOCK`] lanes of the
/// block. The byte for vector `i`, packed subspace `j` lives at
/// `data[((i / BLOCK) * mp + j) * BLOCK + (i % BLOCK)]`. The tail block
/// is zero-padded so kernels never branch on `n`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedCodes {
    data: CodesStorage,
    /// Original subspace indices with table size `1..=256`, ascending.
    subspaces: Vec<usize>,
    /// Table size (codebook rows) per packed subspace.
    sizes: Vec<usize>,
    /// Total subspace count of the source plan (packed + unpacked).
    m_total: usize,
    n: usize,
    blocks: usize,
}

impl PackedCodes {
    /// Transposes `codes` (row-major `n × table_sizes.len()`) into the
    /// blocked layout, keeping only subspaces with `1..=256` codebook
    /// rows. Returns a packing with *no* subspaces — the caller's signal
    /// to stay on the exact `f32` path — when nothing is packable, when
    /// more than [`MAX_PACKED_SUBSPACES`] subspaces qualify (the `u16`
    /// accumulators could overflow), or when any code is out of range
    /// for its table (a wrong byte here would break the lower bound).
    pub fn pack(codes: &[u16], table_sizes: &[usize], n: usize) -> Self {
        let m = table_sizes.len();
        let fallback = |m_total: usize, n: usize| Self { m_total, n, ..Self::default() };
        if codes.len() != n * m {
            return fallback(m, n);
        }
        let mut subspaces = Vec::new();
        let mut sizes = Vec::new();
        for (s, &sz) in table_sizes.iter().enumerate() {
            if (1..=256).contains(&sz) {
                subspaces.push(s);
                sizes.push(sz);
            }
        }
        if subspaces.is_empty() || subspaces.len() > MAX_PACKED_SUBSPACES {
            return fallback(m, n);
        }
        for row in codes.chunks_exact(m) {
            for (j, &s) in subspaces.iter().enumerate() {
                if usize::from(row[s]) >= sizes[j] {
                    return fallback(m, n);
                }
            }
        }
        let mp = subspaces.len();
        let blocks = n.div_ceil(BLOCK).max(1);
        let mut data = vec![0u8; blocks * mp * BLOCK];
        for (i, row) in codes.chunks_exact(m).enumerate() {
            let (b, lane) = (i / BLOCK, i % BLOCK);
            for (j, &s) in subspaces.iter().enumerate() {
                // Cannot fail: the loop above rejected any code not
                // strictly below its table size, and sizes are <= 256.
                data[(b * mp + j) * BLOCK + lane] = u8::try_from(row[s]).unwrap_or(u8::MAX);
            }
        }
        Self { data: data.into(), subspaces, sizes, m_total: m, n, blocks }
    }

    /// Rebuilds a packing from serialized parts: the blocked bytes
    /// (owned or mapped) plus the plan that produced them. Recomputes
    /// the packable-subspace selection from `table_sizes` (a pure
    /// function of the plan) and validates the byte length; `None` on
    /// any mismatch. Byte *content* (`data[..] < sizes[j]`) is not
    /// validated here — mapped loaders defer that to the lazy
    /// per-segment verification, owned loaders check it eagerly.
    pub fn from_parts(data: CodesStorage, table_sizes: &[usize], n: usize) -> Option<Self> {
        let m = table_sizes.len();
        let mut subspaces = Vec::new();
        let mut sizes = Vec::new();
        for (s, &sz) in table_sizes.iter().enumerate() {
            if (1..=256).contains(&sz) {
                subspaces.push(s);
                sizes.push(sz);
            }
        }
        if subspaces.is_empty() || subspaces.len() > MAX_PACKED_SUBSPACES {
            // The plan itself is unpackable: only the byte-free inactive
            // fallback (exactly what `pack` would produce) round-trips.
            return data.is_empty().then(|| Self::inactive(m, n));
        }
        let mp = subspaces.len();
        let blocks = n.div_ceil(BLOCK).max(1);
        if data.len() != blocks * mp * BLOCK {
            return None;
        }
        Some(Self { data, subspaces, sizes, m_total: m, n, blocks })
    }

    /// The inactive fallback packing: no packed subspaces, the engine
    /// stays on the exact `f32` path. Matches what [`PackedCodes::pack`]
    /// returns when it degrades.
    pub fn inactive(m_total: usize, n: usize) -> Self {
        Self { m_total, n, ..Self::default() }
    }

    /// Appends `n_new` freshly encoded rows without re-transposing the
    /// existing blocks: only the trailing partial [`BLOCK`] (whose lanes
    /// were zero padding) and the newly added blocks are written. The
    /// result is byte-identical to a full [`PackedCodes::pack`] over the
    /// concatenated codes — including the fallback semantics: an
    /// out-of-range new code, a row-length mismatch, or a `table_sizes`
    /// plan that differs from the one this packing was built with all
    /// degrade to the inactive fallback, exactly as the full repack
    /// would.
    pub fn append(&mut self, new_codes: &[u16], table_sizes: &[usize], n_new: usize) {
        let m = table_sizes.len();
        let n_total = self.n + n_new;
        // An inactive packing stays inactive under any suffix: the full
        // repack would see the same unpackable plan or the same bad
        // prefix row. Only the bookkeeping advances.
        if !self.is_active() {
            self.m_total = m;
            self.n = n_total;
            return;
        }
        let degrade = |this: &mut Self| {
            *this = Self { m_total: m, n: n_total, ..Self::default() };
        };
        if m != self.m_total || new_codes.len() != n_new * m {
            return degrade(self);
        }
        // The packable-subspace selection is a pure function of the
        // plan; a caller switching plans mid-stream gets the fallback
        // rather than a silently inconsistent transpose.
        let mut expect = self.subspaces.iter();
        for (s, &sz) in table_sizes.iter().enumerate() {
            if (1..=256).contains(&sz) && expect.next() != Some(&s) {
                return degrade(self);
            }
        }
        if expect.next().is_some() {
            return degrade(self);
        }
        for row in new_codes.chunks_exact(m) {
            for (j, &s) in self.subspaces.iter().enumerate() {
                if usize::from(row[s]) >= self.sizes[j] {
                    return degrade(self);
                }
            }
        }
        let mp = self.subspaces.len();
        let blocks = n_total.div_ceil(BLOCK).max(1);
        // Earlier blocks never move in the block-major layout; growing
        // the buffer only zero-fills the new tail blocks. A mapped
        // packing materializes an owned copy first (copy-on-write).
        let data = self.data.to_mut();
        data.resize(blocks * mp * BLOCK, 0u8);
        for (i, row) in new_codes.chunks_exact(m).enumerate() {
            let g = self.n + i;
            let (b, lane) = (g / BLOCK, g % BLOCK);
            for (j, &s) in self.subspaces.iter().enumerate() {
                // Cannot fail: the check above bounds each code below a
                // table size of at most 256.
                data[(b * mp + j) * BLOCK + lane] = u8::try_from(row[s]).unwrap_or(u8::MAX);
            }
        }
        self.n = n_total;
        self.blocks = blocks;
    }

    /// `true` when at least one subspace was packed and the quantized
    /// scan can run.
    pub fn is_active(&self) -> bool {
        !self.subspaces.is_empty()
    }

    /// Number of packed subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.subspaces.len()
    }

    /// Original subspace indices of the packed subspaces, ascending.
    pub fn subspaces(&self) -> &[usize] {
        &self.subspaces
    }

    /// Table sizes (codebook rows) per packed subspace.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total subspace count of the source plan, packed or not.
    pub fn num_total_subspaces(&self) -> usize {
        self.m_total
    }

    /// Number of encoded vectors (excluding tail padding).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no vectors are encoded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of [`BLOCK`]-sized blocks, including the padded tail.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Capacity the accumulator buffer must have: `blocks() * BLOCK`.
    pub fn padded_len(&self) -> usize {
        self.blocks * BLOCK
    }

    /// Raw blocked bytes (see the struct docs for the layout).
    pub fn data(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// The storage behind the blocked bytes (owned vs mapped), for the
    /// persist layer and the VAQ113 audit.
    pub fn storage(&self) -> &CodesStorage {
        &self.data
    }
}

/// Per-query `u8` quantization of the exact `f32` lookup tables held by
/// a [`TableArena`], reusable across queries without reallocating.
///
/// Rows are padded with zeros to a multiple of 16 bytes so the SIMD
/// kernels can load whole chunks; pad bytes are never selected because
/// every code is `< sizes[j]`.
#[derive(Clone, Debug, Default)]
pub struct QuantizedTables {
    entries: Vec<u8>,
    /// `num_subspaces + 1` row boundaries into `entries`.
    offsets: Vec<usize>,
    /// Scratch: per-packed-table minima.
    mins: Vec<f32>,
    delta: f32,
    base: f32,
    bound_scale: f32,
}

impl QuantizedTables {
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantizes the arena's tables against `packed`'s subspace
    /// selection. The arena must hold one table per subspace of the plan
    /// that produced `packed` (checked in debug builds).
    pub fn quantize(&mut self, arena: &TableArena, packed: &PackedCodes) {
        debug_assert_eq!(arena.num_tables(), packed.num_total_subspaces());
        let mp = packed.num_subspaces();

        // One pass over every table: `base` folds in all minima (packed
        // or not) so the reconstruction bounds the full-m distance, while
        // the shared step spans only the packed tables' widest range.
        self.mins.clear();
        let mut base = 0.0f32;
        let mut max_range = 0.0f32;
        let mut next = 0usize;
        for (s, t) in arena.tables().enumerate() {
            let (mut mn, mut mx) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in t {
                mn = mn.min(v);
                mx = mx.max(v);
            }
            if mn.is_finite() {
                base += mn;
            }
            if next < mp && packed.subspaces()[next] == s {
                self.mins.push(if mn.is_finite() { mn } else { 0.0 });
                if (mx - mn).is_finite() {
                    max_range = max_range.max(mx - mn);
                }
                next += 1;
            }
        }
        let delta = if max_range > 0.0 { max_range / 254.0 } else { 0.0 };

        self.entries.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for (j, &s) in packed.subspaces().iter().enumerate() {
            let t = arena.table(s);
            let mn = self.mins[j];
            for &v in t {
                self.entries.push(quantize_entry(v, mn, delta));
            }
            // Zero-pad the row to whole 16-byte chunks for the kernels.
            let padded = self.offsets[j] + t.len().max(1).div_ceil(16) * 16;
            self.entries.resize(padded, 0);
            self.offsets.push(self.entries.len());
        }

        self.delta = delta;
        self.base = base;
        // Slack absorbing `f32` rounding on both sides of the pruning
        // comparison: the (m+2)-term reconstruction here and the exact
        // path's own m-term accumulation. 8(m+4) ulps is far beyond
        // either error's worst case.
        self.bound_scale = 1.0 - 8.0 * (arena.num_tables() + 4) as f32 * f32::EPSILON;
    }

    /// Number of quantized rows (packed subspaces).
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Quantized row `j`, zero-padded to a multiple of 16 bytes.
    pub fn row(&self, j: usize) -> &[u8] {
        &self.entries[self.offsets[j]..self.offsets[j + 1]]
    }

    /// The shared quantization step. `0` means every packed table was
    /// constant and all stored bytes are zero.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Sum of every table's minimum entry (packed and unpacked).
    pub fn base(&self) -> f32 {
        self.base
    }

    /// Multiplicative slack applied to positive bounds; see `quantize`.
    pub fn bound_scale(&self) -> f32 {
        self.bound_scale
    }

    /// Certified lower bound on the exact full-m ADC distance of a
    /// vector whose packed entries sum to `qsum`. Safe to prune with:
    /// `lower_bound(qsum) >= threshold` implies the exact `f32` distance
    /// is `>= threshold` too.
    #[inline]
    pub fn lower_bound(&self, qsum: u16) -> f32 {
        let lb = self.base + self.delta * f32::from(qsum);
        if lb > 0.0 {
            lb * self.bound_scale
        } else {
            lb
        }
    }

    /// Worst-case gap between the bound and the exact distance coming
    /// from quantization alone (one sub-`delta` truncation per packed
    /// row). Reported by the bench for context.
    pub fn max_underestimate(&self) -> f32 {
        self.delta * self.num_rows() as f32
    }

    /// Smallest quantized sum whose [`Self::lower_bound`] reaches
    /// `threshold`, or `u32::MAX` when no representable sum does. Testing
    /// `u32::from(qsum) >= prune_cutoff(t)` is *exactly* equivalent to
    /// testing `lower_bound(qsum) >= t` — `lower_bound` is monotone
    /// nondecreasing in the sum (`delta >= 0`, and the positive branch's
    /// `* bound_scale` preserves order across the sign boundary) — but
    /// moves all float work out of the per-vector scan loop.
    pub fn prune_cutoff(&self, threshold: f32) -> u32 {
        let reachable = self.lower_bound(u16::MAX) >= threshold;
        if !reachable {
            return u32::MAX; // also catches threshold = INFINITY / NaN
        }
        // Binary search the boundary; invariant: lower_bound(hi) >= threshold.
        let (mut lo, mut hi) = (0u32, u32::from(u16::MAX));
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Cannot fail: lo <= mid <= hi <= u16::MAX by the invariant.
            if self.lower_bound(u16::try_from(mid).unwrap_or(u16::MAX)) >= threshold {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        hi
    }
}

/// Floor-quantizes one table entry, then walks the byte down until
/// `min + delta*q <= t` certifies in `f64` (the `f32` division and floor
/// can land one step high near representability boundaries).
fn quantize_entry(t: f32, min: f32, delta: f32) -> u8 {
    if delta <= 0.0 || !t.is_finite() {
        return 0;
    }
    // The only `as` cast in this file (allowlisted under VAQ010): Rust
    // float->int `as` saturates, and the clamp bounds q to [0, 254].
    let mut q = (((t - min) / delta).floor() as i64).clamp(0, 254);
    let (tf, mf, df) = (f64::from(t), f64::from(min), f64::from(delta));
    while q > 0 && mf + df * q as f64 > tf {
        q -= 1;
    }
    // Cannot fail: q stays within [0, 254].
    u8::try_from(q).unwrap_or(0)
}

/// Which accumulation kernel a scan uses. All variants exist on every
/// architecture; dispatch re-verifies CPU support before any `unsafe`
/// call and silently degrades to `Scalar` when the feature is missing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanKernel {
    /// Portable loop; auto-vectorizes reasonably on most targets.
    Scalar,
    /// `pshufb` over two 16-lane halves per block (x86_64).
    Ssse3,
    /// `vpshufb` over the whole 32-lane block (x86_64).
    Avx2,
}

impl ScanKernel {
    /// Human-readable name for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Scalar => "scalar",
            ScanKernel::Ssse3 => "ssse3",
            ScanKernel::Avx2 => "avx2",
        }
    }
}

/// The kernel the current process uses, picked once: the widest
/// supported x86_64 feature, unless `VAQ_FORCE_SCALAR` is set to a
/// non-empty value other than `0`.
pub fn active_kernel() -> ScanKernel {
    static KERNEL: OnceLock<ScanKernel> = OnceLock::new();
    *KERNEL.get_or_init(detect_kernel)
}

fn detect_kernel() -> ScanKernel {
    // Miri interprets no x86 shuffle intrinsics; the scalar kernel visits
    // lanes in the same order, so interpreted runs lose no coverage.
    if cfg!(miri) {
        return ScanKernel::Scalar;
    }
    let forced = std::env::var_os("VAQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        return ScanKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return ScanKernel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return ScanKernel::Ssse3;
        }
    }
    ScanKernel::Scalar
}

/// Signature of a kernel timing observer: `(kernel name, elapsed ns)`
/// per [`accumulate_qsums`] call.
pub type KernelTimingHook = fn(&'static str, u64);

static TIMING_HOOK: OnceLock<KernelTimingHook> = OnceLock::new();

/// Installs a process-wide observer that is called with the kernel name
/// and elapsed nanoseconds after every [`accumulate_qsums`] dispatch.
/// First installation wins; later calls are ignored. The crate stays
/// dependency-free — higher layers (the obs subsystem) plug in here, and
/// no clock is read until a hook is installed.
pub fn install_kernel_timing_hook(hook: KernelTimingHook) {
    let _ = TIMING_HOOK.set(hook);
}

/// Sums the quantized table entry of every packed subspace for every
/// vector, writing one `u16` per lane into `out` (resized to
/// [`PackedCodes::padded_len`]; tail lanes hold the code-0 sum and must
/// be ignored). Uses [`active_kernel`].
pub fn accumulate_qsums(packed: &PackedCodes, qt: &QuantizedTables, out: &mut Vec<u16>) {
    accumulate_qsums_with(active_kernel(), packed, qt, out);
}

/// Same as [`accumulate_qsums`] with an explicit kernel — the hook the
/// parity tests use to compare SIMD against scalar on identical inputs.
/// SIMD requests re-verify CPU support and fall back to scalar if the
/// feature is unavailable.
pub fn accumulate_qsums_with(
    kernel: ScanKernel,
    packed: &PackedCodes,
    qt: &QuantizedTables,
    out: &mut Vec<u16>,
) {
    match TIMING_HOOK.get() {
        Some(hook) => {
            let t0 = std::time::Instant::now();
            accumulate_dispatch(kernel, packed, qt, out);
            hook(kernel.name(), u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        None => accumulate_dispatch(kernel, packed, qt, out),
    }
}

fn accumulate_dispatch(
    kernel: ScanKernel,
    packed: &PackedCodes,
    qt: &QuantizedTables,
    out: &mut Vec<u16>,
) {
    debug_assert_eq!(qt.num_rows(), packed.num_subspaces());
    out.clear();
    out.resize(packed.padded_len(), 0);
    match kernel {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        ScanKernel::Ssse3 if std::arch::is_x86_feature_detected!("ssse3") => {
            // SAFETY: SSSE3 support was just verified by the match guard.
            unsafe { x86::accumulate_ssse3(packed, qt, out) }
        }
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        ScanKernel::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
            // SAFETY: AVX2 support was just verified by the match guard.
            unsafe { x86::accumulate_avx2(packed, qt, out) }
        }
        _ => accumulate_scalar(packed, qt, out),
    }
}

/// Portable accumulation: same visitation order as the SIMD kernels, so
/// the `u16` results are bit-identical (integer adds commute exactly).
fn accumulate_scalar(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
    let mp = packed.num_subspaces();
    let data = packed.data();
    for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
        for j in 0..mp {
            let codes = &data[(b * mp + j) * BLOCK..][..BLOCK];
            let row = qt.row(j);
            for (acc, &c) in out_b.iter_mut().zip(codes) {
                *acc += u16::from(row[usize::from(c)]);
            }
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[deny(unsafe_op_in_unsafe_fn)]
mod x86 {
    //! `pshufb`-based kernels. Tables with ≤16 entries resolve in one
    //! shuffle; wider tables (up to 256 entries) split the code into
    //! nibbles and select the right 16-entry chunk with a `cmpeq` mask —
    //! the Quicker-ADC chunked lookup. `u8` results widen to the `u16`
    //! accumulators in linear lane order.

    use super::{PackedCodes, QuantizedTables, BLOCK};
    use std::arch::x86_64::*;

    /// SSSE3 kernel: each block is two 16-lane halves, four 8×`u16`
    /// accumulators.
    ///
    /// SAFETY: the caller must verify SSSE3 support at runtime before
    /// calling (`is_x86_feature_detected!("ssse3")`).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn accumulate_ssse3(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
        let mp = packed.num_subspaces();
        let data = packed.data();
        let low_mask = _mm_set1_epi8(0x0f);
        let zero = _mm_setzero_si128();
        for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
            let mut acc = [zero; 4];
            for j in 0..mp {
                let row = qt.row(j);
                let chunks = row.len() / 16;
                let codes = &data[(b * mp + j) * BLOCK..][..BLOCK];
                for half in 0..2 {
                    // SAFETY: `codes` has BLOCK = 32 bytes; `half * 16 + 16 <= 32`.
                    let cv = unsafe { _mm_loadu_si128(codes.as_ptr().add(half * 16).cast()) };
                    let vals = if chunks == 1 {
                        // Codes are < 16, so a single in-register shuffle
                        // resolves the whole lookup.
                        // SAFETY: `row` is padded to at least 16 bytes.
                        let tbl = unsafe { _mm_loadu_si128(row.as_ptr().cast()) };
                        _mm_shuffle_epi8(tbl, cv)
                    } else {
                        let lo = _mm_and_si128(cv, low_mask);
                        let hi = _mm_and_si128(_mm_srli_epi16::<4>(cv), low_mask);
                        let mut v = zero;
                        for (k, kb) in (0..chunks).zip(0i8..) {
                            // SAFETY: `row` is padded to `chunks * 16` bytes.
                            let tbl = unsafe { _mm_loadu_si128(row.as_ptr().add(k * 16).cast()) };
                            let sel = _mm_cmpeq_epi8(hi, _mm_set1_epi8(kb));
                            v = _mm_or_si128(v, _mm_and_si128(sel, _mm_shuffle_epi8(tbl, lo)));
                        }
                        v
                    };
                    // Interleaving with zero widens u8→u16 in lane order.
                    acc[half * 2] = _mm_add_epi16(acc[half * 2], _mm_unpacklo_epi8(vals, zero));
                    acc[half * 2 + 1] =
                        _mm_add_epi16(acc[half * 2 + 1], _mm_unpackhi_epi8(vals, zero));
                }
            }
            for (q, a) in acc.iter().enumerate() {
                // SAFETY: `out_b` has BLOCK = 32 u16 lanes; `q * 8 + 8 <= 32`.
                unsafe { _mm_storeu_si128(out_b.as_mut_ptr().add(q * 8).cast(), *a) };
            }
        }
    }

    /// AVX2 kernel: a whole 32-lane block per iteration. The 16-byte
    /// table chunk is broadcast to both 128-bit lanes because `vpshufb`
    /// shuffles within each lane independently.
    ///
    /// SAFETY: the caller must verify AVX2 support at runtime before
    /// calling (`is_x86_feature_detected!("avx2")`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_avx2(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
        let mp = packed.num_subspaces();
        let data = packed.data();
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
            let mut acc_lo = zero;
            let mut acc_hi = zero;
            for j in 0..mp {
                let row = qt.row(j);
                let chunks = row.len() / 16;
                let codes = &data[(b * mp + j) * BLOCK..][..BLOCK];
                // SAFETY: `codes` has exactly BLOCK = 32 bytes.
                let cv = unsafe { _mm256_loadu_si256(codes.as_ptr().cast()) };
                let vals = if chunks == 1 {
                    // SAFETY: `row` is padded to at least 16 bytes.
                    let tbl = unsafe { _mm_loadu_si128(row.as_ptr().cast()) };
                    _mm256_shuffle_epi8(_mm256_broadcastsi128_si256(tbl), cv)
                } else {
                    let lo = _mm256_and_si256(cv, low_mask);
                    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(cv), low_mask);
                    let mut v = zero;
                    for (k, kb) in (0..chunks).zip(0i8..) {
                        // SAFETY: `row` is padded to `chunks * 16` bytes.
                        let tbl = unsafe { _mm_loadu_si128(row.as_ptr().add(k * 16).cast()) };
                        let t2 = _mm256_broadcastsi128_si256(tbl);
                        let sel = _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(kb));
                        v = _mm256_or_si256(v, _mm256_and_si256(sel, _mm256_shuffle_epi8(t2, lo)));
                    }
                    v
                };
                // Widen with cvtepu8 to keep u16 lane order linear
                // (unpack would interleave across the 128-bit lanes).
                acc_lo =
                    _mm256_add_epi16(acc_lo, _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vals)));
                acc_hi = _mm256_add_epi16(
                    acc_hi,
                    _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vals)),
                );
            }
            // SAFETY: `out_b` has BLOCK = 32 u16 lanes = two 256-bit stores.
            unsafe { _mm256_storeu_si256(out_b.as_mut_ptr().cast(), acc_lo) };
            // SAFETY: offset 16 leaves exactly 16 u16 lanes for the store.
            unsafe { _mm256_storeu_si256(out_b.as_mut_ptr().add(16).cast(), acc_hi) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG in [0, 1).
    fn rng(seed: &mut u64) -> f32 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 40) as f32) / (1u32 << 24) as f32
    }

    /// Builds an arena with the given table sizes filled with random
    /// non-negative values, plus random in-range codes for `n` vectors.
    fn setup(sizes: &[usize], n: usize, seed: u64) -> (TableArena, Vec<u16>) {
        let mut s = seed.wrapping_add(1);
        let mut arena = TableArena::with_layout(sizes);
        for t in 0..sizes.len() {
            for v in arena.table_mut(t) {
                *v = rng(&mut s) * 10.0;
            }
        }
        let mut codes = Vec::with_capacity(n * sizes.len());
        for _ in 0..n {
            for &sz in sizes {
                codes.push((rng(&mut s) * sz as f32) as u16 % sz as u16);
            }
        }
        (arena, codes)
    }

    const MIXED_SIZES: &[usize] = &[4, 16, 32, 256, 1024, 7];

    #[test]
    fn pack_transposes_into_blocked_layout() {
        let sizes = [16usize, 256, 512];
        let (_, codes) = setup(&sizes, 70, 3);
        let packed = PackedCodes::pack(&codes, &sizes, 70);
        assert_eq!(packed.subspaces(), &[0, 1]);
        assert_eq!(packed.blocks(), 3);
        assert_eq!(packed.data().len(), 3 * 2 * BLOCK);
        let mp = packed.num_subspaces();
        for i in 0..70 {
            let (b, lane) = (i / BLOCK, i % BLOCK);
            for (j, &s) in packed.subspaces().iter().enumerate() {
                assert_eq!(
                    packed.data()[(b * mp + j) * BLOCK + lane],
                    codes[i * sizes.len() + s] as u8,
                    "vector {i} subspace {s}"
                );
            }
        }
        // Tail lanes of the last block are zero-padded.
        for lane in 70 % BLOCK..BLOCK {
            for j in 0..mp {
                assert_eq!(packed.data()[(2 * mp + j) * BLOCK + lane], 0);
            }
        }
    }

    #[test]
    fn append_is_byte_identical_to_full_repack() {
        // Cross every interesting boundary: appends that stay inside the
        // trailing partial block, land exactly on a block edge, and span
        // multiple new blocks — the derived `Eq` compares the raw blocked
        // bytes including tail padding, so equality here is byte-level.
        let sizes = MIXED_SIZES;
        let m = sizes.len();
        for (n0, extra) in [(0, 1), (5, 3), (30, 2), (32, 32), (33, 70), (64, 1), (70, 100)] {
            let (_, all) = setup(sizes, n0 + extra, 7 + n0 as u64);
            let mut incremental = PackedCodes::pack(&all[..n0 * m], sizes, n0);
            incremental.append(&all[n0 * m..], sizes, extra);
            let full = PackedCodes::pack(&all, sizes, n0 + extra);
            assert_eq!(incremental, full, "n0={n0} extra={extra}");
        }
        // Chained appends equal one shot too.
        let (_, all) = setup(sizes, 100, 42);
        let mut inc = PackedCodes::pack(&all[..10 * m], sizes, 10);
        let mut at = 10;
        for step in [1usize, 21, 32, 36] {
            inc.append(&all[at * m..(at + step) * m], sizes, step);
            at += step;
        }
        assert_eq!(inc, PackedCodes::pack(&all, sizes, 100));
    }

    #[test]
    fn append_degrades_exactly_like_full_repack() {
        // An out-of-range appended code must yield the same inactive
        // fallback the full repack produces.
        let sizes = [4usize, 8];
        let (_, mut all) = setup(&sizes, 40, 5);
        let mut inc = PackedCodes::pack(&all[..20 * 2], &sizes, 20);
        assert!(inc.is_active());
        all[25 * 2] = 4; // >= sizes[0]
        inc.append(&all[20 * 2..], &sizes, 20);
        assert_eq!(inc, PackedCodes::pack(&all, &sizes, 40));
        assert!(!inc.is_active());
        assert_eq!(inc.len(), 40);
        // Once inactive, further appends only advance the bookkeeping —
        // matching a full repack that still sees the poisoned prefix.
        let (_, more) = setup(&sizes, 8, 6);
        inc.append(&more, &sizes, 8);
        let mut combined = all.clone();
        combined.extend_from_slice(&more);
        assert_eq!(inc, PackedCodes::pack(&combined, &sizes, 48));
        // A plan switch mid-stream is refused rather than transposed
        // inconsistently.
        let mut inc = PackedCodes::pack(&all[..20 * 2], &sizes, 20);
        inc.append(&all[20 * 2..], &[4, 512], 20);
        assert!(!inc.is_active());
        assert_eq!(inc.len(), 40);
    }

    #[test]
    fn pack_refuses_unpackable_plans() {
        // Nothing ≤ 256 rows.
        let p = PackedCodes::pack(&[0, 0], &[512, 1024], 1);
        assert!(!p.is_active());
        // Too many subspaces for the u16 accumulators.
        let sizes = vec![2usize; MAX_PACKED_SUBSPACES + 1];
        let codes = vec![0u16; sizes.len()];
        let p = PackedCodes::pack(&codes, &sizes, 1);
        assert!(!p.is_active());
        // An out-of-range code would corrupt the bound: refuse.
        let p = PackedCodes::pack(&[3, 1], &[4, 4], 1);
        assert!(p.is_active());
        let p = PackedCodes::pack(&[4, 1], &[4, 4], 1);
        assert!(!p.is_active());
    }

    #[test]
    fn quantized_sum_lower_bounds_exact_distance() {
        for seed in 0..20 {
            let n = 57;
            let (arena, codes) = setup(MIXED_SIZES, n, seed);
            let packed = PackedCodes::pack(&codes, MIXED_SIZES, n);
            assert_eq!(packed.num_subspaces(), 5);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let mut qsums = Vec::new();
            accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut qsums);
            let m = MIXED_SIZES.len();
            for i in 0..n {
                let exact: f32 = (0..m).map(|s| arena.lookup(s, codes[i * m + s] as usize)).sum();
                let lb = qt.lower_bound(qsums[i]);
                assert!(lb <= exact, "seed {seed} vector {i}: bound {lb} exceeds exact {exact}");
                // And the bound is not vacuous: for the packed part it is
                // within m*delta of the exact entries (unpacked subspaces
                // only contribute their minimum, which the floor reflects).
                let floor: f32 = packed
                    .subspaces()
                    .iter()
                    .map(|&s| arena.lookup(s, codes[i * m + s] as usize))
                    .sum::<f32>()
                    + (0..m)
                        .filter(|s| !packed.subspaces().contains(s))
                        .map(|s| arena.table(s).iter().copied().fold(f32::INFINITY, f32::min))
                        .sum::<f32>();
                assert!(lb >= floor - qt.max_underestimate() - 1e-3);
            }
        }
    }

    #[test]
    fn prune_cutoff_is_equivalent_to_lower_bound_test() {
        let (arena, codes) = setup(MIXED_SIZES, 40, 9);
        let packed = PackedCodes::pack(&codes, MIXED_SIZES, 40);
        let mut qt = QuantizedTables::new();
        qt.quantize(&arena, &packed);
        let thresholds = [
            f32::NEG_INFINITY,
            -1.0,
            0.0,
            qt.base(),
            qt.lower_bound(1),
            qt.lower_bound(700),
            qt.lower_bound(700) + 1e-6,
            qt.lower_bound(u16::MAX),
            f32::INFINITY,
            f32::NAN,
        ];
        for t in thresholds {
            let cutoff = qt.prune_cutoff(t);
            for q in (0..=u32::from(u16::MAX)).step_by(7).chain([cutoff.saturating_sub(1), cutoff])
            {
                let Ok(q16) = u16::try_from(q) else { continue };
                assert_eq!(
                    q >= cutoff,
                    qt.lower_bound(q16) >= t,
                    "threshold {t} qsum {q} cutoff {cutoff}"
                );
            }
        }
    }

    #[test]
    fn simd_kernels_match_scalar_exactly() {
        for &n in &[1usize, 31, 32, 33, 400] {
            let (arena, codes) = setup(MIXED_SIZES, n, n as u64);
            let packed = PackedCodes::pack(&codes, MIXED_SIZES, n);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let mut reference = Vec::new();
            accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut reference);
            for kernel in [ScanKernel::Ssse3, ScanKernel::Avx2, active_kernel()] {
                let mut out = Vec::new();
                accumulate_qsums_with(kernel, &packed, &qt, &mut out);
                assert_eq!(out, reference, "kernel {} n {n}", kernel.name());
            }
        }
    }

    #[test]
    fn constant_tables_quantize_to_zero() {
        let sizes = [8usize, 8];
        let mut arena = TableArena::with_layout(&sizes);
        arena.fill_with(|_, t| t.fill(2.5));
        let codes: Vec<u16> = (0..16).map(|i| i % 8).collect();
        let packed = PackedCodes::pack(&codes, &sizes, 8);
        let mut qt = QuantizedTables::new();
        qt.quantize(&arena, &packed);
        assert_eq!(qt.delta(), 0.0);
        let mut qsums = Vec::new();
        accumulate_qsums(&packed, &qt, &mut qsums);
        assert!(qsums.iter().all(|&q| q == 0));
        // base alone reconstructs the (constant) distance, within slack.
        let lb = qt.lower_bound(0);
        assert!(lb <= 5.0 && lb > 4.99);
    }
}
