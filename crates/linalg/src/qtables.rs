//! Quantized ADC scan: `u8` lookup tables, a blocked/transposed code
//! layout with 4-bit nibble packing, and in-register `pshufb`
//! accumulation kernels.
//!
//! The exact ADC loop pays one `u16` code load plus one random `f32`
//! table read per subspace per vector. Quick ADC and Quicker ADC (André
//! et al.) remove that bottleneck with 8-bit-quantized tables small
//! enough to live in SIMD registers, looked up 16–32 lanes at a time
//! with `pshufb` — and, for subspaces whose dictionaries have at most 16
//! rows, by packing two 4-bit codes into one byte so a single code load
//! feeds two table lookups. This module provides the pieces the query
//! engine composes:
//!
//! 1. [`PackedCodes`] — the codes of every ≤8-bit subspace, transposed
//!    into blocks of [`BLOCK`] vectors laid out row-major, where a *row*
//!    is either a **nibble pair** (two ≤16-row subspaces sharing one
//!    byte per vector) or a **single** byte-wide subspace. Built once at
//!    encode time; the row structure is a pure function of the table
//!    sizes (see [`PackedRow`]).
//! 2. [`QuantizedTables`] — a per-query `u8` quantization of the exact
//!    `f32` tables using a per-table minimum plus one shared step
//!    (`delta`), constructed so the de-quantized sum is a certified
//!    *lower bound* on the exact distance.
//! 3. [`accumulate_qsums`] — the scan kernel summing quantized entries
//!    for every vector, dispatching at runtime between a portable scalar
//!    loop and SSSE3/AVX2/AVX-512 `pshufb` kernels on x86_64 (NEON `tbl`
//!    on aarch64). [`accumulate_qsums_multi`] is the batched entry point
//!    that scans one code block for several queries at once, amortizing
//!    the code-byte memory traffic across a query tile.
//!
//! # The lower-bound contract
//!
//! For entry value `t` of packed table `s`, the stored byte is
//! `q = floor((t - min_s) / delta)` clamped to `0..=254` and then
//! *verified* in `f64` so `min_s + delta*q <= t` holds. Summing `q` over
//! packed subspaces and adding every table's minimum — including tables
//! too wide to pack — reconstructs `base + delta * qsum`, which cannot
//! exceed the exact distance in real arithmetic; a small multiplicative
//! slack ([`QuantizedTables::bound_scale`]) absorbs the `f32` rounding
//! of both the reconstruction and the exact path's own accumulation.
//! Subspaces wider than 8 bits therefore stay on the `f32` path without
//! breaking the bound: their minima are folded into `base`. The same
//! argument covers subspaces that are packable but *truncated* out of
//! the packing when a plan exceeds [`MAX_PACKED_SUBSPACES`].
//!
//! # Why `0..=254` and at most 257 subspaces
//!
//! The kernels accumulate into `u16` lanes. With entries capped at 254,
//! up to 257 packed subspaces sum to at most `254 * 257 = 65 278`, which
//! fits `u16::MAX`; [`PackedCodes::pack`] packs the first 257 packable
//! subspaces and degrades the excess to the unpacked `f32` path (their
//! minima still fold into `base`, so the bound stays certified), with
//! [`PackedCodes::truncated_packable`] reporting how many were dropped.

use crate::mmap::CodesStorage;
use crate::tables::TableArena;
use std::sync::OnceLock;

/// Number of vectors per packed block. One AVX2 register holds the codes
/// of a whole block; SSSE3/NEON process it as two 16-lane halves.
pub const BLOCK: usize = 32;

/// Largest number of ≤8-bit subspaces the `u16` accumulators can take
/// without overflow (entries are capped at 254; `254 * 257 <= u16::MAX`).
pub const MAX_PACKED_SUBSPACES: usize = 257;

/// Largest dictionary size whose codes fit a 4-bit nibble. Subspaces at
/// or below this bound are paired two-per-byte in the packed layout.
pub const NIBBLE_MAX_ROWS: usize = 16;

/// One byte row of the packed layout. The packing's rows are derived
/// purely from the plan's table sizes: nibble-eligible subspaces
/// (≤ [`NIBBLE_MAX_ROWS`] rows) pair up two-per-byte in ascending order,
/// an odd leftover nibble subspace and every wider (17..=256 row)
/// subspace occupy one byte each. Indices are positions into
/// [`PackedCodes::subspaces`] (packed order), not original plan indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackedRow {
    /// Two nibble subspaces share each byte: `lo`'s code in bits `0..4`,
    /// `hi`'s code in bits `4..8`. One 32-byte load serves 64 lookups.
    Pair { lo: usize, hi: usize },
    /// One subspace per byte (17..=256 dictionary rows, or the odd
    /// nibble subspace left without a partner).
    Single(usize),
}

/// The packing layout derived from a plan's table sizes: which subspaces
/// pack, their sizes, the byte-row structure, and how many packable
/// subspaces were truncated to keep the `u16` accumulators sound.
struct PackPlan {
    subspaces: Vec<usize>,
    sizes: Vec<usize>,
    rows: Vec<PackedRow>,
    truncated: usize,
}

/// Derives the packing layout from `table_sizes` alone — [`PackedCodes`]
/// serialization stores only the blocked bytes, so loaders must be able
/// to reconstruct the exact same selection and row structure.
fn pack_plan(table_sizes: &[usize]) -> PackPlan {
    let mut subspaces = Vec::new();
    let mut sizes = Vec::new();
    let mut truncated = 0usize;
    for (s, &sz) in table_sizes.iter().enumerate() {
        if (1..=256).contains(&sz) {
            if subspaces.len() < MAX_PACKED_SUBSPACES {
                subspaces.push(s);
                sizes.push(sz);
            } else {
                // Beyond the u16 accumulator budget: this subspace stays
                // on the exact f32 path (its minimum folds into `base`).
                truncated += 1;
            }
        }
    }
    let mp = subspaces.len();
    let nib: Vec<usize> = (0..mp).filter(|&j| sizes[j] <= NIBBLE_MAX_ROWS).collect();
    let mut rows: Vec<PackedRow> =
        nib.chunks_exact(2).map(|p| PackedRow::Pair { lo: p[0], hi: p[1] }).collect();
    let mut singles: Vec<usize> = (0..mp).filter(|&j| sizes[j] > NIBBLE_MAX_ROWS).collect();
    if nib.len() % 2 == 1 {
        singles.push(nib[nib.len() - 1]);
        singles.sort_unstable();
    }
    rows.extend(singles.into_iter().map(PackedRow::Single));
    PackPlan { subspaces, sizes, rows, truncated }
}

/// Codes of the ≤8-bit subspaces, transposed into a blocked layout:
/// block-major, then row-major (see [`PackedRow`]), then the [`BLOCK`]
/// lanes of the block. The byte for vector `i`, packed row `r` lives at
/// `data[((i / BLOCK) * num_rows + r) * BLOCK + (i % BLOCK)]`. The tail
/// block is zero-padded so kernels never branch on `n`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedCodes {
    data: CodesStorage,
    /// Original subspace indices of the packed subspaces, ascending.
    subspaces: Vec<usize>,
    /// Table size (codebook rows) per packed subspace.
    sizes: Vec<usize>,
    /// Byte-row structure (nibble pairs first, then singles).
    rows: Vec<PackedRow>,
    /// Packable subspaces dropped to respect [`MAX_PACKED_SUBSPACES`].
    truncated: usize,
    /// Total subspace count of the source plan (packed + unpacked).
    m_total: usize,
    n: usize,
    blocks: usize,
}

impl PackedCodes {
    /// Transposes `codes` (row-major `n × table_sizes.len()`) into the
    /// blocked layout, keeping only subspaces with `1..=256` codebook
    /// rows. A plan with more than [`MAX_PACKED_SUBSPACES`] packable
    /// subspaces packs the first 257 and leaves the rest on the exact
    /// path ([`PackedCodes::truncated_packable`] reports the count).
    /// Returns a packing with *no* subspaces — the caller's signal to
    /// stay on the exact `f32` path — when nothing is packable or when
    /// any code is out of range for its table (a wrong byte here would
    /// break the lower bound).
    pub fn pack(codes: &[u16], table_sizes: &[usize], n: usize) -> Self {
        let m = table_sizes.len();
        let fallback = |m_total: usize, n: usize| Self { m_total, n, ..Self::default() };
        if codes.len() != n * m {
            return fallback(m, n);
        }
        let plan = pack_plan(table_sizes);
        if plan.subspaces.is_empty() {
            return fallback(m, n);
        }
        for row in codes.chunks_exact(m) {
            for (j, &s) in plan.subspaces.iter().enumerate() {
                if usize::from(row[s]) >= plan.sizes[j] {
                    return fallback(m, n);
                }
            }
        }
        let nr = plan.rows.len();
        let blocks = n.div_ceil(BLOCK).max(1);
        let mut data = vec![0u8; blocks * nr * BLOCK];
        for (i, row) in codes.chunks_exact(m).enumerate() {
            let (b, lane) = (i / BLOCK, i % BLOCK);
            for (r, &pr) in plan.rows.iter().enumerate() {
                data[(b * nr + r) * BLOCK + lane] = encode_row_byte(pr, row, &plan.subspaces);
            }
        }
        Self {
            data: data.into(),
            subspaces: plan.subspaces,
            sizes: plan.sizes,
            rows: plan.rows,
            truncated: plan.truncated,
            m_total: m,
            n,
            blocks,
        }
    }

    /// Rebuilds a packing from serialized parts: the blocked bytes
    /// (owned or mapped) plus the plan that produced them. Recomputes
    /// the packable-subspace selection and row structure from
    /// `table_sizes` (a pure function of the plan) and validates the
    /// byte length; `None` on any mismatch. Bytes in the pre-nibble
    /// legacy layout (one byte per packed subspace) are converted to the
    /// paired layout, materializing an owned copy. Byte *content*
    /// (`data[..] < sizes[j]`) is not validated here — mapped loaders
    /// defer that to the lazy per-segment verification, owned loaders
    /// check it eagerly.
    pub fn from_parts(data: CodesStorage, table_sizes: &[usize], n: usize) -> Option<Self> {
        let m = table_sizes.len();
        let plan = pack_plan(table_sizes);
        if plan.subspaces.is_empty() {
            // The plan itself is unpackable: only the byte-free inactive
            // fallback (exactly what `pack` would produce) round-trips.
            return data.is_empty().then(|| Self::inactive(m, n));
        }
        if plan.truncated > 0 && data.is_empty() {
            // A legacy file whose plan exceeded the accumulator budget:
            // the old writer refused packing wholesale and stored no
            // bytes. Load it inactive; the engine stays on the exact
            // path exactly as it did when the file was written.
            return Some(Self::inactive(m, n));
        }
        let (mp, nr) = (plan.subspaces.len(), plan.rows.len());
        let blocks = n.div_ceil(BLOCK).max(1);
        let data = if data.len() == blocks * nr * BLOCK {
            data
        } else if nr != mp && data.len() == blocks * mp * BLOCK {
            // Legacy layout: one byte per packed subspace, no nibble
            // pairs. Re-pair into the current layout (owned copy).
            convert_legacy_layout(&data, &plan, blocks).into()
        } else {
            return None;
        };
        Some(Self {
            data,
            subspaces: plan.subspaces,
            sizes: plan.sizes,
            rows: plan.rows,
            truncated: plan.truncated,
            m_total: m,
            n,
            blocks,
        })
    }

    /// The inactive fallback packing: no packed subspaces, the engine
    /// stays on the exact `f32` path. Matches what [`PackedCodes::pack`]
    /// returns when it degrades.
    pub fn inactive(m_total: usize, n: usize) -> Self {
        Self { m_total, n, ..Self::default() }
    }

    /// Appends `n_new` freshly encoded rows without re-transposing the
    /// existing blocks: only the trailing partial [`BLOCK`] (whose lanes
    /// were zero padding) and the newly added blocks are written. The
    /// result is byte-identical to a full [`PackedCodes::pack`] over the
    /// concatenated codes — including the fallback semantics: an
    /// out-of-range new code, a row-length mismatch, or a `table_sizes`
    /// plan that differs from the one this packing was built with all
    /// degrade to the inactive fallback, exactly as the full repack
    /// would.
    pub fn append(&mut self, new_codes: &[u16], table_sizes: &[usize], n_new: usize) {
        let m = table_sizes.len();
        let n_total = self.n + n_new;
        // An inactive packing stays inactive under any suffix: the full
        // repack would see the same unpackable plan or the same bad
        // prefix row. Only the bookkeeping advances.
        if !self.is_active() {
            self.m_total = m;
            self.n = n_total;
            return;
        }
        let degrade = |this: &mut Self| {
            *this = Self { m_total: m, n: n_total, ..Self::default() };
        };
        if m != self.m_total || new_codes.len() != n_new * m {
            return degrade(self);
        }
        // The packable-subspace selection and row structure are a pure
        // function of the plan; a caller switching plans mid-stream gets
        // the fallback rather than a silently inconsistent transpose.
        let plan = pack_plan(table_sizes);
        if plan.subspaces != self.subspaces || plan.truncated != self.truncated {
            return degrade(self);
        }
        for row in new_codes.chunks_exact(m) {
            for (j, &s) in self.subspaces.iter().enumerate() {
                if usize::from(row[s]) >= self.sizes[j] {
                    return degrade(self);
                }
            }
        }
        let nr = self.rows.len();
        let blocks = n_total.div_ceil(BLOCK).max(1);
        // Earlier blocks never move in the block-major layout; growing
        // the buffer only zero-fills the new tail blocks. A mapped
        // packing materializes an owned copy first (copy-on-write).
        let data = self.data.to_mut();
        data.resize(blocks * nr * BLOCK, 0u8);
        for (i, row) in new_codes.chunks_exact(m).enumerate() {
            let g = self.n + i;
            let (b, lane) = (g / BLOCK, g % BLOCK);
            for (r, &pr) in self.rows.iter().enumerate() {
                data[(b * nr + r) * BLOCK + lane] = encode_row_byte(pr, row, &self.subspaces);
            }
        }
        self.n = n_total;
        self.blocks = blocks;
    }

    /// `true` when at least one subspace was packed and the quantized
    /// scan can run.
    pub fn is_active(&self) -> bool {
        !self.subspaces.is_empty()
    }

    /// Number of packed subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.subspaces.len()
    }

    /// Original subspace indices of the packed subspaces, ascending.
    pub fn subspaces(&self) -> &[usize] {
        &self.subspaces
    }

    /// Table sizes (codebook rows) per packed subspace.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Byte-row structure of each block: nibble pairs, then singles.
    pub fn packed_rows(&self) -> &[PackedRow] {
        &self.rows
    }

    /// Number of byte rows per block (`<= num_subspaces()`; smaller
    /// exactly when nibble pairs exist).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Packable subspaces that were *not* packed because the plan
    /// exceeded [`MAX_PACKED_SUBSPACES`]. They scan on the exact `f32`
    /// path; higher layers surface this as a degradation event.
    pub fn truncated_packable(&self) -> usize {
        self.truncated
    }

    /// Total subspace count of the source plan, packed or not.
    pub fn num_total_subspaces(&self) -> usize {
        self.m_total
    }

    /// Number of encoded vectors (excluding tail padding).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no vectors are encoded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of [`BLOCK`]-sized blocks, including the padded tail.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Capacity the accumulator buffer must have: `blocks() * BLOCK`.
    pub fn padded_len(&self) -> usize {
        self.blocks * BLOCK
    }

    /// Raw blocked bytes (see the struct docs for the layout).
    pub fn data(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// The storage behind the blocked bytes (owned vs mapped), for the
    /// persist layer and the VAQ113 audit.
    pub fn storage(&self) -> &CodesStorage {
        &self.data
    }
}

/// Encodes one byte of the packed layout from a plan-order code row.
/// Codes were validated `< sizes[j] <= 256` (and `<= 16` for nibble
/// subspaces), so the conversions cannot truncate.
#[inline]
fn encode_row_byte(row: PackedRow, codes: &[u16], subspaces: &[usize]) -> u8 {
    match row {
        PackedRow::Pair { lo, hi } => {
            let c0 = u8::try_from(codes[subspaces[lo]]).unwrap_or(u8::MAX) & 0x0f;
            let c1 = u8::try_from(codes[subspaces[hi]]).unwrap_or(u8::MAX) & 0x0f;
            c0 | (c1 << 4)
        }
        PackedRow::Single(j) => u8::try_from(codes[subspaces[j]]).unwrap_or(u8::MAX),
    }
}

/// Re-pairs legacy one-byte-per-subspace blocked bytes into the nibble
/// layout. Legacy nibble codes are `< 16` in well-formed files; the
/// masks below only alter bytes that were already corrupt (and which the
/// eager or lazy content verification rejects independently).
fn convert_legacy_layout(data: &CodesStorage, plan: &PackPlan, blocks: usize) -> Vec<u8> {
    let (mp, nr) = (plan.subspaces.len(), plan.rows.len());
    let old = data.as_slice();
    let mut out = vec![0u8; blocks * nr * BLOCK];
    for b in 0..blocks {
        for (r, &pr) in plan.rows.iter().enumerate() {
            let dst = &mut out[(b * nr + r) * BLOCK..][..BLOCK];
            match pr {
                PackedRow::Pair { lo, hi } => {
                    let src_lo = &old[(b * mp + lo) * BLOCK..][..BLOCK];
                    let src_hi = &old[(b * mp + hi) * BLOCK..][..BLOCK];
                    for (d, (&a, &c)) in dst.iter_mut().zip(src_lo.iter().zip(src_hi)) {
                        *d = (a & 0x0f) | ((c & 0x0f) << 4);
                    }
                }
                PackedRow::Single(j) => {
                    dst.copy_from_slice(&old[(b * mp + j) * BLOCK..][..BLOCK]);
                }
            }
        }
    }
    out
}

/// Per-query `u8` quantization of the exact `f32` lookup tables held by
/// a [`TableArena`], reusable across queries without reallocating.
///
/// Rows are padded with zeros to a multiple of 16 bytes so the SIMD
/// kernels can load whole chunks; pad bytes are never selected because
/// every code is `< sizes[j]`.
#[derive(Clone, Debug, Default)]
pub struct QuantizedTables {
    entries: Vec<u8>,
    /// `num_subspaces + 1` row boundaries into `entries`.
    offsets: Vec<usize>,
    /// Scratch: per-packed-table minima.
    mins: Vec<f32>,
    delta: f32,
    base: f32,
    bound_scale: f32,
}

impl QuantizedTables {
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantizes the arena's tables against `packed`'s subspace
    /// selection. The arena must hold one table per subspace of the plan
    /// that produced `packed` (checked in debug builds).
    pub fn quantize(&mut self, arena: &TableArena, packed: &PackedCodes) {
        debug_assert_eq!(arena.num_tables(), packed.num_total_subspaces());
        let mp = packed.num_subspaces();

        // One pass over every table: `base` folds in all minima (packed
        // or not) so the reconstruction bounds the full-m distance, while
        // the shared step spans only the packed tables' widest range.
        self.mins.clear();
        let mut base = 0.0f32;
        let mut max_range = 0.0f32;
        let mut next = 0usize;
        for (s, t) in arena.tables().enumerate() {
            let (mut mn, mut mx) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in t {
                mn = mn.min(v);
                mx = mx.max(v);
            }
            if mn.is_finite() {
                base += mn;
            }
            if next < mp && packed.subspaces()[next] == s {
                self.mins.push(if mn.is_finite() { mn } else { 0.0 });
                if (mx - mn).is_finite() {
                    max_range = max_range.max(mx - mn);
                }
                next += 1;
            }
        }
        let delta = if max_range > 0.0 { max_range / 254.0 } else { 0.0 };

        self.entries.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for (j, &s) in packed.subspaces().iter().enumerate() {
            let t = arena.table(s);
            let mn = self.mins[j];
            for &v in t {
                self.entries.push(quantize_entry(v, mn, delta));
            }
            // Zero-pad the row to whole 16-byte chunks for the kernels.
            let padded = self.offsets[j] + t.len().max(1).div_ceil(16) * 16;
            self.entries.resize(padded, 0);
            self.offsets.push(self.entries.len());
        }

        self.delta = delta;
        self.base = base;
        // Slack absorbing `f32` rounding on both sides of the pruning
        // comparison: the (m+2)-term reconstruction here and the exact
        // path's own m-term accumulation. 8(m+4) ulps is far beyond
        // either error's worst case.
        self.bound_scale = 1.0 - 8.0 * (arena.num_tables() + 4) as f32 * f32::EPSILON;
    }

    /// Number of quantized rows (packed subspaces).
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Quantized row `j`, zero-padded to a multiple of 16 bytes.
    pub fn row(&self, j: usize) -> &[u8] {
        &self.entries[self.offsets[j]..self.offsets[j + 1]]
    }

    /// The shared quantization step. `0` means every packed table was
    /// constant and all stored bytes are zero.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Sum of every table's minimum entry (packed and unpacked).
    pub fn base(&self) -> f32 {
        self.base
    }

    /// Multiplicative slack applied to positive bounds; see `quantize`.
    pub fn bound_scale(&self) -> f32 {
        self.bound_scale
    }

    /// Certified lower bound on the exact full-m ADC distance of a
    /// vector whose packed entries sum to `qsum`. Safe to prune with:
    /// `lower_bound(qsum) >= threshold` implies the exact `f32` distance
    /// is `>= threshold` too.
    #[inline]
    pub fn lower_bound(&self, qsum: u16) -> f32 {
        let lb = self.base + self.delta * f32::from(qsum);
        if lb > 0.0 {
            lb * self.bound_scale
        } else {
            lb
        }
    }

    /// Worst-case gap between the bound and the exact distance coming
    /// from quantization alone (one sub-`delta` truncation per packed
    /// row). Reported by the bench for context.
    pub fn max_underestimate(&self) -> f32 {
        self.delta * self.num_rows() as f32
    }

    /// Smallest quantized sum whose [`Self::lower_bound`] reaches
    /// `threshold`, or `u32::MAX` when no representable sum does. Testing
    /// `u32::from(qsum) >= prune_cutoff(t)` is *exactly* equivalent to
    /// testing `lower_bound(qsum) >= t` — `lower_bound` is monotone
    /// nondecreasing in the sum (`delta >= 0`, and the positive branch's
    /// `* bound_scale` preserves order across the sign boundary) — but
    /// moves all float work out of the per-vector scan loop.
    pub fn prune_cutoff(&self, threshold: f32) -> u32 {
        let reachable = self.lower_bound(u16::MAX) >= threshold;
        if !reachable {
            return u32::MAX; // also catches threshold = INFINITY / NaN
        }
        // Binary search the boundary; invariant: lower_bound(hi) >= threshold.
        let (mut lo, mut hi) = (0u32, u32::from(u16::MAX));
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Cannot fail: lo <= mid <= hi <= u16::MAX by the invariant.
            if self.lower_bound(u16::try_from(mid).unwrap_or(u16::MAX)) >= threshold {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        hi
    }
}

/// Floor-quantizes one table entry, then walks the byte down until
/// `min + delta*q <= t` certifies in `f64` (the `f32` division and floor
/// can land one step high near representability boundaries).
fn quantize_entry(t: f32, min: f32, delta: f32) -> u8 {
    if delta <= 0.0 || !t.is_finite() {
        return 0;
    }
    // The only `as` cast in this file (allowlisted under VAQ010): Rust
    // float->int `as` saturates, and the clamp bounds q to [0, 254].
    let mut q = (((t - min) / delta).floor() as i64).clamp(0, 254);
    let (tf, mf, df) = (f64::from(t), f64::from(min), f64::from(delta));
    while q > 0 && mf + df * q as f64 > tf {
        q -= 1;
    }
    // Cannot fail: q stays within [0, 254].
    u8::try_from(q).unwrap_or(0)
}

/// Which accumulation kernel a scan uses. All variants exist on every
/// architecture; dispatch verifies CPU support (cached, see
/// [`kernel_supported`]) before any `unsafe` call and silently degrades
/// to `Scalar` when the feature is missing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanKernel {
    /// Portable loop; auto-vectorizes reasonably on most targets.
    Scalar,
    /// `pshufb` over two 16-lane halves per block (x86_64).
    Ssse3,
    /// `vpshufb` over the whole 32-lane block (x86_64).
    Avx2,
    /// AVX2-style lookups feeding one 32×`u16` `zmm` accumulator
    /// (x86_64 with AVX-512F+BW; halves the accumulate/store traffic).
    Avx512,
    /// `tbl`-based lookups over two 16-lane halves (aarch64).
    Neon,
}

impl ScanKernel {
    /// Human-readable name for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Scalar => "scalar",
            ScanKernel::Ssse3 => "ssse3",
            ScanKernel::Avx2 => "avx2",
            ScanKernel::Avx512 => "avx512",
            ScanKernel::Neon => "neon",
        }
    }

    /// All kernel tiers, narrowest first — the bench and the parity
    /// tests iterate this instead of hand-listing variants.
    pub const ALL: [ScanKernel; 5] = [
        ScanKernel::Scalar,
        ScanKernel::Ssse3,
        ScanKernel::Avx2,
        ScanKernel::Avx512,
        ScanKernel::Neon,
    ];
}

/// CPU feature support, probed once per process. The dispatch match
/// guards read this instead of re-running `is_x86_feature_detected!`
/// (which walks CPUID caches) on every kernel call.
#[derive(Clone, Copy, Debug, Default)]
struct KernelSupport {
    ssse3: bool,
    avx2: bool,
    avx512: bool,
    neon: bool,
}

fn support() -> KernelSupport {
    static SUPPORT: OnceLock<KernelSupport> = OnceLock::new();
    *SUPPORT.get_or_init(probe_support)
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
fn probe_support() -> KernelSupport {
    KernelSupport {
        ssse3: std::arch::is_x86_feature_detected!("ssse3"),
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        // The AVX-512 tier needs F (zmm registers) and BW (byte/word
        // ops: vpshufb-512 semantics and `_mm512_add_epi16`).
        avx512: std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw"),
        neon: false,
    }
}

#[cfg(all(target_arch = "aarch64", not(miri)))]
fn probe_support() -> KernelSupport {
    // NEON is baseline on aarch64.
    KernelSupport { ssse3: false, avx2: false, avx512: false, neon: true }
}

#[cfg(any(miri, not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn probe_support() -> KernelSupport {
    // Miri interprets no SIMD shuffle intrinsics; other targets have no
    // kernels. Everything degrades to the scalar loop.
    KernelSupport::default()
}

/// Whether `kernel` can run on this machine (cached probe). `Scalar` is
/// always supported; unsupported requests degrade to it at dispatch.
pub fn kernel_supported(kernel: ScanKernel) -> bool {
    match kernel {
        ScanKernel::Scalar => true,
        ScanKernel::Ssse3 => support().ssse3,
        ScanKernel::Avx2 => support().avx2,
        ScanKernel::Avx512 => support().avx512,
        ScanKernel::Neon => support().neon,
    }
}

/// The kernel the current process uses, picked once: the widest
/// supported tier, unless overridden. `VAQ_FORCE_KERNEL` pins a specific
/// tier (`scalar`/`ssse3`/`avx2`/`avx512`/`neon`; anything unsupported
/// or unrecognized falls back to `scalar` so CI matrices fail loudly via
/// the bench's `active_kernel` report rather than crashing), and the
/// older `VAQ_FORCE_SCALAR` knob still forces the portable loop.
pub fn active_kernel() -> ScanKernel {
    static KERNEL: OnceLock<ScanKernel> = OnceLock::new();
    *KERNEL.get_or_init(detect_kernel)
}

fn detect_kernel() -> ScanKernel {
    // Miri interprets no SIMD shuffle intrinsics; the scalar kernel
    // visits lanes in the same order, so interpreted runs lose no
    // coverage.
    if cfg!(miri) {
        return ScanKernel::Scalar;
    }
    if let Some(forced) = std::env::var_os("VAQ_FORCE_KERNEL") {
        let forced = forced.to_string_lossy().to_ascii_lowercase();
        let kernel = match forced.trim() {
            "ssse3" => ScanKernel::Ssse3,
            "avx2" => ScanKernel::Avx2,
            "avx512" => ScanKernel::Avx512,
            "neon" => ScanKernel::Neon,
            _ => ScanKernel::Scalar,
        };
        return if kernel_supported(kernel) { kernel } else { ScanKernel::Scalar };
    }
    let scalar = std::env::var_os("VAQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    if scalar {
        return ScanKernel::Scalar;
    }
    let s = support();
    if s.avx512 {
        ScanKernel::Avx512
    } else if s.avx2 {
        ScanKernel::Avx2
    } else if s.ssse3 {
        ScanKernel::Ssse3
    } else if s.neon {
        ScanKernel::Neon
    } else {
        ScanKernel::Scalar
    }
}

/// Signature of a kernel timing observer: `(kernel name, elapsed ns)`
/// per [`accumulate_qsums`] call.
pub type KernelTimingHook = fn(&'static str, u64);

static TIMING_HOOK: OnceLock<KernelTimingHook> = OnceLock::new();

/// Installs a process-wide observer that is called with the kernel name
/// and elapsed nanoseconds after every [`accumulate_qsums`] dispatch.
/// First installation wins; later calls are ignored. The crate stays
/// dependency-free — higher layers (the obs subsystem) plug in here, and
/// no clock is read until a hook is installed.
pub fn install_kernel_timing_hook(hook: KernelTimingHook) {
    let _ = TIMING_HOOK.set(hook);
}

/// Sums the quantized table entry of every packed subspace for every
/// vector, writing one `u16` per lane into `out` (resized to
/// [`PackedCodes::padded_len`]; tail lanes hold the code-0 sum and must
/// be ignored). Uses [`active_kernel`].
pub fn accumulate_qsums(packed: &PackedCodes, qt: &QuantizedTables, out: &mut Vec<u16>) {
    accumulate_qsums_with(active_kernel(), packed, qt, out);
}

/// Same as [`accumulate_qsums`] with an explicit kernel — the hook the
/// parity tests use to compare SIMD against scalar on identical inputs.
/// SIMD requests re-verify CPU support (cached) and fall back to scalar
/// if the feature is unavailable.
pub fn accumulate_qsums_with(
    kernel: ScanKernel,
    packed: &PackedCodes,
    qt: &QuantizedTables,
    out: &mut Vec<u16>,
) {
    match TIMING_HOOK.get() {
        Some(hook) => {
            let t0 = std::time::Instant::now();
            accumulate_dispatch(kernel, packed, qt, out);
            hook(kernel.name(), u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        None => accumulate_dispatch(kernel, packed, qt, out),
    }
}

/// How many queries the batched kernels fold into one pass over the
/// packed bytes. Sized so a tile's accumulators (2 `ymm`/`zmm` each)
/// plus the code vector stay comfortably within 16 registers.
pub const QUERY_TILE: usize = 4;

/// Batched variant of [`accumulate_qsums_with`]: scans the packed codes
/// once per [`QUERY_TILE`] queries instead of once per query, amortizing
/// the code-byte memory traffic across the tile. Each query's output is
/// bit-identical to its own [`accumulate_qsums_with`] call with the same
/// kernel (`u16` adds commute exactly, and every query keeps its own
/// accumulators), so batched and sequential scans stay byte-identical.
/// Tiers without a fused implementation run the single-query kernel per
/// query — same contract, no amortization.
pub fn accumulate_qsums_multi(
    kernel: ScanKernel,
    packed: &PackedCodes,
    queries: &mut [(&QuantizedTables, &mut Vec<u16>)],
) {
    let t0 = TIMING_HOOK.get().map(|h| (h, std::time::Instant::now()));
    for tile in queries.chunks_mut(QUERY_TILE) {
        match kernel {
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            ScanKernel::Avx2 if support().avx2 => {
                for (qt, out) in tile.iter_mut() {
                    debug_assert_eq!(qt.num_rows(), packed.num_subspaces());
                    out.clear();
                    out.resize(packed.padded_len(), 0);
                }
                // SAFETY: AVX2 support verified by the (cached) match guard.
                unsafe { x86::accumulate_avx2_multi(packed, tile) }
            }
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            ScanKernel::Avx512 if support().avx512 => {
                for (qt, out) in tile.iter_mut() {
                    debug_assert_eq!(qt.num_rows(), packed.num_subspaces());
                    out.clear();
                    out.resize(packed.padded_len(), 0);
                }
                // SAFETY: AVX-512 F+BW support verified by the (cached)
                // avx512 match guard.
                unsafe { x86::accumulate_avx512_multi(packed, tile) }
            }
            _ => {
                for (qt, out) in tile.iter_mut() {
                    accumulate_dispatch(kernel, packed, qt, out);
                }
            }
        }
    }
    if let Some((hook, t0)) = t0 {
        hook(kernel.name(), u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Issues a best-effort read prefetch for `data[index]` (no-op when the
/// index is out of bounds or the target has no prefetch hint). Scan
/// loops call this a few blocks ahead of the bytes they are about to
/// touch — a pure latency hint with no architectural effect.
#[inline]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if index < data.len() {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // SAFETY: `index` is bounds-checked above, so the address lies
        // inside the slice; prefetch is a hint with no memory effects
        // and is available on every x86_64 (sse2 baseline).
        unsafe { _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(index).cast()) };
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        let _ = (data, index);
    }
}

fn accumulate_dispatch(
    kernel: ScanKernel,
    packed: &PackedCodes,
    qt: &QuantizedTables,
    out: &mut Vec<u16>,
) {
    debug_assert_eq!(qt.num_rows(), packed.num_subspaces());
    out.clear();
    out.resize(packed.padded_len(), 0);
    match kernel {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        ScanKernel::Ssse3 if support().ssse3 => {
            // SAFETY: SSSE3 support verified by the (cached) match guard.
            unsafe { x86::accumulate_ssse3(packed, qt, out) }
        }
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        ScanKernel::Avx2 if support().avx2 => {
            // SAFETY: AVX2 support verified by the (cached) match guard.
            unsafe { x86::accumulate_avx2(packed, qt, out) }
        }
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        ScanKernel::Avx512 if support().avx512 => {
            // SAFETY: AVX-512 F+BW support verified by the (cached)
            // avx512 match guard.
            unsafe { x86::accumulate_avx512(packed, qt, out) }
        }
        #[cfg(all(target_arch = "aarch64", not(miri)))]
        ScanKernel::Neon if support().neon => {
            // SAFETY: NEON support verified by the (cached) match guard.
            unsafe { neon::accumulate_neon(packed, qt, out) }
        }
        _ => accumulate_scalar(packed, qt, out),
    }
}

/// Portable accumulation: same visitation order as the SIMD kernels, so
/// the `u16` results are bit-identical (integer adds commute exactly).
fn accumulate_scalar(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
    let nr = packed.num_rows();
    let data = packed.data();
    for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
        prefetch_read(data, (b + 1) * nr * BLOCK);
        for (r, &pr) in packed.packed_rows().iter().enumerate() {
            let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
            match pr {
                PackedRow::Pair { lo, hi } => {
                    let (tlo, thi) = (qt.row(lo), qt.row(hi));
                    for (acc, &c) in out_b.iter_mut().zip(bytes) {
                        *acc += u16::from(tlo[usize::from(c & 0x0f)])
                            + u16::from(thi[usize::from(c >> 4)]);
                    }
                }
                PackedRow::Single(j) => {
                    let row = qt.row(j);
                    for (acc, &c) in out_b.iter_mut().zip(bytes) {
                        *acc += u16::from(row[usize::from(c)]);
                    }
                }
            }
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[deny(unsafe_op_in_unsafe_fn)]
mod x86 {
    //! `pshufb`-based kernels. Nibble-pair rows resolve two subspaces
    //! per code byte (one shuffle each on the masked low/high nibbles);
    //! single rows with ≤16 entries resolve in one shuffle; wider tables
    //! (up to 256 entries) split the code into nibbles and select the
    //! right 16-entry chunk with a `cmpeq` mask — the Quicker-ADC
    //! chunked lookup. `u8` results widen to the `u16` accumulators in
    //! linear lane order.

    use super::{PackedCodes, PackedRow, QuantizedTables, BLOCK, QUERY_TILE};
    use std::arch::x86_64::*;

    /// SSSE3 kernel: each block is two 16-lane halves, four 8×`u16`
    /// accumulators.
    ///
    /// SAFETY: the caller must verify SSSE3 support at runtime before
    /// calling (`is_x86_feature_detected!("ssse3")`).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn accumulate_ssse3(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
        let nr = packed.num_rows();
        let data = packed.data();
        let low_mask = _mm_set1_epi8(0x0f);
        let zero = _mm_setzero_si128();
        for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
            super::prefetch_read(data, (b + 1) * nr * BLOCK);
            let mut acc = [zero; 4];
            for (r, &pr) in packed.packed_rows().iter().enumerate() {
                let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
                for half in 0..2 {
                    // SAFETY: `bytes` has BLOCK = 32 bytes, so this ssse3
                    // 16-byte load at `half * 16 + 16 <= 32` is in bounds.
                    let cv = unsafe { _mm_loadu_si128(bytes.as_ptr().add(half * 16).cast()) };
                    match pr {
                        PackedRow::Pair { lo, hi } => {
                            let lo_idx = _mm_and_si128(cv, low_mask);
                            let hi_idx = _mm_and_si128(_mm_srli_epi16::<4>(cv), low_mask);
                            let vlo = table_lookup_sse(lo_idx, qt.row(lo), low_mask, zero);
                            let vhi = table_lookup_sse(hi_idx, qt.row(hi), low_mask, zero);
                            // Two separate u8→u16 widenings: the u8 sum
                            // of two 254-max entries would overflow.
                            let q = half * 2;
                            acc[q] = _mm_add_epi16(acc[q], _mm_unpacklo_epi8(vlo, zero));
                            acc[q] = _mm_add_epi16(acc[q], _mm_unpacklo_epi8(vhi, zero));
                            acc[q + 1] = _mm_add_epi16(acc[q + 1], _mm_unpackhi_epi8(vlo, zero));
                            acc[q + 1] = _mm_add_epi16(acc[q + 1], _mm_unpackhi_epi8(vhi, zero));
                        }
                        PackedRow::Single(j) => {
                            let vals = table_lookup_sse(cv, qt.row(j), low_mask, zero);
                            // Interleaving with zero widens u8→u16 in lane order.
                            let q = half * 2;
                            acc[q] = _mm_add_epi16(acc[q], _mm_unpacklo_epi8(vals, zero));
                            acc[q + 1] = _mm_add_epi16(acc[q + 1], _mm_unpackhi_epi8(vals, zero));
                        }
                    }
                }
            }
            for (q, a) in acc.iter().enumerate() {
                // SAFETY: `out_b` has BLOCK = 32 u16 lanes; this ssse3
                // 8-lane store at `q * 8 + 8 <= 32` is in bounds.
                unsafe { _mm_storeu_si128(out_b.as_mut_ptr().add(q * 8).cast(), *a) };
            }
        }
    }

    /// One 16-lane table lookup (SSSE3 tier). `row` must be padded to
    /// whole 16-byte chunks. Single-chunk rows assume `cv` lanes are
    /// already valid indices (< 16); multi-chunk rows split each code
    /// byte into nibbles and chunk-select with `cmpeq`.
    #[target_feature(enable = "ssse3")]
    fn table_lookup_sse(cv: __m128i, row: &[u8], low_mask: __m128i, zero: __m128i) -> __m128i {
        let chunks = row.len() / 16;
        if chunks == 1 {
            // SAFETY: `row` is padded to at least 16 bytes, covering
            // this ssse3 table load.
            let tbl = unsafe { _mm_loadu_si128(row.as_ptr().cast()) };
            return _mm_shuffle_epi8(tbl, cv);
        }
        let lo = _mm_and_si128(cv, low_mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(cv), low_mask);
        let mut v = zero;
        for (k, kb) in (0..chunks).zip(0i8..) {
            // SAFETY: `row` is padded to `chunks * 16` bytes, covering
            // this ssse3 table-chunk load at offset `k * 16`.
            let tbl = unsafe { _mm_loadu_si128(row.as_ptr().add(k * 16).cast()) };
            let sel = _mm_cmpeq_epi8(hi, _mm_set1_epi8(kb));
            v = _mm_or_si128(v, _mm_and_si128(sel, _mm_shuffle_epi8(tbl, lo)));
        }
        v
    }

    /// One 32-lane table lookup (AVX2 tier). The 16-byte table chunk is
    /// broadcast to both 128-bit lanes because `vpshufb` shuffles within
    /// each lane independently. Same index contract as
    /// [`table_lookup_sse`].
    #[target_feature(enable = "avx2")]
    fn table_lookup_avx2(cv: __m256i, row: &[u8], low_mask: __m256i, zero: __m256i) -> __m256i {
        let chunks = row.len() / 16;
        if chunks == 1 {
            // SAFETY: `row` is padded to at least 16 bytes, covering
            // this avx2 table load.
            let tbl = unsafe { _mm_loadu_si128(row.as_ptr().cast()) };
            return _mm256_shuffle_epi8(_mm256_broadcastsi128_si256(tbl), cv);
        }
        let lo = _mm256_and_si256(cv, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(cv), low_mask);
        let mut v = zero;
        for (k, kb) in (0..chunks).zip(0i8..) {
            // SAFETY: `row` is padded to `chunks * 16` bytes, covering
            // this avx2 table-chunk load at offset `k * 16`.
            let tbl = unsafe { _mm_loadu_si128(row.as_ptr().add(k * 16).cast()) };
            let t2 = _mm256_broadcastsi128_si256(tbl);
            let sel = _mm256_cmpeq_epi8(hi, _mm256_set1_epi8(kb));
            v = _mm256_or_si256(v, _mm256_and_si256(sel, _mm256_shuffle_epi8(t2, lo)));
        }
        v
    }

    /// AVX2 kernel: a whole 32-lane block per iteration, two 16×`u16`
    /// `ymm` accumulators.
    ///
    /// SAFETY: the caller must verify AVX2 support at runtime before
    /// calling (`is_x86_feature_detected!("avx2")`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_avx2(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
        let nr = packed.num_rows();
        let data = packed.data();
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
            super::prefetch_read(data, (b + 1) * nr * BLOCK);
            let mut acc_lo = zero;
            let mut acc_hi = zero;
            for (r, &pr) in packed.packed_rows().iter().enumerate() {
                let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
                // SAFETY: `bytes` has exactly BLOCK = 32 bytes for this
                // avx2 full-block load.
                let cv = unsafe { _mm256_loadu_si256(bytes.as_ptr().cast()) };
                match pr {
                    PackedRow::Pair { lo, hi } => {
                        let lo_idx = _mm256_and_si256(cv, low_mask);
                        let hi_idx = _mm256_and_si256(_mm256_srli_epi16::<4>(cv), low_mask);
                        let vlo = table_lookup_avx2(lo_idx, qt.row(lo), low_mask, zero);
                        let vhi = table_lookup_avx2(hi_idx, qt.row(hi), low_mask, zero);
                        // Widen with cvtepu8 to keep u16 lane order linear
                        // (unpack would interleave across 128-bit lanes);
                        // the two nibble results widen separately because
                        // their u8 sum can overflow.
                        acc_lo = _mm256_add_epi16(
                            acc_lo,
                            _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vlo)),
                        );
                        acc_lo = _mm256_add_epi16(
                            acc_lo,
                            _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vhi)),
                        );
                        acc_hi = _mm256_add_epi16(
                            acc_hi,
                            _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vlo)),
                        );
                        acc_hi = _mm256_add_epi16(
                            acc_hi,
                            _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vhi)),
                        );
                    }
                    PackedRow::Single(j) => {
                        let vals = table_lookup_avx2(cv, qt.row(j), low_mask, zero);
                        acc_lo = _mm256_add_epi16(
                            acc_lo,
                            _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vals)),
                        );
                        acc_hi = _mm256_add_epi16(
                            acc_hi,
                            _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vals)),
                        );
                    }
                }
            }
            // SAFETY: `out_b` has BLOCK = 32 u16 lanes = two avx2 stores.
            unsafe { _mm256_storeu_si256(out_b.as_mut_ptr().cast(), acc_lo) };
            // SAFETY: offset 16 leaves exactly 16 u16 lanes for this
            // avx2 store.
            unsafe { _mm256_storeu_si256(out_b.as_mut_ptr().add(16).cast(), acc_hi) };
        }
    }

    /// AVX-512 kernel: AVX2-style 32-lane lookups feeding one 32×`u16`
    /// `zmm` accumulator — half the accumulate/store instructions of the
    /// AVX2 tier. Uses only F+BW intrinsics (`vpmovzxbw` / `vpaddw` /
    /// full-width store), so it runs on every AVX-512 server part
    /// without requiring VBMI.
    ///
    /// SAFETY: the caller must verify AVX-512 F and BW support at
    /// runtime before calling (`is_x86_feature_detected!("avx512bw")`).
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn accumulate_avx512(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
        let nr = packed.num_rows();
        let data = packed.data();
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
            super::prefetch_read(data, (b + 1) * nr * BLOCK);
            let mut acc = _mm512_setzero_si512();
            for (r, &pr) in packed.packed_rows().iter().enumerate() {
                let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
                // SAFETY: `bytes` has exactly BLOCK = 32 bytes for this
                // avx512 kernel's ymm-width code load.
                let cv = unsafe { _mm256_loadu_si256(bytes.as_ptr().cast()) };
                match pr {
                    PackedRow::Pair { lo, hi } => {
                        let lo_idx = _mm256_and_si256(cv, low_mask);
                        let hi_idx = _mm256_and_si256(_mm256_srli_epi16::<4>(cv), low_mask);
                        let vlo = table_lookup_avx2(lo_idx, qt.row(lo), low_mask, zero);
                        let vhi = table_lookup_avx2(hi_idx, qt.row(hi), low_mask, zero);
                        acc = _mm512_add_epi16(acc, _mm512_cvtepu8_epi16(vlo));
                        acc = _mm512_add_epi16(acc, _mm512_cvtepu8_epi16(vhi));
                    }
                    PackedRow::Single(j) => {
                        let vals = table_lookup_avx2(cv, qt.row(j), low_mask, zero);
                        acc = _mm512_add_epi16(acc, _mm512_cvtepu8_epi16(vals));
                    }
                }
            }
            // SAFETY: `out_b` has BLOCK = 32 u16 lanes = one avx512
            // full-width store.
            unsafe { _mm512_storeu_si512(out_b.as_mut_ptr().cast(), acc) };
        }
    }

    /// Fused multi-query AVX2 kernel: one pass over the packed bytes per
    /// [`QUERY_TILE`] queries. Each code vector is loaded once per row
    /// and looked up against every query's tables; per-query
    /// accumulators keep results bit-identical to sequential scans.
    ///
    /// SAFETY: the caller must verify AVX2 support at runtime before
    /// calling (`is_x86_feature_detected!("avx2")`), resize every output
    /// to `packed.padded_len()`, and pass at most [`QUERY_TILE`] queries.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_avx2_multi(
        packed: &PackedCodes,
        queries: &mut [(&QuantizedTables, &mut Vec<u16>)],
    ) {
        debug_assert!(queries.len() <= QUERY_TILE);
        debug_assert!(queries.iter().all(|(_, o)| o.len() == packed.padded_len()));
        let nr = packed.num_rows();
        let data = packed.data();
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        for b in 0..packed.blocks() {
            super::prefetch_read(data, (b + 1) * nr * BLOCK);
            let mut acc = [[zero; 2]; QUERY_TILE];
            for (r, &pr) in packed.packed_rows().iter().enumerate() {
                let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
                // SAFETY: `bytes` has exactly BLOCK = 32 bytes for this
                // avx2 full-block load (shared by the whole query tile).
                let cv = unsafe { _mm256_loadu_si256(bytes.as_ptr().cast()) };
                match pr {
                    PackedRow::Pair { lo, hi } => {
                        let lo_idx = _mm256_and_si256(cv, low_mask);
                        let hi_idx = _mm256_and_si256(_mm256_srli_epi16::<4>(cv), low_mask);
                        for (t, (qt, _)) in queries.iter().enumerate() {
                            let vlo = table_lookup_avx2(lo_idx, qt.row(lo), low_mask, zero);
                            let vhi = table_lookup_avx2(hi_idx, qt.row(hi), low_mask, zero);
                            acc[t][0] = _mm256_add_epi16(
                                acc[t][0],
                                _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vlo)),
                            );
                            acc[t][0] = _mm256_add_epi16(
                                acc[t][0],
                                _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vhi)),
                            );
                            acc[t][1] = _mm256_add_epi16(
                                acc[t][1],
                                _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vlo)),
                            );
                            acc[t][1] = _mm256_add_epi16(
                                acc[t][1],
                                _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vhi)),
                            );
                        }
                    }
                    PackedRow::Single(j) => {
                        for (t, (qt, _)) in queries.iter().enumerate() {
                            let vals = table_lookup_avx2(cv, qt.row(j), low_mask, zero);
                            acc[t][0] = _mm256_add_epi16(
                                acc[t][0],
                                _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vals)),
                            );
                            acc[t][1] = _mm256_add_epi16(
                                acc[t][1],
                                _mm256_cvtepu8_epi16(_mm256_extracti128_si256::<1>(vals)),
                            );
                        }
                    }
                }
            }
            for (t, (_, out)) in queries.iter_mut().enumerate() {
                let dst = &mut out[b * BLOCK..][..BLOCK];
                // SAFETY: `dst` has BLOCK = 32 u16 lanes = two avx2 stores.
                unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), acc[t][0]) };
                // SAFETY: offset 16 leaves exactly 16 u16 lanes for this
                // avx2 store.
                unsafe { _mm256_storeu_si256(dst.as_mut_ptr().add(16).cast(), acc[t][1]) };
            }
        }
    }

    /// Fused multi-query AVX-512 kernel: the multi-query tiling of
    /// [`accumulate_avx2_multi`] with the single `zmm` accumulator per
    /// query of [`accumulate_avx512`].
    ///
    /// SAFETY: the caller must verify AVX-512 F and BW support at
    /// runtime before calling (`is_x86_feature_detected!("avx512bw")`),
    /// resize every output to `packed.padded_len()`, and pass at most
    /// [`QUERY_TILE`] queries.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn accumulate_avx512_multi(
        packed: &PackedCodes,
        queries: &mut [(&QuantizedTables, &mut Vec<u16>)],
    ) {
        debug_assert!(queries.len() <= QUERY_TILE);
        debug_assert!(queries.iter().all(|(_, o)| o.len() == packed.padded_len()));
        let nr = packed.num_rows();
        let data = packed.data();
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        for b in 0..packed.blocks() {
            super::prefetch_read(data, (b + 1) * nr * BLOCK);
            let mut acc = [_mm512_setzero_si512(); QUERY_TILE];
            for (r, &pr) in packed.packed_rows().iter().enumerate() {
                let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
                // SAFETY: `bytes` has exactly BLOCK = 32 bytes for this
                // avx512 kernel's ymm-width code load (shared by the tile).
                let cv = unsafe { _mm256_loadu_si256(bytes.as_ptr().cast()) };
                match pr {
                    PackedRow::Pair { lo, hi } => {
                        let lo_idx = _mm256_and_si256(cv, low_mask);
                        let hi_idx = _mm256_and_si256(_mm256_srli_epi16::<4>(cv), low_mask);
                        for (t, (qt, _)) in queries.iter().enumerate() {
                            let vlo = table_lookup_avx2(lo_idx, qt.row(lo), low_mask, zero);
                            let vhi = table_lookup_avx2(hi_idx, qt.row(hi), low_mask, zero);
                            acc[t] = _mm512_add_epi16(acc[t], _mm512_cvtepu8_epi16(vlo));
                            acc[t] = _mm512_add_epi16(acc[t], _mm512_cvtepu8_epi16(vhi));
                        }
                    }
                    PackedRow::Single(j) => {
                        for (t, (qt, _)) in queries.iter().enumerate() {
                            let vals = table_lookup_avx2(cv, qt.row(j), low_mask, zero);
                            acc[t] = _mm512_add_epi16(acc[t], _mm512_cvtepu8_epi16(vals));
                        }
                    }
                }
            }
            for (t, (_, out)) in queries.iter_mut().enumerate() {
                let dst = &mut out[b * BLOCK..][..BLOCK];
                // SAFETY: `dst` has BLOCK = 32 u16 lanes = one avx512
                // full-width store.
                unsafe { _mm512_storeu_si512(dst.as_mut_ptr().cast(), acc[t]) };
            }
        }
    }
}

#[cfg(all(target_arch = "aarch64", not(miri)))]
#[deny(unsafe_op_in_unsafe_fn)]
mod neon {
    //! `tbl`-based kernels for aarch64. `vqtbl1q_u8` is the 16-lane
    //! table lookup analogous to `pshufb` (out-of-range indices return
    //! zero, so no pre-masking is needed for valid codes); the chunked
    //! path for 17..=256-entry tables mirrors the x86 `cmpeq` selection.

    use super::{PackedCodes, PackedRow, QuantizedTables, BLOCK};
    use std::arch::aarch64::*;

    /// NEON kernel: each block is two 16-lane halves, four 8×`u16`
    /// accumulators, widened with `vaddw`.
    ///
    /// SAFETY: the caller must verify NEON support before calling
    /// (baseline on aarch64; the dispatch guard checks the cached
    /// neon probe).
    #[target_feature(enable = "neon")]
    pub unsafe fn accumulate_neon(packed: &PackedCodes, qt: &QuantizedTables, out: &mut [u16]) {
        let nr = packed.num_rows();
        let data = packed.data();
        let low_mask = vdupq_n_u8(0x0f);
        for (b, out_b) in out.chunks_exact_mut(BLOCK).enumerate() {
            super::prefetch_read(data, (b + 1) * nr * BLOCK);
            let mut acc = [vdupq_n_u16(0); 4];
            for (r, &pr) in packed.packed_rows().iter().enumerate() {
                let bytes = &data[(b * nr + r) * BLOCK..][..BLOCK];
                for half in 0..2 {
                    // SAFETY: `bytes` has BLOCK = 32 bytes, so this neon
                    // 16-byte load at `half * 16 + 16 <= 32` is in bounds.
                    let cv = unsafe { vld1q_u8(bytes.as_ptr().add(half * 16)) };
                    match pr {
                        PackedRow::Pair { lo, hi } => {
                            let lo_idx = vandq_u8(cv, low_mask);
                            let hi_idx = vshrq_n_u8::<4>(cv);
                            let vlo = table_lookup_neon(lo_idx, qt.row(lo), low_mask);
                            let vhi = table_lookup_neon(hi_idx, qt.row(hi), low_mask);
                            // Two separate u8→u16 widenings: the u8 sum
                            // of two 254-max entries would overflow.
                            let q = half * 2;
                            acc[q] = vaddw_u8(acc[q], vget_low_u8(vlo));
                            acc[q] = vaddw_u8(acc[q], vget_low_u8(vhi));
                            acc[q + 1] = vaddw_high_u8(acc[q + 1], vlo);
                            acc[q + 1] = vaddw_high_u8(acc[q + 1], vhi);
                        }
                        PackedRow::Single(j) => {
                            let vals = table_lookup_neon(cv, qt.row(j), low_mask);
                            let q = half * 2;
                            acc[q] = vaddw_u8(acc[q], vget_low_u8(vals));
                            acc[q + 1] = vaddw_high_u8(acc[q + 1], vals);
                        }
                    }
                }
            }
            for (q, &a) in acc.iter().enumerate() {
                // SAFETY: `out_b` has BLOCK = 32 u16 lanes; this neon
                // 8-lane store at `q * 8 + 8 <= 32` is in bounds.
                unsafe { vst1q_u16(out_b.as_mut_ptr().add(q * 8), a) };
            }
        }
    }

    /// One 16-lane table lookup (NEON tier). Same contract as the x86
    /// helpers: `row` is padded to whole 16-byte chunks; single-chunk
    /// rows take `cv` as direct indices, wider rows nibble-split and
    /// chunk-select with `vceqq`.
    #[target_feature(enable = "neon")]
    fn table_lookup_neon(cv: uint8x16_t, row: &[u8], low_mask: uint8x16_t) -> uint8x16_t {
        let chunks = row.len() / 16;
        if chunks == 1 {
            // SAFETY: `row` is padded to at least 16 bytes, covering
            // this neon table load.
            let tbl = unsafe { vld1q_u8(row.as_ptr()) };
            return vqtbl1q_u8(tbl, cv);
        }
        let lo = vandq_u8(cv, low_mask);
        let hi = vshrq_n_u8::<4>(cv);
        let mut v = vdupq_n_u8(0);
        for (k, kb) in (0..chunks).zip(0u8..) {
            // SAFETY: `row` is padded to `chunks * 16` bytes, covering
            // this neon table-chunk load at offset `k * 16`.
            let tbl = unsafe { vld1q_u8(row.as_ptr().add(k * 16)) };
            let sel = vceqq_u8(hi, vdupq_n_u8(kb));
            v = vorrq_u8(v, vandq_u8(sel, vqtbl1q_u8(tbl, lo)));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic LCG in [0, 1).
    fn rng(seed: &mut u64) -> f32 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 40) as f32) / (1u32 << 24) as f32
    }

    /// Builds an arena with the given table sizes filled with random
    /// non-negative values, plus random in-range codes for `n` vectors.
    fn setup(sizes: &[usize], n: usize, seed: u64) -> (TableArena, Vec<u16>) {
        let mut s = seed.wrapping_add(1);
        let mut arena = TableArena::with_layout(sizes);
        for t in 0..sizes.len() {
            for v in arena.table_mut(t) {
                *v = rng(&mut s) * 10.0;
            }
        }
        let mut codes = Vec::with_capacity(n * sizes.len());
        for _ in 0..n {
            for &sz in sizes {
                codes.push((rng(&mut s) * sz as f32) as u16 % sz as u16);
            }
        }
        (arena, codes)
    }

    const MIXED_SIZES: &[usize] = &[4, 16, 32, 256, 1024, 7];

    /// The byte of (vector `i`, packed row `r`), read straight from the
    /// blocked layout.
    fn byte_at(p: &PackedCodes, i: usize, r: usize) -> u8 {
        let (b, lane) = (i / BLOCK, i % BLOCK);
        p.data()[(b * p.num_rows() + r) * BLOCK + lane]
    }

    #[test]
    fn pack_transposes_into_blocked_layout() {
        // One nibble subspace without a partner plus one byte subspace:
        // no pairs form, so every packed subspace gets its own row.
        let sizes = [16usize, 256, 512];
        let (_, codes) = setup(&sizes, 70, 3);
        let packed = PackedCodes::pack(&codes, &sizes, 70);
        assert_eq!(packed.subspaces(), &[0, 1]);
        assert_eq!(packed.packed_rows(), &[PackedRow::Single(0), PackedRow::Single(1)]);
        assert_eq!(packed.blocks(), 3);
        assert_eq!(packed.data().len(), 3 * 2 * BLOCK);
        for i in 0..70 {
            for (j, &s) in packed.subspaces().iter().enumerate() {
                assert_eq!(
                    byte_at(&packed, i, j),
                    codes[i * sizes.len() + s] as u8,
                    "vector {i} subspace {s}"
                );
            }
        }
        // Tail lanes of the last block are zero-padded.
        let nr = packed.num_rows();
        for lane in 70 % BLOCK..BLOCK {
            for r in 0..nr {
                assert_eq!(packed.data()[(2 * nr + r) * BLOCK + lane], 0);
            }
        }
    }

    #[test]
    fn nibble_subspaces_pair_two_per_byte() {
        let sizes = [16usize, 8, 256];
        let (_, codes) = setup(&sizes, 50, 11);
        let packed = PackedCodes::pack(&codes, &sizes, 50);
        assert_eq!(packed.subspaces(), &[0, 1, 2]);
        assert_eq!(packed.packed_rows(), &[PackedRow::Pair { lo: 0, hi: 1 }, PackedRow::Single(2)]);
        assert_eq!(packed.num_rows(), 2);
        assert_eq!(packed.data().len(), packed.blocks() * 2 * BLOCK);
        for i in 0..50 {
            let pair = byte_at(&packed, i, 0);
            assert_eq!(u16::from(pair & 0x0f), codes[i * 3], "vector {i} low nibble");
            assert_eq!(u16::from(pair >> 4), codes[i * 3 + 1], "vector {i} high nibble");
            assert_eq!(u16::from(byte_at(&packed, i, 1)), codes[i * 3 + 2], "vector {i} byte row");
        }
    }

    #[test]
    fn mixed_plan_splits_into_pair_and_single_rows() {
        // MIXED_SIZES packs subspaces [0,1,2,3,5] with sizes
        // [4,16,32,256,7]; the nibble-eligible ones (packed indices 0, 1,
        // 4) form one pair plus a leftover single, byte subspaces keep
        // their own rows, and singles stay in ascending packed order.
        let (_, codes) = setup(MIXED_SIZES, 40, 5);
        let packed = PackedCodes::pack(&codes, MIXED_SIZES, 40);
        assert_eq!(packed.subspaces(), &[0, 1, 2, 3, 5]);
        assert_eq!(
            packed.packed_rows(),
            &[
                PackedRow::Pair { lo: 0, hi: 1 },
                PackedRow::Single(2),
                PackedRow::Single(3),
                PackedRow::Single(4),
            ]
        );
        assert_eq!(packed.truncated_packable(), 0);
        let m = MIXED_SIZES.len();
        for i in 0..40 {
            let pair = byte_at(&packed, i, 0);
            assert_eq!(u16::from(pair & 0x0f), codes[i * m], "low nibble");
            assert_eq!(u16::from(pair >> 4), codes[i * m + 1], "high nibble");
            assert_eq!(u16::from(byte_at(&packed, i, 1)), codes[i * m + 2]);
            assert_eq!(u16::from(byte_at(&packed, i, 2)), codes[i * m + 3]);
            assert_eq!(u16::from(byte_at(&packed, i, 3)), codes[i * m + 5]);
        }
    }

    #[test]
    fn append_is_byte_identical_to_full_repack() {
        // Cross every interesting boundary: appends that stay inside the
        // trailing partial block, land exactly on a block edge, and span
        // multiple new blocks — the derived `Eq` compares the raw blocked
        // bytes including tail padding, so equality here is byte-level.
        let sizes = MIXED_SIZES;
        let m = sizes.len();
        for (n0, extra) in [(0, 1), (5, 3), (30, 2), (32, 32), (33, 70), (64, 1), (70, 100)] {
            let (_, all) = setup(sizes, n0 + extra, 7 + n0 as u64);
            let mut incremental = PackedCodes::pack(&all[..n0 * m], sizes, n0);
            incremental.append(&all[n0 * m..], sizes, extra);
            let full = PackedCodes::pack(&all, sizes, n0 + extra);
            assert_eq!(incremental, full, "n0={n0} extra={extra}");
        }
        // Chained appends equal one shot too.
        let (_, all) = setup(sizes, 100, 42);
        let mut inc = PackedCodes::pack(&all[..10 * m], sizes, 10);
        let mut at = 10;
        for step in [1usize, 21, 32, 36] {
            inc.append(&all[at * m..(at + step) * m], sizes, step);
            at += step;
        }
        assert_eq!(inc, PackedCodes::pack(&all, sizes, 100));
    }

    #[test]
    fn append_degrades_exactly_like_full_repack() {
        // An out-of-range appended code must yield the same inactive
        // fallback the full repack produces.
        let sizes = [4usize, 8];
        let (_, mut all) = setup(&sizes, 40, 5);
        let mut inc = PackedCodes::pack(&all[..20 * 2], &sizes, 20);
        assert!(inc.is_active());
        all[25 * 2] = 4; // >= sizes[0]
        inc.append(&all[20 * 2..], &sizes, 20);
        assert_eq!(inc, PackedCodes::pack(&all, &sizes, 40));
        assert!(!inc.is_active());
        assert_eq!(inc.len(), 40);
        // Once inactive, further appends only advance the bookkeeping —
        // matching a full repack that still sees the poisoned prefix.
        let (_, more) = setup(&sizes, 8, 6);
        inc.append(&more, &sizes, 8);
        let mut combined = all.clone();
        combined.extend_from_slice(&more);
        assert_eq!(inc, PackedCodes::pack(&combined, &sizes, 48));
        // A plan switch mid-stream is refused rather than transposed
        // inconsistently.
        let mut inc = PackedCodes::pack(&all[..20 * 2], &sizes, 20);
        inc.append(&all[20 * 2..], &[4, 512], 20);
        assert!(!inc.is_active());
        assert_eq!(inc.len(), 40);
    }

    #[test]
    fn pack_refuses_unpackable_plans() {
        // Nothing ≤ 256 rows.
        let p = PackedCodes::pack(&[0, 0], &[512, 1024], 1);
        assert!(!p.is_active());
        // An out-of-range code would corrupt the bound: refuse.
        let p = PackedCodes::pack(&[3, 1], &[4, 4], 1);
        assert!(p.is_active());
        let p = PackedCodes::pack(&[4, 1], &[4, 4], 1);
        assert!(!p.is_active());
    }

    #[test]
    fn overflowing_plans_truncate_the_excess_instead_of_refusing() {
        // 260 packable subspaces: the first MAX_PACKED_SUBSPACES pack,
        // the rest degrade to the exact path and are reported.
        let sizes = vec![2usize; MAX_PACKED_SUBSPACES + 3];
        let (arena, codes) = setup(&sizes, 37, 13);
        let packed = PackedCodes::pack(&codes, &sizes, 37);
        assert!(packed.is_active());
        assert_eq!(packed.num_subspaces(), MAX_PACKED_SUBSPACES);
        assert_eq!(packed.truncated_packable(), 3);
        let expect: Vec<usize> = (0..MAX_PACKED_SUBSPACES).collect();
        assert_eq!(packed.subspaces(), &expect[..]);
        // The saturated worst case still fits the u16 accumulators, and
        // the bound (which folds the truncated minima into base) holds.
        let mut qt = QuantizedTables::new();
        qt.quantize(&arena, &packed);
        let mut qsums = Vec::new();
        accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut qsums);
        let m = sizes.len();
        for i in 0..37 {
            let exact: f32 = (0..m).map(|s| arena.lookup(s, codes[i * m + s] as usize)).sum();
            assert!(qt.lower_bound(qsums[i]) <= exact, "vector {i}");
        }
        // Appends must preserve the truncation decision.
        let (_, more) = setup(&sizes, 5, 14);
        let mut inc = packed.clone();
        inc.append(&more, &sizes, 5);
        let mut combined = codes.clone();
        combined.extend_from_slice(&more);
        assert_eq!(inc, PackedCodes::pack(&combined, &sizes, 42));
    }

    #[test]
    fn from_parts_roundtrips_and_converts_legacy_layout() {
        let (_, codes) = setup(MIXED_SIZES, 45, 21);
        let packed = PackedCodes::pack(&codes, MIXED_SIZES, 45);
        // Current-layout bytes round-trip untouched.
        let rebuilt =
            PackedCodes::from_parts(packed.data().to_vec().into(), MIXED_SIZES, 45).unwrap();
        assert_eq!(rebuilt, packed);
        // Legacy bytes (one byte per packed subspace, no pairs) convert
        // to the paired layout bit-exactly.
        let (mp, m) = (packed.num_subspaces(), MIXED_SIZES.len());
        let mut legacy = vec![0u8; packed.blocks() * mp * BLOCK];
        for i in 0..45 {
            let (b, lane) = (i / BLOCK, i % BLOCK);
            for (j, &s) in packed.subspaces().iter().enumerate() {
                legacy[(b * mp + j) * BLOCK + lane] = codes[i * m + s] as u8;
            }
        }
        let converted = PackedCodes::from_parts(legacy.into(), MIXED_SIZES, 45).unwrap();
        assert_eq!(converted, packed);
        // Any other byte length is rejected.
        let truncated = packed.data()[..packed.data().len() - 1].to_vec();
        assert!(PackedCodes::from_parts(truncated.into(), MIXED_SIZES, 45).is_none());
        // Unpackable plans only round-trip the empty inactive form.
        let p = PackedCodes::from_parts(CodesStorage::default(), &[512], 9).unwrap();
        assert!(!p.is_active());
        assert_eq!(p.len(), 9);
        assert!(PackedCodes::from_parts(vec![0u8; 32].into(), &[512], 9).is_none());
        // Legacy files whose plan overflowed the accumulator budget
        // stored no bytes; they load as inactive rather than failing.
        let sizes = vec![2usize; MAX_PACKED_SUBSPACES + 1];
        let p = PackedCodes::from_parts(CodesStorage::default(), &sizes, 4).unwrap();
        assert!(!p.is_active());
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn quantized_sum_lower_bounds_exact_distance() {
        for seed in 0..20 {
            let n = 57;
            let (arena, codes) = setup(MIXED_SIZES, n, seed);
            let packed = PackedCodes::pack(&codes, MIXED_SIZES, n);
            assert_eq!(packed.num_subspaces(), 5);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let mut qsums = Vec::new();
            accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut qsums);
            let m = MIXED_SIZES.len();
            for i in 0..n {
                let exact: f32 = (0..m).map(|s| arena.lookup(s, codes[i * m + s] as usize)).sum();
                let lb = qt.lower_bound(qsums[i]);
                assert!(lb <= exact, "seed {seed} vector {i}: bound {lb} exceeds exact {exact}");
                // And the bound is not vacuous: for the packed part it is
                // within m*delta of the exact entries (unpacked subspaces
                // only contribute their minimum, which the floor reflects).
                let floor: f32 = packed
                    .subspaces()
                    .iter()
                    .map(|&s| arena.lookup(s, codes[i * m + s] as usize))
                    .sum::<f32>()
                    + (0..m)
                        .filter(|s| !packed.subspaces().contains(s))
                        .map(|s| arena.table(s).iter().copied().fold(f32::INFINITY, f32::min))
                        .sum::<f32>();
                assert!(lb >= floor - qt.max_underestimate() - 1e-3);
            }
        }
    }

    #[test]
    fn prune_cutoff_is_equivalent_to_lower_bound_test() {
        let (arena, codes) = setup(MIXED_SIZES, 40, 9);
        let packed = PackedCodes::pack(&codes, MIXED_SIZES, 40);
        let mut qt = QuantizedTables::new();
        qt.quantize(&arena, &packed);
        let thresholds = [
            f32::NEG_INFINITY,
            -1.0,
            0.0,
            qt.base(),
            qt.lower_bound(1),
            qt.lower_bound(700),
            qt.lower_bound(700) + 1e-6,
            qt.lower_bound(u16::MAX),
            f32::INFINITY,
            f32::NAN,
        ];
        for t in thresholds {
            let cutoff = qt.prune_cutoff(t);
            for q in (0..=u32::from(u16::MAX)).step_by(7).chain([cutoff.saturating_sub(1), cutoff])
            {
                let Ok(q16) = u16::try_from(q) else { continue };
                assert_eq!(
                    q >= cutoff,
                    qt.lower_bound(q16) >= t,
                    "threshold {t} qsum {q} cutoff {cutoff}"
                );
            }
        }
    }

    #[test]
    fn simd_kernels_match_scalar_exactly() {
        for &n in &[1usize, 31, 32, 33, 400] {
            let (arena, codes) = setup(MIXED_SIZES, n, n as u64);
            let packed = PackedCodes::pack(&codes, MIXED_SIZES, n);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let mut reference = Vec::new();
            accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut reference);
            for kernel in ScanKernel::ALL.into_iter().chain([active_kernel()]) {
                let mut out = Vec::new();
                accumulate_qsums_with(kernel, &packed, &qt, &mut out);
                assert_eq!(out, reference, "kernel {} n {n}", kernel.name());
            }
        }
    }

    #[test]
    fn batched_kernels_match_sequential_exactly() {
        // 7 distinct queries (not a tile multiple) against one packing:
        // every tier's batched output must equal its own sequential
        // output query by query.
        let n = 203;
        let (_, codes) = setup(MIXED_SIZES, n, 77);
        let packed = PackedCodes::pack(&codes, MIXED_SIZES, n);
        let qts: Vec<QuantizedTables> = (0..7)
            .map(|q| {
                let (arena, _) = setup(MIXED_SIZES, 1, 100 + q);
                let mut qt = QuantizedTables::new();
                qt.quantize(&arena, &packed);
                qt
            })
            .collect();
        for kernel in ScanKernel::ALL {
            let sequential: Vec<Vec<u16>> = qts
                .iter()
                .map(|qt| {
                    let mut out = Vec::new();
                    accumulate_qsums_with(kernel, &packed, qt, &mut out);
                    out
                })
                .collect();
            let mut outs: Vec<Vec<u16>> = vec![Vec::new(); qts.len()];
            let mut queries: Vec<(&QuantizedTables, &mut Vec<u16>)> =
                qts.iter().zip(outs.iter_mut()).collect();
            accumulate_qsums_multi(kernel, &packed, &mut queries);
            for (q, (got, want)) in outs.iter().zip(&sequential).enumerate() {
                assert_eq!(got, want, "kernel {} query {q}", kernel.name());
            }
        }
    }

    #[test]
    fn constant_tables_quantize_to_zero() {
        let sizes = [8usize, 8];
        let mut arena = TableArena::with_layout(&sizes);
        arena.fill_with(|_, t| t.fill(2.5));
        let codes: Vec<u16> = (0..16).map(|i| i % 8).collect();
        let packed = PackedCodes::pack(&codes, &sizes, 8);
        let mut qt = QuantizedTables::new();
        qt.quantize(&arena, &packed);
        assert_eq!(qt.delta(), 0.0);
        let mut qsums = Vec::new();
        accumulate_qsums(&packed, &qt, &mut qsums);
        assert!(qsums.iter().all(|&q| q == 0));
        // base alone reconstructs the (constant) distance, within slack.
        let lb = qt.lower_bound(0);
        assert!(lb <= 5.0 && lb > 4.99);
    }

    #[test]
    fn prefetch_is_a_safe_no_op_at_any_index() {
        let data = vec![0u8; 64];
        prefetch_read(&data, 0);
        prefetch_read(&data, 63);
        prefetch_read(&data, 64);
        prefetch_read(&data, usize::MAX);
        prefetch_read::<u8>(&[], 0);
    }

    /// A random mixed-width plan: nibble, byte, and >8-bit (unpackable)
    /// table sizes in arbitrary order.
    fn plan_strategy() -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(
            (0usize..3, 0usize..1000).prop_map(|(bucket, r)| match bucket {
                0 => 1 + r % 16,    // nibble-packable
                1 => 17 + r % 240,  // byte-packable (chunked lookup)
                _ => 257 + r % 844, // unpackable: exact f32 fallback
            }),
            1..7,
        )
    }

    proptest! {
        /// Byte-identical qsums across every kernel tier, every packed
        /// row shape (pairs, singles, chunked wide tables), and the
        /// batched entry point, on random mixed-width plans.
        #[test]
        fn kernel_parity_on_random_plans(
            sizes in plan_strategy(),
            n in 0usize..130,
            seed in 0u64..1000,
        ) {
            let (arena, codes) = setup(&sizes, n, seed);
            let packed = PackedCodes::pack(&codes, &sizes, n);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let mut reference = Vec::new();
            accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut reference);
            for kernel in ScanKernel::ALL {
                let mut out = Vec::new();
                accumulate_qsums_with(kernel, &packed, &qt, &mut out);
                prop_assert_eq!(&out, &reference, "kernel {}", kernel.name());
                let mut b0 = Vec::new();
                let mut b1 = Vec::new();
                let mut queries: Vec<(&QuantizedTables, &mut Vec<u16>)> =
                    vec![(&qt, &mut b0), (&qt, &mut b1)];
                accumulate_qsums_multi(kernel, &packed, &mut queries);
                prop_assert_eq!(&b0, &reference, "multi[0] {}", kernel.name());
                prop_assert_eq!(&b1, &reference, "multi[1] {}", kernel.name());
            }
            // The bound survives arbitrary plans too.
            if packed.is_active() {
                let m = sizes.len();
                for i in 0..n {
                    let exact: f32 =
                        (0..m).map(|s| arena.lookup(s, codes[i * m + s] as usize)).sum();
                    prop_assert!(qt.lower_bound(reference[i]) <= exact);
                }
            }
        }

        /// `from_parts` over the serialized bytes reproduces the packing
        /// and scans identically on random plans.
        #[test]
        fn from_parts_preserves_scan_results(
            sizes in plan_strategy(),
            n in 0usize..90,
            seed in 0u64..1000,
        ) {
            let (arena, codes) = setup(&sizes, n, seed);
            let packed = PackedCodes::pack(&codes, &sizes, n);
            let rebuilt =
                PackedCodes::from_parts(packed.data().to_vec().into(), &sizes, n);
            if !packed.is_active() {
                // Inactive packings serialize no bytes; the empty form
                // round-trips.
                let p = PackedCodes::from_parts(CodesStorage::default(), &sizes, n);
                prop_assert!(p.is_some_and(|p| !p.is_active()));
                return Ok(());
            }
            let rebuilt = rebuilt.expect("length matches");
            prop_assert_eq!(&rebuilt, &packed);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            accumulate_qsums(&packed, &qt, &mut a);
            accumulate_qsums(&rebuilt, &qt, &mut b);
            prop_assert_eq!(a, b);
        }
    }

    #[cfg(all(
        not(miri),
        any(target_os = "linux", target_os = "macos"),
        target_pointer_width = "64",
        target_endian = "little"
    ))]
    mod mapped {
        use super::*;
        use crate::mmap::MappedRegion;
        use std::io::Write;
        use std::sync::Arc;

        fn tmp_storage(bytes: &[u8], tag: &str) -> (std::path::PathBuf, CodesStorage) {
            let path = std::env::temp_dir().join(format!(
                "vaq-qtables-{tag}-{}-{}",
                std::process::id(),
                bytes.len()
            ));
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(bytes).unwrap();
            f.sync_all().unwrap();
            let f = std::fs::File::open(&path).unwrap();
            let region = MappedRegion::map_file(&f).expect("mmap supported here");
            let storage = CodesStorage::mapped(Arc::clone(&region), 0, bytes.len()).unwrap();
            (path, storage)
        }

        /// Every kernel tier scans mapped (borrowed) bytes identically
        /// to the owned packing — the mapped-scan compatibility contract.
        #[test]
        fn mapped_storage_scans_identical_to_owned() {
            for (tag, sizes) in [("nib", vec![16usize, 4, 8, 2]), ("mix", MIXED_SIZES.to_vec())] {
                let n = 150;
                let (arena, codes) = setup(&sizes, n, 31);
                let packed = PackedCodes::pack(&codes, &sizes, n);
                assert!(packed.is_active());
                let (path, storage) = tmp_storage(packed.data(), tag);
                let mapped = PackedCodes::from_parts(storage, &sizes, n).unwrap();
                assert!(mapped.storage().is_mapped());
                assert_eq!(mapped, packed);
                let mut qt = QuantizedTables::new();
                qt.quantize(&arena, &packed);
                let mut reference = Vec::new();
                accumulate_qsums_with(ScanKernel::Scalar, &packed, &qt, &mut reference);
                for kernel in ScanKernel::ALL {
                    let mut out = Vec::new();
                    accumulate_qsums_with(kernel, &mapped, &qt, &mut out);
                    assert_eq!(out, reference, "kernel {} ({tag})", kernel.name());
                }
                std::fs::remove_file(path).unwrap();
            }
        }

        /// Legacy-layout bytes in a mapped file convert to an owned
        /// packing (copy-on-write) with identical scan results.
        #[test]
        fn mapped_legacy_bytes_convert_and_scan_identically() {
            let sizes = [4usize, 16, 256];
            let n = 77;
            let (arena, codes) = setup(&sizes, n, 57);
            let packed = PackedCodes::pack(&codes, &sizes, n);
            let mp = packed.num_subspaces();
            let mut legacy = vec![0u8; packed.blocks() * mp * BLOCK];
            for i in 0..n {
                let (b, lane) = (i / BLOCK, i % BLOCK);
                for (j, &s) in packed.subspaces().iter().enumerate() {
                    legacy[(b * mp + j) * BLOCK + lane] = codes[i * sizes.len() + s] as u8;
                }
            }
            let (path, storage) = tmp_storage(&legacy, "legacy");
            let converted = PackedCodes::from_parts(storage, &sizes, n).unwrap();
            // Conversion re-pairs into an owned buffer.
            assert!(!converted.storage().is_mapped());
            assert_eq!(converted, packed);
            let mut qt = QuantizedTables::new();
            qt.quantize(&arena, &packed);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            accumulate_qsums(&packed, &qt, &mut a);
            accumulate_qsums(&converted, &qt, &mut b);
            assert_eq!(a, b);
            std::fs::remove_file(path).unwrap();
        }
    }
}
