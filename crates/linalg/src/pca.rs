//! Principal component analysis — the `VarPCA` front-end of VAQ
//! (paper Algorithm 1) and the projection step shared with OPQ and ITQ.

use crate::covariance::{column_means, covariance_centered};
use crate::eigen::{sym_eigen, SymEigen};
use crate::matrix::Matrix;
use crate::Result;

/// A fitted PCA model.
///
/// Holds the column means used for centering, the eigenvector basis (one
/// component per column, sorted by descending eigenvalue) and the
/// eigenvalues themselves. The eigenvalues double as VAQ's per-dimension
/// importance scores (paper Equation 6).
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    components: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Reassembles a model from its parts (deserialization support).
    ///
    /// # Panics
    /// Panics if the shapes disagree.
    pub fn from_parts(mean: Vec<f32>, components: Matrix, eigenvalues: Vec<f64>) -> Pca {
        assert_eq!(mean.len(), components.rows(), "mean/components mismatch");
        assert_eq!(eigenvalues.len(), components.cols(), "eigenvalues/components mismatch");
        Pca { mean, components, eigenvalues }
    }

    /// Fits PCA on the rows of `x` (mean-centered covariance).
    pub fn fit(x: &Matrix) -> Result<Pca> {
        let cov = covariance_centered(x)?;
        let SymEigen { values, vectors } = sym_eigen(&cov)?;
        let mean = column_means(x)?.into_iter().map(|v| v as f32).collect();
        Ok(Pca { mean, components: vectors.to_f32(), eigenvalues: values })
    }

    /// Fits PCA from a Frequent Directions sketch of the centered data —
    /// the paper's large-`d` escape hatch (§III-B, "sketching methods
    /// reduce the quadratic time over d to linear \[68\]"). The covariance
    /// accumulation drops from `O(n·d²)` to `O(n·ℓ·d)`; the spectrum of
    /// the sketch provably approximates the true one for `ℓ` above the
    /// data's effective rank.
    pub fn fit_sketched(x: &Matrix, sketch_size: usize) -> Result<Pca> {
        let means = crate::covariance::column_means(x)?;
        let d = x.cols();
        let mut fd = crate::sketch::FrequentDirections::new(sketch_size.max(2), d)?;
        let mut centered = vec![0.0f32; d];
        for row in x.iter_rows() {
            for ((c, &v), &m) in centered.iter_mut().zip(row.iter()).zip(means.iter()) {
                *c = v - m as f32;
            }
            fd.push(&centered);
        }
        let mut gram = fd.gram();
        let inv_n = 1.0 / x.rows() as f64;
        for i in 0..d {
            for j in 0..d {
                gram.set(i, j, gram.get(i, j) * inv_n);
            }
        }
        let SymEigen { values, vectors } = sym_eigen(&gram)?;
        Ok(Pca {
            mean: means.into_iter().map(|v| v as f32).collect(),
            components: vectors.to_f32(),
            eigenvalues: values,
        })
    }

    /// Fits PCA on the *uncentered* scatter matrix `XᵀX/n`, which is what
    /// the paper's Algorithm 1 literally computes. For z-normalized data the
    /// two variants coincide.
    pub fn fit_uncentered(x: &Matrix) -> Result<Pca> {
        let cov = crate::covariance::covariance(x)?;
        let SymEigen { values, vectors } = sym_eigen(&cov)?;
        Ok(Pca { mean: vec![0.0; x.cols()], components: vectors.to_f32(), eigenvalues: values })
    }

    /// Dimensionality of the fitted space.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvector basis, one component per column.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Column means used for centering.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Per-dimension importance as the normalized absolute eigenvalue mass —
    /// paper Equation 6.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().map(|v| v.abs()).sum();
        if total == 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|v| v.abs() / total).collect()
    }

    /// Projects every row of `x` onto the component basis: `(X − μ) V`.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let mut centered = x.clone();
        for i in 0..centered.rows() {
            let row = centered.row_mut(i);
            for (v, &m) in row.iter_mut().zip(self.mean.iter()) {
                *v -= m;
            }
        }
        centered.matmul(&self.components)
    }

    /// Projects a single vector (e.g. an incoming query).
    pub fn transform_vec(&self, v: &[f32]) -> Result<Vec<f32>> {
        let centered: Vec<f32> = v.iter().zip(self.mean.iter()).map(|(a, m)| a - m).collect();
        self.components.project_row(&centered)
    }

    /// Reconstructs vectors from the projected space: `Z Vᵀ + μ`.
    pub fn inverse_transform(&self, z: &Matrix) -> Result<Matrix> {
        let mut back = z.matmul(&self.components.transpose())?;
        for i in 0..back.rows() {
            let row = back.row_mut(i);
            for (v, &m) in row.iter_mut().zip(self.mean.iter()) {
                *v += m;
            }
        }
        Ok(back)
    }

    /// Reorders the component columns (and eigenvalues) by `perm`.
    ///
    /// This is the hook VAQ's partial-balancing step uses: it permutes PCs
    /// between subspaces and the projection must follow the same order so
    /// that queries land in the same coordinates as encoded data.
    pub fn permute_components(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.eigenvalues.len());
        self.components = self.components.select_columns(perm);
        self.eigenvalues = perm.iter().map(|&i| self.eigenvalues[i]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Correlated 2-D cloud along y = 2x.
    fn line_cloud() -> Matrix {
        let mut rows = Vec::new();
        let mut s = 9u64;
        for i in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            let t = (i as f32 / 100.0) - 1.0;
            rows.push(vec![t + 0.01 * noise, 2.0 * t - 0.01 * noise]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let pca = Pca::fit(&line_cloud()).unwrap();
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.99, "dominant PC should explain almost all variance: {ratio:?}");
        // Direction should be ~ (1, 2)/sqrt(5).
        let c = pca.components();
        let dir = (c.get(0, 0) / c.get(1, 0)).abs();
        assert!((dir - 0.5).abs() < 0.05, "expected slope 2 direction, got ratio {dir}");
    }

    #[test]
    fn transform_then_inverse_roundtrips() {
        let x = line_cloud();
        let pca = Pca::fit(&x).unwrap();
        let z = pca.transform(&x).unwrap();
        let back = pca.inverse_transform(&z).unwrap();
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                assert!((x.get(i, j) - back.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn transform_vec_matches_matrix_transform() {
        let x = line_cloud();
        let pca = Pca::fit(&x).unwrap();
        let z = pca.transform(&x).unwrap();
        let zv = pca.transform_vec(x.row(7)).unwrap();
        for j in 0..x.cols() {
            assert!((z.get(7, j) - zv[j]).abs() < 1e-5);
        }
    }

    #[test]
    fn projection_preserves_pairwise_distances() {
        // Orthonormal projection to the full basis is an isometry.
        let x = line_cloud();
        let pca = Pca::fit(&x).unwrap();
        let z = pca.transform(&x).unwrap();
        let d_orig = crate::norms::euclidean(x.row(3), x.row(50));
        let d_proj = crate::norms::euclidean(z.row(3), z.row(50));
        assert!((d_orig - d_proj).abs() < 1e-4);
    }

    #[test]
    fn eigenvalues_descending() {
        let pca = Pca::fit(&line_cloud()).unwrap();
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn permute_components_reorders_projection() {
        let x = line_cloud();
        let mut pca = Pca::fit(&x).unwrap();
        let before = pca.transform_vec(x.row(0)).unwrap();
        pca.permute_components(&[1, 0]);
        let after = pca.transform_vec(x.row(0)).unwrap();
        assert!((before[0] - after[1]).abs() < 1e-6);
        assert!((before[1] - after[0]).abs() < 1e-6);
    }

    #[test]
    fn uncentered_fit_on_centered_data_matches_centered_fit() {
        let x = line_cloud();
        // Center manually.
        let means = crate::covariance::column_means(&x).unwrap();
        let mut xc = x.clone();
        for i in 0..xc.rows() {
            let row = xc.row_mut(i);
            for (v, &m) in row.iter_mut().zip(means.iter()) {
                *v -= m as f32;
            }
        }
        let a = Pca::fit(&x).unwrap();
        let b = Pca::fit_uncentered(&xc).unwrap();
        for (va, vb) in a.eigenvalues().iter().zip(b.eigenvalues().iter()) {
            assert!((va - vb).abs() < 1e-5 * va.abs().max(1.0));
        }
    }

    #[test]
    fn sketched_fit_approximates_exact_spectrum() {
        let x = line_cloud();
        let exact = Pca::fit(&x).unwrap();
        let sketched = Pca::fit_sketched(&x, 4).unwrap();
        // The dominant eigenvalue and its share must agree closely (the
        // cloud is effectively rank-1).
        let e0 = exact.eigenvalues()[0];
        let s0 = sketched.eigenvalues()[0];
        assert!((e0 - s0).abs() < 0.1 * e0, "exact {e0} vs sketched {s0}");
        let er = exact.explained_variance_ratio()[0];
        let sr = sketched.explained_variance_ratio()[0];
        assert!((er - sr).abs() < 0.05, "shares {er} vs {sr}");
        // Dominant directions align up to sign.
        let dot: f32 =
            (0..2).map(|i| exact.components().get(i, 0) * sketched.components().get(i, 0)).sum();
        assert!(dot.abs() > 0.99, "direction cosine {dot}");
    }

    #[test]
    fn explained_variance_ratio_sums_to_one() {
        let pca = Pca::fit(&line_cloud()).unwrap();
        let s: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
