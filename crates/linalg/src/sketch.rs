//! Frequent Directions matrix sketching (Liberty, KDD 2013) — the paper's
//! escape hatch for `VarPCA` on long vectors: "For large dimensions,
//! sketching methods reduce the quadratic time over d to linear \[68\]"
//! (§III-B, discussion of Algorithm 1).
//!
//! A sketch `B ∈ ℝ^{ℓ×d}` is maintained over a stream of rows of `X` such
//! that `‖XᵀX − BᵀB‖₂ ≤ ‖X‖²_F / (ℓ − 2k)` for any rank `k < ℓ/2`:
//! whenever the buffer fills, the spectrum of the small `2ℓ×2ℓ` Gram
//! matrix `BBᵀ` is computed (never a `d×d` object), the middle singular
//! value is subtracted from all squared singular values, and the rows are
//! rebuilt — shrinking away the weakest directions while provably
//! preserving the strong ones. Feeding the sketch to [`crate::Pca`]-style
//! eigenanalysis replaces the `O(n·d²)` covariance accumulation with
//! `O(n·ℓ·d)`.

use crate::eigen::sym_eigen;
use crate::matrix::{DMatrix, Matrix};
use crate::{LinalgError, Result};

/// A streaming Frequent Directions sketch.
#[derive(Debug, Clone)]
pub struct FrequentDirections {
    /// Sketch size ℓ (rows retained after each shrink).
    l: usize,
    /// Dimensionality.
    d: usize,
    /// Buffer of up to `2ℓ` rows (f64 for the shrink arithmetic).
    rows: Vec<Vec<f64>>,
}

impl FrequentDirections {
    /// Creates an empty sketch with `l` retained directions over `d`
    /// dimensions.
    pub fn new(l: usize, d: usize) -> Result<Self> {
        if l == 0 || d == 0 {
            return Err(LinalgError::Empty { op: "FrequentDirections::new" });
        }
        Ok(FrequentDirections { l, d, rows: Vec::with_capacity(2 * l) })
    }

    /// Sketch size ℓ.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Appends one data row to the stream.
    ///
    /// # Panics
    /// Panics if the row length differs from `d`.
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.d, "row length mismatch");
        self.rows.push(row.iter().map(|&v| v as f64).collect());
        if self.rows.len() >= 2 * self.l {
            self.shrink();
        }
    }

    /// Appends every row of a matrix.
    pub fn extend(&mut self, m: &Matrix) {
        for row in m.iter_rows() {
            self.push(row);
        }
    }

    /// The current sketch `B` (at most `2ℓ − 1` rows; exactly ℓ after a
    /// shrink). `BᵀB` approximates `XᵀX` of everything pushed so far.
    pub fn sketch(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows.len(), self.d);
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out.set(i, j, v as f32);
            }
        }
        out
    }

    /// Approximate covariance `BᵀB / n_pushed` is usually what callers
    /// want; this returns the raw Gram approximation `BᵀB`.
    pub fn gram(&self) -> DMatrix {
        let b = self.rows.len();
        let mut g = DMatrix::zeros(self.d, self.d);
        for row in &self.rows {
            for i in 0..self.d {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.d {
                    g.set(i, j, g.get(i, j) + ri * row[j]);
                }
            }
        }
        for i in 0..self.d {
            for j in 0..i {
                g.set(i, j, g.get(j, i));
            }
        }
        let _ = b;
        g
    }

    /// The shrink step: SVD via the small `b×b` Gram matrix `BBᵀ`.
    fn shrink(&mut self) {
        let b = self.rows.len();
        if b <= self.l {
            return;
        }
        // Small Gram matrix BBᵀ (b×b), eigendecomposed.
        let mut gram = DMatrix::zeros(b, b);
        for i in 0..b {
            for j in i..b {
                let dot: f64 =
                    self.rows[i].iter().zip(self.rows[j].iter()).map(|(a, c)| a * c).sum();
                gram.set(i, j, dot);
                gram.set(j, i, dot);
            }
        }
        let eig = match sym_eigen(&gram) {
            Ok(e) => e,
            Err(_) => return, // degenerate buffer; keep as-is
        };
        // Singular values σ_i = sqrt(λ_i); right singular vectors
        // vᵢ = Bᵀ uᵢ / σᵢ. Shrink: σ'ᵢ² = max(σᵢ² − σ_ℓ², 0); keep the
        // top ℓ rows σ'ᵢ·vᵢᵀ.
        let delta = eig.values.get(self.l - 1).copied().unwrap_or(0.0).max(0.0);
        let mut new_rows: Vec<Vec<f64>> = Vec::with_capacity(self.l);
        for i in 0..self.l.min(b) {
            let lambda = eig.values[i].max(0.0);
            let shrunk = (lambda - delta).max(0.0);
            if shrunk <= 1e-300 {
                continue;
            }
            let sigma = lambda.sqrt();
            if sigma <= 1e-150 {
                continue;
            }
            // v = Bᵀ u / σ, row = sqrt(shrunk) · vᵀ = sqrt(shrunk)/σ · (uᵀB).
            let scale = shrunk.sqrt() / sigma;
            let mut row = vec![0.0f64; self.d];
            for (r, old) in self.rows.iter().enumerate() {
                let u = eig.vectors.get(r, i);
                if u == 0.0 {
                    continue;
                }
                for (dst, &v) in row.iter_mut().zip(old.iter()) {
                    *dst += u * v;
                }
            }
            for v in row.iter_mut() {
                *v *= scale;
            }
            new_rows.push(row);
        }
        self.rows = new_rows;
    }

    /// Finalizes: force a shrink to at most ℓ rows and return the sketch.
    pub fn finish(mut self) -> Matrix {
        if self.rows.len() > self.l {
            self.shrink();
        }
        self.sketch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariance::covariance;

    /// Low-rank-ish data: 3 strong directions + noise, n rows, d dims.
    fn structured(n: usize, d: usize, seed: u64) -> Matrix {
        let mut s = seed.max(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0
        };
        // Three fixed directions.
        let dirs: Vec<Vec<f32>> = (0..3)
            .map(|k| (0..d).map(|j| ((j * (k + 2) + k) as f32 * 0.7).sin()).collect())
            .collect();
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = vec![0.0f32; d];
            for (k, dir) in dirs.iter().enumerate() {
                let coef = next() * (4.0 / (k + 1) as f32);
                for (r, &dv) in row.iter_mut().zip(dir.iter()) {
                    *r += coef * dv;
                }
            }
            for r in row.iter_mut() {
                *r += 0.05 * next();
            }
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(FrequentDirections::new(0, 4).is_err());
        assert!(FrequentDirections::new(4, 0).is_err());
    }

    #[test]
    fn sketch_never_exceeds_two_l_rows() {
        let data = structured(500, 12, 1);
        let mut fd = FrequentDirections::new(8, 12).unwrap();
        for i in 0..data.rows() {
            fd.push(data.row(i));
            assert!(fd.rows.len() < 16);
        }
        let b = fd.finish();
        assert!(b.rows() <= 8);
        assert_eq!(b.cols(), 12);
    }

    #[test]
    fn gram_approximates_true_scatter() {
        let n = 800;
        let d = 16;
        let data = structured(n, d, 2);
        let mut fd = FrequentDirections::new(10, d).unwrap();
        fd.extend(&data);
        let approx = fd.gram();
        // True scatter XᵀX.
        let exact_cov = covariance(&data).unwrap(); // XᵀX / n
        let mut exact = DMatrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                exact.set(i, j, exact_cov.get(i, j) * n as f64);
            }
        }
        // FD guarantee is in spectral norm; check the relative Frobenius
        // error is modest for this effectively rank-3 stream.
        let err = approx.frobenius_distance(&exact);
        let scale = exact.frobenius_distance(&DMatrix::zeros(d, d));
        assert!(err < 0.15 * scale, "relative error {} too large", err / scale);
    }

    #[test]
    fn top_eigenvalues_preserved() {
        let data = structured(600, 20, 3);
        let mut fd = FrequentDirections::new(10, 20).unwrap();
        fd.extend(&data);
        let approx_eig = sym_eigen(&fd.gram()).unwrap();
        let exact_cov = covariance(&data).unwrap();
        let exact_eig = sym_eigen(&exact_cov).unwrap();
        // Compare top-3 eigenvalues after matching scales (gram = n·cov).
        for k in 0..3 {
            let a = approx_eig.values[k] / 600.0;
            let e = exact_eig.values[k];
            assert!((a - e).abs() < 0.2 * e.max(1e-9), "eigenvalue {k}: sketch {a} vs exact {e}");
        }
    }

    #[test]
    fn deterministic() {
        let data = structured(300, 8, 4);
        let run = || {
            let mut fd = FrequentDirections::new(6, 8).unwrap();
            fd.extend(&data);
            fd.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic]
    fn wrong_row_length_panics() {
        let mut fd = FrequentDirections::new(4, 8).unwrap();
        fd.push(&[1.0, 2.0]);
    }
}
