//! Row-major dense matrices.
//!
//! [`Matrix`] stores `f32` data row-by-row: row `i` is the `i`-th data
//! vector. This matches the access pattern of every quantizer in the
//! workspace (scan rows, slice contiguous column ranges out of a row), so
//! row extraction is a cheap slice borrow and subspace extraction is a
//! `copy_from_slice`. [`DMatrix`] is the `f64` twin used for covariance and
//! eigen work, where single-precision accumulation would visibly perturb
//! small eigenvalues.

use crate::{LinalgError, Result};

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows (data vectors).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (dimensions).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// The full row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams over contiguous
    /// rows of both the output and `other` (cache-friendly for the
    /// `n×d · d×d` projections the quantizers perform).
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self.iter_rows().map(|row| crate::norms::dot(row, v)).collect())
    }

    /// Projects a single vector through the matrix interpreted as a set of
    /// column vectors: returns `v * self` (i.e. `selfᵀ v`).
    ///
    /// This is how queries are rotated into PC space: the eigenvector matrix
    /// stores one eigenvector per *column*, and data rows are multiplied on
    /// the right (`X * V`).
    pub fn project_row(&self, v: &[f32]) -> Result<Vec<f32>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "project_row",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        for (k, &a) in v.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = self.row(k);
            for (o, &b) in out.iter_mut().zip(row.iter()) {
                *o += a * b;
            }
        }
        Ok(out)
    }

    /// Returns a new matrix keeping only the listed columns, in order.
    ///
    /// Used to permute principal components into subspaces (the partial
    /// balancing step reorders columns of the eigenvector basis).
    pub fn select_columns(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = &mut out.data[i * idx.len()..(i + 1) * idx.len()];
            for (d, &j) in dst.iter_mut().zip(idx.iter()) {
                *d = src[j];
            }
        }
        out
    }

    /// Returns a new matrix keeping only the listed rows, in order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (di, &si) in idx.iter().enumerate() {
            out.row_mut(di).copy_from_slice(self.row(si));
        }
        out
    }

    /// Vertically stacks two matrices with the same column count.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols && !self.is_empty() && !other.is_empty() {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = if self.is_empty() { other.cols } else { self.cols };
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols, data })
    }

    /// Converts to the `f64` representation.
    pub fn to_f64(&self) -> DMatrix {
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v as f64).collect(),
        }
    }
}

/// Dense row-major `f64` matrix used for numerically sensitive work
/// (covariance accumulation, Jacobi rotations, Procrustes).
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a zero-filled matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        DMatrix { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Frobenius norm of the difference to `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn frobenius_distance(&self, other: &DMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// Converts to the `f32` representation.
    pub fn to_f32(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&v| v as f32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_access() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(2, 3), 0.0);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![17.0, 39.0]);
    }

    #[test]
    fn project_row_is_right_multiplication() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        // v * A where v is a row vector.
        let out = a.project_row(&[5.0, 6.0]).unwrap();
        assert_eq!(out, vec![5.0 + 18.0, 10.0 + 24.0]);
    }

    #[test]
    fn select_columns_permutes() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let p = a.select_columns(&[2, 0]);
        assert_eq!(p.row(0), &[3.0, 1.0]);
        assert_eq!(p.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn select_rows_subsets() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let p = a.select_rows(&[2, 2, 0]);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.row(0), &[5.0, 6.0]);
        assert_eq!(p.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn dmatrix_roundtrip_f32() {
        let a = Matrix::from_rows(&[vec![1.5, -2.5], vec![0.0, 4.0]]);
        assert_eq!(a.to_f64().to_f32(), a);
    }

    #[test]
    fn dmatrix_matmul_identity() {
        let a = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn frobenius_distance_zero_for_equal() {
        let a = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.frobenius_distance(&a), 0.0);
        let b = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 5.0]);
        assert!((a.frobenius_distance(&b) - 1.0).abs() < 1e-12);
    }
}
