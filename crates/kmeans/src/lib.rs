//! Dictionary learning for the VAQ reproduction.
//!
//! Every quantizer in the paper — VQ, PQ, OPQ, Bolt, PQFS, and VAQ itself —
//! learns its dictionaries with k-means (paper §II-C: "The cornerstone
//! k-means method satisfies these conditions and is the prevalent choice for
//! dictionary learning"). This crate provides:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding, empty-cluster
//!   repair, and a relative-improvement stopping rule. Assignment (the hot
//!   phase) is sharded across threads with `std::thread::scope`.
//! * [`KMeans::fit_hierarchical`] — the paper's trick for very large
//!   dictionaries (§III-D): "for subspaces with assigned large dictionaries
//!   (> 2^10) we employ k-means in a hierarchical fashion — run k-means with
//!   a small k = 2^6 and split each cluster again to reach the desired
//!   size".
//! * [`kmeans_1d`] — the 1-D specialization VAQ uses to cluster the vector
//!   of per-dimension variances into non-uniform subspaces (§III-B).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use vaq_linalg::{squared_euclidean, Matrix};

/// Errors produced by dictionary learning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansError {
    /// `k` was zero.
    ZeroK,
    /// The dataset was empty.
    EmptyData,
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::ZeroK => write!(f, "k must be at least 1"),
            KMeansError::EmptyData => write!(f, "cannot cluster an empty dataset"),
        }
    }
}

impl std::error::Error for KMeansError {}

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters / dictionary items.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the relative inertia improvement falls below this.
    pub tol: f64,
    /// RNG seed (seeding and empty-cluster repair are the only random parts).
    pub seed: u64,
    /// Number of worker threads for the assignment phase. `0` = use all
    /// available cores.
    pub threads: usize,
}

impl KMeansConfig {
    /// A sensible default for dictionary learning: 25 iterations matches
    /// what FAISS uses for PQ training.
    pub fn new(k: usize) -> Self {
        KMeansConfig { k, max_iters: 25, tol: 1e-5, seed: 0x5eed, threads: 0 }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centroids, one per row. Rows ≤ `k` when the data has fewer
    /// distinct points than requested clusters.
    pub centroids: Matrix,
    /// Cluster index of every input row.
    pub assignments: Vec<u32>,
    /// Final sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations actually performed.
    pub iterations: usize,
    /// Whether the stopping rule was met within the iteration budget.
    /// `false` means the model is the best incumbent when `max_iters` ran
    /// out — still valid, just an anytime result.
    pub converged: bool,
}

impl KMeansModel {
    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Index and squared distance of the nearest centroid to `point`.
    pub fn assign(&self, point: &[f32]) -> (usize, f32) {
        nearest_centroid(&self.centroids, point)
    }
}

/// Index and squared distance of the nearest row of `centroids` to `point`.
#[inline]
pub fn nearest_centroid(centroids: &Matrix, point: &[f32]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter_rows().enumerate() {
        let d = squared_euclidean(c, point);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Lloyd's k-means with k-means++ seeding.
pub struct KMeans;

impl KMeans {
    /// Fits `cfg.k` clusters on the rows of `data`.
    ///
    /// If `data` has fewer rows than `cfg.k`, the model simply contains one
    /// centroid per row (quantization is then lossless), mirroring how PQ
    /// implementations behave on tiny training sets.
    pub fn fit(data: &Matrix, cfg: &KMeansConfig) -> Result<KMeansModel, KMeansError> {
        if cfg.k == 0 {
            return Err(KMeansError::ZeroK);
        }
        if data.rows() == 0 {
            return Err(KMeansError::EmptyData);
        }
        let k = cfg.k.min(data.rows());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut centroids = plus_plus_seed(data, k, &mut rng);
        let mut assignments = vec![0u32; data.rows()];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..cfg.max_iters.max(1) {
            iterations = it + 1;
            let new_inertia = assign_all(data, &centroids, &mut assignments, cfg.threads);
            update_centroids(data, &assignments, &mut centroids, &mut rng);
            let improved = inertia - new_inertia;
            // The first pass has no previous inertia to compare against
            // (`inertia` starts infinite, and `inf <= inf` would otherwise
            // declare convergence immediately).
            let done = (inertia.is_finite()
                && improved.abs() <= cfg.tol * inertia.abs().max(1e-30))
                || new_inertia == 0.0;
            inertia = new_inertia;
            if done {
                converged = true;
                break;
            }
        }
        // Final assignment against the last centroid update. The anytime
        // contract: when the budget runs out first, the incumbent is
        // returned with `converged: false` instead of spinning further.
        inertia = assign_all(data, &centroids, &mut assignments, cfg.threads);
        Ok(KMeansModel { centroids, assignments, inertia, iterations, converged })
    }

    /// Hierarchical k-means for very large dictionaries (paper §III-D).
    ///
    /// Runs a coarse clustering with `branch` centroids, then splits each
    /// coarse cluster with another k-means so the total number of leaves
    /// reaches `k_total`. Trades a little quantization accuracy for a large
    /// training speedup, exactly as the paper describes for dictionaries
    /// larger than 2^10.
    pub fn fit_hierarchical(
        data: &Matrix,
        k_total: usize,
        branch: usize,
        cfg: &KMeansConfig,
    ) -> Result<KMeansModel, KMeansError> {
        if k_total == 0 {
            return Err(KMeansError::ZeroK);
        }
        if data.rows() == 0 {
            return Err(KMeansError::EmptyData);
        }
        let branch = branch.max(2).min(k_total);
        let coarse_cfg = KMeansConfig { k: branch, ..cfg.clone() };
        let coarse = Self::fit(data, &coarse_cfg)?;
        let coarse_k = coarse.k();
        let mut converged = coarse.converged;

        // Distribute the leaf budget proportionally to coarse cluster sizes.
        let mut sizes = vec![0usize; coarse_k];
        for &a in &coarse.assignments {
            sizes[a as usize] += 1;
        }
        let n = data.rows() as f64;
        let mut leaf_budget: Vec<usize> = sizes
            .iter()
            .map(|&s| (((s as f64 / n) * k_total as f64).round() as usize).max(1))
            .collect();
        // Fix rounding drift so the sum is exactly k_total (when feasible).
        loop {
            let total: usize = leaf_budget.iter().sum();
            if total == k_total {
                break;
            }
            if total > k_total {
                if let Some(i) = (0..coarse_k).max_by_key(|&i| leaf_budget[i]) {
                    if leaf_budget[i] > 1 {
                        leaf_budget[i] -= 1;
                        continue;
                    }
                }
                break;
            } else if let Some(i) =
                (0..coarse_k).max_by_key(|&i| sizes[i].saturating_sub(leaf_budget[i]))
            {
                leaf_budget[i] += 1;
            }
        }

        let dim = data.cols();
        let mut all = Matrix::zeros(0, dim);
        for ci in 0..coarse_k {
            let members: Vec<usize> = coarse
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a as usize == ci)
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            let sub = data.select_rows(&members);
            let sub_cfg = KMeansConfig { k: leaf_budget[ci].min(sub.rows()), ..cfg.clone() };
            let model = Self::fit(&sub, &sub_cfg)?;
            converged &= model.converged;
            all = all.vstack(&model.centroids).expect("same dim");
        }

        // Assign against the final flat dictionary.
        let mut assignments = vec![0u32; data.rows()];
        let inertia = assign_all(data, &all, &mut assignments, cfg.threads);
        Ok(KMeansModel { centroids: all, assignments, inertia, iterations: 0, converged })
    }
}

/// k-means++ seeding: first centroid uniform, the rest sampled with
/// probability proportional to the squared distance to the nearest chosen
/// centroid.
fn plus_plus_seed(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = data.rows();
    let dim = data.cols();
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut d2: Vec<f64> =
        (0..n).map(|i| squared_euclidean(data.row(i), centroids.row(0)) as f64).collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for i in 0..n {
            let d = squared_euclidean(data.row(i), centroids.row(c)) as f64;
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Assigns every row to its nearest centroid; returns total inertia.
fn assign_all(data: &Matrix, centroids: &Matrix, out: &mut [u32], threads: usize) -> f64 {
    let n = data.rows();
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n.max(1));

    if workers <= 1 || n < 4096 {
        let mut inertia = 0.0f64;
        for i in 0..n {
            let (a, d) = nearest_centroid(centroids, data.row(i));
            out[i] = a as u32;
            inertia += d as f64;
        }
        return inertia;
    }

    let chunk = n.div_ceil(workers);
    let mut partials = vec![0.0f64; workers];
    std::thread::scope(|scope| {
        let mut rest: &mut [u32] = out;
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let start = w * chunk;
            if start >= n {
                break;
            }
            let len = chunk.min(n - start);
            let (mine, tail) = rest.split_at_mut(len);
            rest = tail;
            handles.push(scope.spawn(move || {
                let mut inertia = 0.0f64;
                for (j, slot) in mine.iter_mut().enumerate() {
                    let (a, d) = nearest_centroid(centroids, data.row(start + j));
                    *slot = a as u32;
                    inertia += d as f64;
                }
                inertia
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            partials[w] = h.join().expect("assignment worker panicked");
        }
    });
    partials.iter().sum()
}

/// Recomputes centroids as cluster means; empty clusters are re-seeded from
/// a random data point (keeps determinism via the shared seeded RNG).
fn update_centroids(data: &Matrix, assignments: &[u32], centroids: &mut Matrix, rng: &mut StdRng) {
    let k = centroids.rows();
    let dim = centroids.cols();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (i, &a) in assignments.iter().enumerate() {
        let a = a as usize;
        counts[a] += 1;
        let row = data.row(i);
        let dst = &mut sums[a * dim..(a + 1) * dim];
        for (s, &v) in dst.iter_mut().zip(row.iter()) {
            *s += v as f64;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            let pick = rng.gen_range(0..data.rows());
            centroids.row_mut(c).copy_from_slice(data.row(pick));
        } else {
            let inv = 1.0 / counts[c] as f64;
            let src = &sums[c * dim..(c + 1) * dim];
            let dst = centroids.row_mut(c);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = (s * inv) as f32;
            }
        }
    }
}

/// 1-D k-means over a plain slice of values.
///
/// VAQ clusters the *vector of per-dimension variances* to form non-uniform
/// subspaces (paper §III-B: "we construct m subspaces by clustering the
/// vector of the variances corresponding to each dimension using k-means").
/// Returns the cluster index of each input value.
pub fn kmeans_1d(values: &[f64], k: usize, seed: u64) -> Result<Vec<u32>, KMeansError> {
    if k == 0 {
        return Err(KMeansError::ZeroK);
    }
    if values.is_empty() {
        return Err(KMeansError::EmptyData);
    }
    let data = Matrix::from_vec(values.len(), 1, values.iter().map(|&v| v as f32).collect());
    let cfg = KMeansConfig { k, max_iters: 100, tol: 1e-9, seed, threads: 1 };
    Ok(KMeans::fit(&data, &cfg)?.assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs() -> (Matrix, Vec<usize>) {
        let centers = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 8.0)];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        let mut s = 7u64;
        for rep in 0..60 {
            let c = rep % 3;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let dx = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let dy = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            rows.push(vec![centers[c].0 + 0.3 * dx, centers[c].1 + 0.3 * dy]);
            truth.push(c);
        }
        (Matrix::from_rows(&rows), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = blobs();
        let model = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        assert_eq!(model.k(), 3);
        // All points with the same true label must share a cluster.
        for c in 0..3 {
            let labels: Vec<u32> = truth
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == c)
                .map(|(i, _)| model.assignments[i])
                .collect();
            assert!(labels.windows(2).all(|w| w[0] == w[1]), "blob {c} split across clusters");
        }
        // Tight blobs → tiny inertia.
        assert!(model.inertia < 60.0 * 0.5);
    }

    #[test]
    fn zero_k_errors() {
        let (data, _) = blobs();
        assert_eq!(KMeans::fit(&data, &KMeansConfig::new(0)).unwrap_err(), KMeansError::ZeroK);
    }

    #[test]
    fn empty_data_errors() {
        let data = Matrix::zeros(0, 4);
        assert_eq!(KMeans::fit(&data, &KMeansConfig::new(2)).unwrap_err(), KMeansError::EmptyData);
    }

    #[test]
    fn k_capped_at_n() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let model = KMeans::fit(&data, &KMeansConfig::new(16)).unwrap();
        assert_eq!(model.k(), 2);
        assert!(model.inertia < 1e-9, "k == n should quantize losslessly");
    }

    #[test]
    fn k_equals_one_gives_mean() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]);
        let model = KMeans::fit(&data, &KMeansConfig::new(1)).unwrap();
        assert!((model.centroids.get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs();
        let a = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(42)).unwrap();
        let b = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(42)).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn anytime_budget_reports_convergence() {
        let (data, _) = blobs();
        // One iteration on three blobs cannot meet the tolerance rule: the
        // incumbent comes back flagged as unconverged but still usable.
        let short = KMeans::fit(&data, &KMeansConfig::new(3).with_max_iters(1)).unwrap();
        assert!(!short.converged, "one Lloyd step should not report convergence");
        assert_eq!(short.assignments.len(), data.rows());
        assert!(short.inertia.is_finite());
        let long = KMeans::fit(&data, &KMeansConfig::new(3).with_max_iters(50)).unwrap();
        assert!(long.converged, "well-separated blobs converge in 50 iterations");
        assert!(long.iterations < 50);
    }

    #[test]
    fn hierarchical_propagates_convergence() {
        let (data, _) = blobs();
        let model = KMeans::fit_hierarchical(&data, 12, 3, &KMeansConfig::new(12)).unwrap();
        assert!(model.converged);
        let rushed = KMeans::fit_hierarchical(
            &data,
            12,
            3,
            &KMeansConfig { max_iters: 1, ..KMeansConfig::new(12) },
        )
        .unwrap();
        // A one-iteration budget anywhere in the tree marks the whole
        // dictionary as an anytime result.
        assert!(!rushed.converged);
    }

    #[test]
    fn more_iterations_never_increase_inertia() {
        let (data, _) = blobs();
        let short = KMeans::fit(&data, &KMeansConfig::new(3).with_max_iters(1)).unwrap();
        let long = KMeans::fit(&data, &KMeansConfig::new(3).with_max_iters(30)).unwrap();
        assert!(long.inertia <= short.inertia + 1e-6);
    }

    #[test]
    fn assign_matches_training_assignment() {
        let (data, _) = blobs();
        let model = KMeans::fit(&data, &KMeansConfig::new(3)).unwrap();
        for i in 0..data.rows() {
            let (a, _) = model.assign(data.row(i));
            assert_eq!(a as u32, model.assignments[i]);
        }
    }

    #[test]
    fn hierarchical_reaches_target_k() {
        let (data, _) = blobs();
        let model = KMeans::fit_hierarchical(&data, 12, 3, &KMeansConfig::new(12)).unwrap();
        assert_eq!(model.k(), 12);
        assert_eq!(model.assignments.len(), data.rows());
    }

    #[test]
    fn hierarchical_inertia_close_to_flat() {
        let (data, _) = blobs();
        let flat = KMeans::fit(&data, &KMeansConfig::new(9)).unwrap();
        let hier = KMeans::fit_hierarchical(&data, 9, 3, &KMeansConfig::new(9)).unwrap();
        // Hierarchical is allowed to be worse, but not catastrophically.
        assert!(hier.inertia <= (flat.inertia + 1e-9) * 10.0 + 1.0);
    }

    #[test]
    fn kmeans_1d_groups_similar_values() {
        let values = vec![0.9, 1.0, 1.1, 5.0, 5.1, 9.8, 10.0, 10.2];
        let labels = kmeans_1d(&values, 3, 1).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[5], labels[6]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn kmeans_1d_rejects_bad_input() {
        assert!(kmeans_1d(&[], 2, 0).is_err());
        assert!(kmeans_1d(&[1.0], 0, 0).is_err());
    }

    #[test]
    fn parallel_assignment_matches_serial() {
        // Enough rows to trigger the threaded path.
        let mut rows = Vec::new();
        let mut s = 3u64;
        for _ in 0..5000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            rows.push(vec![a * 10.0, b * 10.0]);
        }
        let data = Matrix::from_rows(&rows);
        let serial =
            KMeans::fit(&data, &KMeansConfig { threads: 1, ..KMeansConfig::new(4) }).unwrap();
        let parallel =
            KMeans::fit(&data, &KMeansConfig { threads: 4, ..KMeansConfig::new(4) }).unwrap();
        assert_eq!(serial.assignments, parallel.assignments);
        assert!((serial.inertia - parallel.inertia).abs() < 1e-6 * serial.inertia.max(1.0));
    }
}
