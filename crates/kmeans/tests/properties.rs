//! Property tests for dictionary learning.

use proptest::prelude::*;
use vaq_kmeans::{kmeans_1d, nearest_centroid, KMeans, KMeansConfig};
use vaq_linalg::{squared_euclidean, Matrix};

fn random_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..=6, 10usize..=60).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(-50.0f32..50.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn assignments_are_nearest(data in random_matrix(), k in 1usize..8) {
        let model = KMeans::fit(&data, &KMeansConfig::new(k)).unwrap();
        for i in 0..data.rows() {
            let assigned = model.assignments[i] as usize;
            let d_assigned =
                squared_euclidean(data.row(i), model.centroids.row(assigned));
            let (best, d_best) = nearest_centroid(&model.centroids, data.row(i));
            // Both must agree (final assignment pass runs after the last
            // centroid update).
            prop_assert_eq!(assigned, best);
            prop_assert!((d_assigned - d_best).abs() < 1e-5 * d_best.max(1.0));
        }
    }

    #[test]
    fn inertia_equals_sum_of_assigned_distances(data in random_matrix(), k in 1usize..6) {
        let model = KMeans::fit(&data, &KMeansConfig::new(k)).unwrap();
        let recomputed: f64 = (0..data.rows())
            .map(|i| {
                squared_euclidean(
                    data.row(i),
                    model.centroids.row(model.assignments[i] as usize),
                ) as f64
            })
            .sum();
        prop_assert!((model.inertia - recomputed).abs() < 1e-3 * recomputed.max(1.0));
    }

    #[test]
    fn more_clusters_never_increase_inertia_much(data in random_matrix()) {
        let small = KMeans::fit(&data, &KMeansConfig::new(2).with_max_iters(40)).unwrap();
        let large = KMeans::fit(&data, &KMeansConfig::new(6).with_max_iters(40)).unwrap();
        // k-means is a local optimizer, so allow slack — but k=6 collapsing
        // to worse than k=2 would signal a broken update step.
        prop_assert!(large.inertia <= small.inertia * 1.5 + 1e-6);
    }

    #[test]
    fn kmeans_1d_labels_form_contiguous_intervals_on_sorted_input(
        mut values in proptest::collection::vec(0.0f64..100.0, 4..40),
        k in 2usize..5,
    ) {
        prop_assume!(k <= values.len());
        values.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let labels = kmeans_1d(&values, k, 3).unwrap();
        // On descending input, identical labels must be contiguous
        // (nearest-centroid in 1-D induces interval cells).
        let mut seen_after_change = std::collections::HashSet::new();
        let mut prev = labels[0];
        for &l in &labels[1..] {
            if l != prev {
                prop_assert!(
                    seen_after_change.insert(prev),
                    "label {prev} reappeared after a gap: {labels:?}"
                );
                prev = l;
            }
        }
    }
}
