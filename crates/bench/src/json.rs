//! Minimal JSON support for the experiment binaries.
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the
//! harness only needs two operations: pretty-print a result record to
//! `results/*.json`, and read back the archive scores that
//! `fig10_critical_difference` consumes. This module implements exactly
//! that: a [`Json`] value type, a writer, a recursive-descent parser, and
//! a [`ToJson`] conversion trait for the records the binaries emit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (the records we write
/// are small, and stable field order keeps diffs readable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" });
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            let mut seen = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(format!("duplicate object key '{key}'"));
                }
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex =
                                    bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) if b < 0x80 => {
                        s.push(b as char);
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one multi-byte UTF-8 scalar. A window of 4
                        // bytes always covers the longest encoding; a valid
                        // prefix shorter than the window still decodes the
                        // scalar at `pos`.
                        let end = (*pos + 4).min(bytes.len());
                        let window = &bytes[*pos..end];
                        let valid = match std::str::from_utf8(window) {
                            Ok(text) => text,
                            Err(e) => {
                                let (head, _) = window.split_at(e.valid_up_to());
                                std::str::from_utf8(head)
                                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?
                            }
                        };
                        let c = valid
                            .chars()
                            .next()
                            .ok_or_else(|| format!("invalid UTF-8 at byte {pos}"))?;
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') => {
            if bytes[*pos..].starts_with(b"true") {
                *pos += 4;
                Ok(Json::Bool(true))
            } else {
                Err(format!("bad literal at byte {pos}"))
            }
        }
        Some(b'f') => {
            if bytes[*pos..].starts_with(b"false") {
                *pos += 5;
                Ok(Json::Bool(false))
            } else {
                Err(format!("bad literal at byte {pos}"))
            }
        }
        Some(b'n') => {
            if bytes[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(Json::Null)
            } else {
                Err(format!("bad literal at byte {pos}"))
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }
}

/// Conversion into [`Json`] for everything the binaries serialize.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &[T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let value = Json::obj([
            ("name", Json::Str("tab02".into())),
            ("scores", Json::Arr(vec![Json::Num(0.5), Json::Num(1.0), Json::Num(-2.25)])),
            ("nested", Json::obj([("ok", Json::Bool(true)), ("none", Json::Null)])),
        ]);
        let text = value.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let parsed = Json::parse(r#"{"s": "a\"b\nA", "v": [1e3, -0.5, 42]}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "a\"b\nA");
        let v = parsed.get("v").unwrap().as_array().unwrap();
        assert_eq!(v[0].as_f64(), Some(1000.0));
        assert_eq!(v[1].as_f64(), Some(-0.5));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).pretty(), "42");
        assert_eq!(Json::Num(0.5).pretty(), "0.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] junk").is_err());
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
    }
}
