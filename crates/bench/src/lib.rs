//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the VAQ
//! paper (see DESIGN.md §5 for the index). They share:
//!
//! * [`ExpArgs`] — a tiny CLI parser (`--scale`, `--seed`, `--quick`,
//!   `--out`); `--scale` multiplies dataset sizes toward the paper's
//!   scales, `--quick` shrinks everything for smoke tests.
//! * [`MethodResult`] — the serialized record each experiment emits, one
//!   per (method, dataset) cell, written as JSON under `results/`.
//! * [`evaluate`] / [`evaluate_with_truth`] — run a search closure over a
//!   query workload, timing it and scoring Recall/MAP against exact ground
//!   truth.
//! * [`print_table`] — aligned terminal output matching the rows the paper
//!   reports.

#![forbid(unsafe_code)]

pub mod json;

pub use json::{Json, ToJson};

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use vaq_dataset::Dataset;
use vaq_linalg::Matrix;
use vaq_metrics::{map_at_k, recall_at_k};

/// Common experiment arguments parsed from `std::env::args`.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Multiplier on dataset sizes (1.0 = the defaults documented in
    /// DESIGN.md §4; larger values approach the paper's scales).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Shrinks the experiment for CI smoke tests.
    pub quick: bool,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs { scale: 1.0, seed: 7, quick: false, out_dir: PathBuf::from("results") }
    }
}

impl ExpArgs {
    /// Parses `--scale F`, `--seed N`, `--quick`, `--out DIR`.
    pub fn parse() -> Self {
        let mut args = ExpArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale =
                        it.next().and_then(|v| v.parse().ok()).expect("--scale needs a float");
                }
                "--seed" => {
                    args.seed =
                        it.next().and_then(|v| v.parse().ok()).expect("--seed needs an int");
                }
                "--quick" => args.quick = true,
                "--out" => {
                    args.out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        args
    }

    /// Applies scale/quick to a base size.
    pub fn size(&self, base: usize) -> usize {
        let s = if self.quick { 0.1 } else { self.scale };
        ((base as f64 * s).round() as usize).max(32)
    }

    /// Applies scale/quick to a query-count base (floor of 10).
    pub fn queries(&self, base: usize) -> usize {
        let s = if self.quick { 0.2 } else { self.scale.min(4.0) };
        ((base as f64 * s).round() as usize).max(10)
    }
}

/// One (method, dataset) measurement — the cell unit of every table.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label (e.g. `"VAQ"`, `"OPQ-128"`).
    pub method: String,
    /// Dataset label.
    pub dataset: String,
    /// Bit budget actually used per vector.
    pub code_bits: usize,
    /// Recall at the workload's `k`.
    pub recall: f64,
    /// MAP at the workload's `k`.
    pub map: f64,
    /// Total query-phase seconds over the workload.
    pub query_secs: f64,
    /// Training/encoding seconds (0 when not measured).
    pub train_secs: f64,
    /// Free-form parameter description (e.g. `"visit=0.25"`).
    pub params: String,
}

/// Times a search closure over every query row and scores it.
///
/// `search` maps a query slice to ranked neighbor indices.
pub fn evaluate_with_truth(
    mut search: impl FnMut(&[f32]) -> Vec<u32>,
    queries: &Matrix,
    truth: &[Vec<u32>],
    k: usize,
) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let retrieved: Vec<Vec<u32>> = (0..queries.rows()).map(|q| search(queries.row(q))).collect();
    let secs = t0.elapsed().as_secs_f64();
    let recall = recall_at_k(&retrieved, truth, k);
    let map = map_at_k(&retrieved, truth, k);
    (recall, map, secs)
}

/// Computes ground truth then evaluates (convenience for one-off runs).
pub fn evaluate(search: impl FnMut(&[f32]) -> Vec<u32>, ds: &Dataset, k: usize) -> (f64, f64, f64) {
    let truth = vaq_dataset::exact_knn(&ds.data, &ds.queries, k);
    evaluate_with_truth(search, &ds.queries, &truth, k)
}

/// Prints an aligned table: `headers` then `rows` of equal arity.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (c, cell) in cells.iter().enumerate().take(cols) {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[c]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

impl ToJson for MethodResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("method", self.method.to_json()),
            ("dataset", self.dataset.to_json()),
            ("code_bits", self.code_bits.to_json()),
            ("recall", self.recall.to_json()),
            ("map", self.map.to_json()),
            ("query_secs", self.query_secs.to_json()),
            ("train_secs", self.train_secs.to_json()),
            ("params", self.params.to_json()),
        ])
    }
}

/// Writes results as pretty JSON under the output directory. The failed
/// path is carried in the error so callers (the figure binaries) can
/// report it without guessing.
pub fn write_json<T: ToJson>(out_dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    let json = value.to_json().pretty();
    f.write_all(json.as_bytes())?;
    println!("\n[results written to {}]", path.display());
    Ok(())
}

/// Formats seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}s", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_scaling() {
        let a = ExpArgs { scale: 2.0, ..ExpArgs::default() };
        assert_eq!(a.size(100), 200);
        let q = ExpArgs { quick: true, ..ExpArgs::default() };
        assert_eq!(q.size(1000), 100);
        assert_eq!(q.size(10), 32, "floor respected");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.05).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }

    #[test]
    fn evaluate_scores_perfect_searcher() {
        let ds = vaq_dataset::SyntheticSpec::deep_like().generate(100, 5, 1);
        let data = ds.data.clone();
        let (recall, map, secs) =
            evaluate(move |q| vaq_dataset::ground_truth::exact_knn_single(&data, q, 10), &ds, 10);
        assert_eq!(recall, 1.0);
        assert_eq!(map, 1.0);
        assert!(secs >= 0.0);
    }
}
