//! **Figure 4** — comparing the subspace-importance strategies of VAQ, PQ,
//! and OPQ when only a prefix of the subspaces is used to answer queries
//! (CBF and SLC, 32 subspaces, all methods in PCA space as in the OPQ
//! paper).
//!
//! Method-faithful setup: all three methods quantize the PCA-projected
//! data; PQ gets a *random* permutation of PCs (it is importance-agnostic),
//! OPQ permutes by eigenvalue allocation, VAQ keeps its variance ordering
//! with partial balancing + adaptive bits. Queries are then answered using
//! only the first `j` subspaces of each method's own ordering.
//!
//! Paper shape to reproduce: when omitting subspaces, VAQ degrades most
//! gracefully (its prefix carries the most variance), substantially
//! beating PQ and OPQ at small `j`.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig04_subspace_importance`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_bench::{print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::exact_knn;
use vaq_dataset::ucr::UcrFamily;
use vaq_linalg::{Matrix, Pca, TableArena};
use vaq_metrics::recall_at_k;

const SEGMENTS: usize = 32;
const BUDGET: usize = 128; // 4 bits/subspace uniform for PQ/OPQ

/// Scans PQ codes using only the first `j` lookup tables.
fn prefix_search(pq: &Pq, arena: &mut TableArena, query: &[f32], k: usize, j: usize) -> Vec<u32> {
    pq.fill_tables(query, arena);
    let offsets = arena.offsets();
    let flat = arena.as_slice();
    let mut best: Vec<(f32, u32)> = Vec::with_capacity(pq.len());
    for i in 0..pq.len() {
        let code = pq.code(i);
        let d: f32 =
            code[..j].iter().enumerate().map(|(s, &c)| flat[offsets[s] + c as usize]).sum();
        best.push((d, i as u32));
    }
    best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    best.into_iter().take(k).map(|(_, i)| i).collect()
}

/// Scans VAQ codes using only the first `j` subspaces.
fn vaq_prefix_search(
    vaq: &Vaq,
    arena: &mut TableArena,
    query: &[f32],
    k: usize,
    j: usize,
) -> Vec<u32> {
    if j >= vaq.bits().len() {
        return vaq
            .search_with(query, k, SearchStrategy::FullScan)
            .expect("search")
            .0
            .iter()
            .map(|n| n.index)
            .collect();
    }
    let projected = vaq.project_query(query).expect("project");
    vaq.encoder().fill_tables(&projected, arena);
    let offsets = arena.offsets();
    let flat = arena.as_slice();
    let mut best: Vec<(f32, u32)> = Vec::with_capacity(vaq.len());
    for i in 0..vaq.len() {
        let code = vaq.code(i);
        let d: f32 =
            code[..j].iter().enumerate().map(|(s, &c)| flat[offsets[s] + c as usize]).sum();
        best.push((d, i as u32));
    }
    best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    best.into_iter().take(k).map(|(_, i)| i).collect()
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(1500);
    let nq = args.queries(50);
    let k = 10;
    println!("Figure 4: recall@{k} vs number of subspaces used ({SEGMENTS} subspaces total)\n");

    let mut results: Vec<MethodResult> = Vec::new();
    for (family, len) in [(UcrFamily::Cbf, 128usize), (UcrFamily::SlcLike, 1024)] {
        let ds = family.generate(len, n, nq, args.seed);
        let truth = exact_knn(&ds.data, &ds.queries, k);
        println!("== {} ==", ds.name);

        // Shared PCA projection (as in the OPQ paper's comparison).
        let pca = Pca::fit(&ds.data).expect("pca");
        let z = pca.transform(&ds.data).expect("project");
        let zq = pca.transform(&ds.queries).expect("project");

        // PQ: random PC permutation (importance-agnostic).
        let mut perm: Vec<usize> = (0..z.cols()).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(args.seed ^ 0xABC));
        let z_rand = z.select_columns(&perm);
        let zq_rand = zq.select_columns(&perm);
        let pq = Pq::train(&z_rand, &PqConfig::new(SEGMENTS).with_bits(BUDGET / SEGMENTS)).unwrap();

        // OPQ: eigenvalue-allocation permutation (balanced importance).
        let opq_perm =
            vaq_baselines::opq::eigenvalue_allocation(pca.eigenvalues(), SEGMENTS, z.cols());
        let z_opq = z.select_columns(&opq_perm);
        let zq_opq = zq.select_columns(&opq_perm);
        let opq = Pq::train(&z_opq, &PqConfig::new(SEGMENTS).with_bits(BUDGET / SEGMENTS)).unwrap();

        // VAQ: variance ordering + partial balance + adaptive bits.
        let vaq = Vaq::train(
            &ds.data,
            &VaqConfig::new(BUDGET, SEGMENTS).with_seed(args.seed).with_ti_clusters(0),
        )
        .unwrap();

        // One arena per method, refilled in place across every query and
        // prefix length (the layouts are identical, so no reallocation).
        let mut pq_arena = TableArena::new();
        let mut opq_arena = TableArena::new();
        let mut vaq_arena = TableArena::new();
        let mut rows = Vec::new();
        for j in [4usize, 8, 16, 32] {
            let run_pq = |codes: &Pq, arena: &mut TableArena, queries: &Matrix| -> f64 {
                let retrieved: Vec<Vec<u32>> = (0..queries.rows())
                    .map(|q| prefix_search(codes, arena, queries.row(q), k, j))
                    .collect();
                recall_at_k(&retrieved, &truth, k)
            };
            let r_pq = run_pq(&pq, &mut pq_arena, &zq_rand);
            let r_opq = run_pq(&opq, &mut opq_arena, &zq_opq);
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| vaq_prefix_search(&vaq, &mut vaq_arena, ds.queries.row(q), k, j))
                .collect();
            let r_vaq = recall_at_k(&retrieved, &truth, k);

            rows.push(vec![
                format!("{j}"),
                format!("{:.4}", r_pq),
                format!("{:.4}", r_opq),
                format!("{:.4}", r_vaq),
            ]);
            for (method, recall) in [("PQ", r_pq), ("OPQ", r_opq), ("VAQ", r_vaq)] {
                results.push(MethodResult {
                    method: method.into(),
                    dataset: ds.name.clone(),
                    code_bits: BUDGET,
                    recall,
                    map: 0.0,
                    query_secs: 0.0,
                    train_secs: 0.0,
                    params: format!("subspaces_used={j}"),
                });
            }
        }
        print_table(&["subspaces used", "PQ", "OPQ", "VAQ"], &rows);
        println!();
    }
    write_json(&args.out_dir, "fig04_subspace_importance.json", &results).expect("write results");
}
