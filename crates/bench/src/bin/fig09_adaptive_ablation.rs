//! **Figure 9** — the design-choice ablation on SIFT: uniform vs
//! clustered (non-uniform) subspaces × uniform vs adaptive bit
//! allocation, over budgets {256, 128} and segment counts {64, 32, 16}
//! (§V-C).
//!
//! Paper shape to reproduce: clustered subspaces alone do *not* help (and
//! often hurt); adaptive allocation lifts recall substantially for both
//! subspace modes — "adaptive bit allocation should always be used".
//!
//! Run: `cargo run -p vaq-bench --release --bin fig09_adaptive_ablation`

use vaq_bench::{evaluate_with_truth, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(20_000);
    let nq = args.queries(100);
    let k = 100;
    println!("Figure 9: subspace-mode × allocation ablation on SIFT-like (n = {n})\n");

    let ds = SyntheticSpec::sift_like().generate(n, nq, args.seed);
    let truth = exact_knn(&ds.data, &ds.queries, k);

    let mut rows = Vec::new();
    let mut results: Vec<MethodResult> = Vec::new();
    for budget in [256usize, 128] {
        for m in [64usize, 32, 16] {
            if m > ds.dim() / 2 || budget > m * 13 {
                continue;
            }
            let mut row = vec![format!("{budget}"), format!("{m}")];
            for (label, clustered, adaptive) in [
                ("uni/uni", false, false),
                ("clu/uni", true, false),
                ("uni/ada", false, true),
                ("clu/ada", true, true),
            ] {
                let mut cfg = VaqConfig::new(budget, m).with_seed(args.seed).with_ti_clusters(0);
                if clustered {
                    cfg = cfg.clustered();
                }
                if !adaptive {
                    cfg = cfg.uniform_allocation();
                }
                let recall = match Vaq::train(&ds.data, &cfg) {
                    Ok(vaq) => {
                        let r = evaluate_with_truth(
                            |q| {
                                vaq.search_with(q, k, SearchStrategy::FullScan)
                                    .expect("search")
                                    .0
                                    .iter()
                                    .map(|x| x.index)
                                    .collect()
                            },
                            &ds.queries,
                            &truth,
                            k,
                        );
                        results.push(MethodResult {
                            method: format!("VAQ-{label}"),
                            dataset: ds.name.clone(),
                            code_bits: budget,
                            recall: r.0,
                            map: r.1,
                            query_secs: r.2,
                            train_secs: 0.0,
                            params: format!("budget={budget} m={m}"),
                        });
                        format!("{:.4}", r.0)
                    }
                    Err(e) => format!("err({e})"),
                };
                row.push(recall);
            }
            rows.push(row);
        }
    }
    print_table(
        &[
            "budget",
            "segments",
            "uniform/uniform",
            "clustered/uniform",
            "uniform/adaptive",
            "clustered/adaptive",
        ],
        &rows,
    );

    // Shape check: adaptive ≥ uniform for each (budget, m, subspace-mode).
    let find = |method: &str, params: &str| {
        results.iter().find(|x| x.method == method && x.params == params).map(|x| x.recall)
    };
    let mut adaptive_wins = 0;
    let mut total = 0;
    let params_set: std::collections::BTreeSet<String> =
        results.iter().map(|r| r.params.clone()).collect();
    for p in &params_set {
        for mode in ["uni", "clu"] {
            if let (Some(uni), Some(ada)) =
                (find(&format!("VAQ-{mode}/uni"), p), find(&format!("VAQ-{mode}/ada"), p))
            {
                total += 1;
                if ada >= uni - 0.005 {
                    adaptive_wins += 1;
                }
            }
        }
    }
    println!("\nShape check: adaptive ≥ uniform in {adaptive_wins}/{total} configurations");
    write_json(&args.out_dir, "fig09_adaptive_ablation.json", &results).expect("write results");
}
