//! **Extension experiment** — the index the paper's conclusion calls for:
//! IVF over VAQ primitives (`VaqIvf`) against flat VAQ (TI+EA) and HNSW
//! over PQ codes, on the SIFT-like workload.
//!
//! Question to answer (paper §V-E closing remark: "an index that leverages
//! the primitives of VAQ could potentially outperform HNSW"): does a
//! learned coarse quantizer over the projected space beat both VAQ's own
//! sampled TI partitioning and the graph index at equal accuracy, and at
//! what preprocessing cost?
//!
//! Run: `cargo run -p vaq-bench --release --bin extension_vaq_ivf`

use vaq_baselines::pq::{Pq, PqConfig};
use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig, VaqIvf, VaqIvfConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(30_000);
    let nq = args.queries(50);
    let k = 100;
    const BUDGET: usize = 128;
    const SEGMENTS: usize = 16;
    println!("Extension: IVF-over-VAQ vs flat VAQ vs HNSW+PQ (n = {n})\n");

    let ds = SyntheticSpec::sift_like().generate(n, nq, args.seed);
    let truth = exact_knn(&ds.data, &ds.queries, k);
    let mut rows = Vec::new();
    let mut results: Vec<MethodResult> = Vec::new();

    // Flat VAQ with TI+EA.
    let t = std::time::Instant::now();
    let vaq = Vaq::train(
        &ds.data,
        &VaqConfig::new(BUDGET, SEGMENTS)
            .with_seed(args.seed)
            .with_ti_clusters((n / 100).clamp(64, 1000)),
    )
    .unwrap();
    let vaq_train = t.elapsed().as_secs_f64();
    for frac in [0.1f64, 0.25] {
        let r = evaluate_with_truth(
            |q| {
                vaq.search_with(q, k, SearchStrategy::TiEa { visit_frac: frac })
                    .expect("search")
                    .0
                    .iter()
                    .map(|x| x.index)
                    .collect()
            },
            &ds.queries,
            &truth,
            k,
        );
        rows.push(vec![
            "VAQ (TI+EA)".into(),
            format!("visit={frac}"),
            format!("{:.4}", r.0),
            fmt_secs(r.2),
            fmt_secs(vaq_train),
        ]);
        results.push(MethodResult {
            method: "VAQ-TIEA".into(),
            dataset: ds.name.clone(),
            code_bits: BUDGET,
            recall: r.0,
            map: r.1,
            query_secs: r.2,
            train_secs: vaq_train,
            params: format!("visit={frac}"),
        });
    }

    // IVF over VAQ.
    let t = std::time::Instant::now();
    let cells = ((n as f64).sqrt() as usize).clamp(32, 2048);
    let mut ivf_cfg = VaqIvfConfig::new(BUDGET, SEGMENTS, cells);
    ivf_cfg.vaq = ivf_cfg.vaq.with_seed(args.seed);
    let ivf = VaqIvf::train(&ds.data, &ivf_cfg).unwrap();
    let ivf_train = t.elapsed().as_secs_f64();
    for nprobe in [cells / 40 + 1, cells / 10 + 1, cells / 4 + 1] {
        let r = evaluate_with_truth(
            |q| {
                ivf.search_nprobe(q, k, nprobe).expect("search").0.iter().map(|x| x.index).collect()
            },
            &ds.queries,
            &truth,
            k,
        );
        rows.push(vec![
            "VAQ-IVF".into(),
            format!("nprobe={nprobe}/{cells}"),
            format!("{:.4}", r.0),
            fmt_secs(r.2),
            fmt_secs(ivf_train),
        ]);
        results.push(MethodResult {
            method: "VAQ-IVF".into(),
            dataset: ds.name.clone(),
            code_bits: BUDGET,
            recall: r.0,
            map: r.1,
            query_secs: r.2,
            train_secs: ivf_train,
            params: format!("nprobe={nprobe}"),
        });
    }

    // HNSW over PQ codes (the Figure 12 rival).
    let t = std::time::Instant::now();
    let pq = Pq::train(&ds.data, &PqConfig::new(SEGMENTS).with_bits(BUDGET / SEGMENTS)).unwrap();
    let store = vaq_index::hnsw::PqStore::from_pq(&pq);
    let hnsw = vaq_index::hnsw::Hnsw::build(
        store,
        &vaq_index::hnsw::HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 32,
            seed: args.seed,
        },
    )
    .unwrap();
    let hnsw_train = t.elapsed().as_secs_f64();
    for efs in [32usize, 128] {
        let r = evaluate_with_truth(
            |q| hnsw.search_ef(q, k, efs).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        rows.push(vec![
            "HNSW+PQ".into(),
            format!("efS={efs}"),
            format!("{:.4}", r.0),
            fmt_secs(r.2),
            fmt_secs(hnsw_train),
        ]);
        results.push(MethodResult {
            method: "HNSW+PQ".into(),
            dataset: ds.name.clone(),
            code_bits: BUDGET,
            recall: r.0,
            map: r.1,
            query_secs: r.2,
            train_secs: hnsw_train,
            params: format!("efS={efs}"),
        });
    }

    print_table(&["method", "config", "recall@100", "query time", "build time"], &rows);
    write_json(&args.out_dir, "extension_vaq_ivf.json", &results).expect("write results");
}
