//! **Table I** — the paper's qualitative analysis of quantization methods
//! on four critical specifications *measured* rather than asserted:
//! storage overhead, encoding overhead, query-runtime speedup, and
//! recall/accuracy improvement, all relative to the state of the art
//! (OPQ).
//!
//! Marks follow the paper's thresholds: a ✓ for storage/encoding means
//! *minimal or no* overhead versus OPQ; a ✓ for speedup/accuracy means a
//! measurable improvement. The paper's claim to check: **VAQ is the only
//! row with four ✓** (PQ lacks speedup and accuracy; Bolt/PQFS lack
//! accuracy; IMI+OPQ pays storage/encoding and loses accuracy; ITQ-LSH
//! lacks accuracy).
//!
//! Run: `cargo run -p vaq-bench --release --bin tab01_specs`

use vaq_baselines::bolt::{Bolt, BoltConfig};
use vaq_baselines::itq::{ItqConfig, ItqLsh};
use vaq_baselines::opq::{Opq, OpqConfig};
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_baselines::pqfs::{PqFastScan, PqfsConfig};
use vaq_baselines::AnnIndex;
use vaq_bench::{evaluate_with_truth, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};
use vaq_index::imi::{Imi, ImiConfig};

struct Spec {
    method: String,
    storage_overhead: f64, // extra bytes / code bytes
    encode_secs: f64,
    query_secs: f64,
    map: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(20_000);
    let nq = args.queries(60);
    let k = 100;
    const BUDGET: usize = 256;
    const SEGMENTS: usize = 32;
    println!("Table I (measured): specifications vs OPQ (n = {n}, {BUDGET}-bit budget)\n");

    let ds = SyntheticSpec::sift_like().generate(n, nq, args.seed);
    let truth = exact_knn(&ds.data, &ds.queries, k);
    let code_bytes = (n * BUDGET) as f64 / 8.0;
    let mut specs: Vec<Spec> = Vec::new();

    let mut measure =
        |method: &str,
         storage_extra_bytes: f64,
         train: Box<dyn FnOnce() -> Box<dyn Fn(&[f32]) -> Vec<u32>>>| {
            let t0 = std::time::Instant::now();
            let search = train();
            let encode_secs = t0.elapsed().as_secs_f64();
            let (_, map, query_secs) = evaluate_with_truth(|q| search(q), &ds.queries, &truth, k);
            specs.push(Spec {
                method: method.into(),
                storage_overhead: storage_extra_bytes / code_bytes,
                encode_secs,
                query_secs,
                map,
            });
        };

    let data = &ds.data;
    let seed = args.seed;
    measure(
        "OPQ",
        0.0,
        Box::new(move || {
            let opq = Opq::train(data, &OpqConfig::new(SEGMENTS).with_seed(seed)).unwrap();
            Box::new(move |q| opq.search(q, k).iter().map(|x| x.index).collect())
        }),
    );
    measure(
        "PQ",
        0.0,
        Box::new(move || {
            let pq = Pq::train(data, &PqConfig::new(SEGMENTS).with_seed(seed)).unwrap();
            Box::new(move |q| pq.search(q, k).iter().map(|x| x.index).collect())
        }),
    );
    measure(
        "Bolt",
        0.0,
        Box::new(move || {
            let bolt = Bolt::train(data, &BoltConfig::new(BUDGET / 4).with_seed(seed)).unwrap();
            Box::new(move |q| bolt.search(q, k).iter().map(|x| x.index).collect())
        }),
    );
    measure(
        "PQFS",
        (n * 4) as f64, // scan-order permutation (u32 per vector)
        Box::new(move || {
            let pqfs =
                PqFastScan::train(data, &PqfsConfig::new(BUDGET / 8).with_seed(seed)).unwrap();
            Box::new(move |q| pqfs.search(q, k).iter().map(|x| x.index).collect())
        }),
    );
    measure(
        "ITQ-LSH",
        0.0,
        Box::new(move || {
            let itq = ItqLsh::train(data, &ItqConfig::new(BUDGET).with_seed(seed)).unwrap();
            Box::new(move |q| itq.search(q, k).iter().map(|x| x.index).collect())
        }),
    );
    // IMI: inverted lists store every id (u32) + 2 coarse codebooks.
    let imi_extra = (n * 4) as f64 + (2 * (1 << 6) * (ds.dim() / 2) * 4) as f64;
    measure(
        "IMI+OPQ",
        imi_extra,
        Box::new(move || {
            let mut cfg = ImiConfig::new(SEGMENTS);
            cfg.candidates = n / 20;
            cfg.seed = seed;
            let imi = Imi::build(data, &cfg).unwrap();
            Box::new(move |q| imi.search(q, k).iter().map(|x| x.index).collect())
        }),
    );
    // VAQ: TI structure = sampled centroid rows (prefix dims) + the cached
    // code→centroid distance (f32) per vector. Cluster membership is the
    // storage *order* (the paper re-orders the encoded data within each
    // cluster), so ids are not extra — the same accounting used for PQFS's
    // scan permutation above.
    let ti_clusters = (n / 100).clamp(16, 1000);
    let vaq_extra = (n * 4) as f64 + (ti_clusters * 32 * 4) as f64;
    measure(
        "VAQ",
        vaq_extra,
        Box::new(move || {
            let vaq = Vaq::train(
                data,
                &VaqConfig::new(BUDGET, SEGMENTS).with_seed(seed).with_ti_clusters(ti_clusters),
            )
            .unwrap();
            Box::new(move |q| vaq.search(q, k).expect("search").iter().map(|x| x.index).collect())
        }),
    );

    let opq = &specs[0];
    let (opq_encode, opq_query, opq_map) = (opq.encode_secs, opq.query_secs, opq.map);
    let mark = |b: bool| if b { "✓" } else { "–" }.to_string();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for s in specs.iter().skip(1) {
        // Thresholds: ≤25% extra storage, ≤2× OPQ encode time, faster
        // queries than the OPQ scan, better MAP than OPQ.
        let storage_ok = s.storage_overhead <= 0.25;
        let encode_ok = s.encode_secs <= opq_encode * 2.0;
        let speedup = s.query_secs < opq_query * 0.9;
        let accuracy = s.map > opq_map + 0.002;
        rows.push(vec![
            s.method.clone(),
            format!("{} ({:.0}%)", mark(storage_ok), s.storage_overhead * 100.0),
            format!("{} ({:.1}× OPQ)", mark(encode_ok), s.encode_secs / opq_encode),
            format!("{} ({:.1}× OPQ)", mark(speedup), opq_query / s.query_secs),
            format!("{} (ΔMAP {:+.3})", mark(accuracy), s.map - opq_map),
        ]);
        results.push(MethodResult {
            method: s.method.clone(),
            dataset: ds.name.clone(),
            code_bits: BUDGET,
            recall: 0.0,
            map: s.map,
            query_secs: s.query_secs,
            train_secs: s.encode_secs,
            params: format!("storage_overhead={:.3}", s.storage_overhead),
        });
    }
    print_table(
        &[
            "Method",
            "Min storage overhead",
            "Min encoding overhead",
            "Query speedup",
            "Recall/Accuracy gain",
        ],
        &rows,
    );
    println!(
        "\n(reference OPQ: encode {:.2}s, query {:.1}ms, MAP {:.4})",
        opq_encode,
        opq_query * 1e3,
        opq_map
    );
    let vaq_row = rows.last().unwrap();
    let four_checks = vaq_row.iter().skip(1).all(|c| c.starts_with('✓'));
    println!(
        "Shape check: VAQ matches all four specifications: {}",
        if four_checks { "yes (paper Table I)" } else { "NO" }
    );
    write_json(&args.out_dir, "tab01_specs.json", &results).expect("write results");
}
