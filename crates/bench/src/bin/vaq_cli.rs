//! `vaq_cli` — build, persist, and query VAQ indexes from the command
//! line, over the standard vector-file formats (fvecs/bvecs/CSV). This is
//! the path for running the reproduction on the paper's *real* datasets
//! when you have them (SIFT1B/DEEP1B downloads, UCR archive exports).
//!
//! ```sh
//! # Train a 128-bit index over 16 subspaces on SIFT learn vectors:
//! vaq_cli train --data sift_learn.fvecs --budget 128 --segments 16 --out sift.vaq
//!
//! # Answer queries, 10 neighbors each:
//! vaq_cli search --index sift.vaq --queries sift_query.fvecs --k 10
//!
//! # Score against ground truth (ivecs) and report Recall/MAP + timing:
//! vaq_cli eval --index sift.vaq --queries sift_query.fvecs \
//!              --truth sift_groundtruth.ivecs --k 100
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vaq_core::{Audit, IngressPolicy, SearchStrategy, SegmentPolicy, SegmentedVaq, Vaq, VaqConfig};
use vaq_dataset::io::{read_bvecs, read_csv, read_fvecs, read_ivecs};
use vaq_linalg::Matrix;
use vaq_metrics::{map_at_k, recall_at_k};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `audit` also accepts a bare index path: `vaq_cli audit index.vaq`.
    let mut rest: Vec<String> = args[1..].to_vec();
    if cmd == "audit" && rest.len() == 1 && !rest[0].starts_with("--") {
        rest = vec!["--index".to_string(), rest.remove(0)];
    }
    let opts = match parse_opts(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&opts),
        "search" => cmd_search(&opts),
        "eval" => cmd_eval(&opts),
        "info" => cmd_info(&opts),
        "audit" => cmd_audit(&opts),
        "chaos" => cmd_chaos(&opts),
        "crash" => cmd_crash(&opts),
        "bench" => cmd_bench(&opts),
        "kernels" => cmd_kernels(&opts),
        // Internal: the query-phase child of `bench --out-of-core`.
        "ooc-query" => cmd_ooc_query(&opts),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "vaq_cli — Variance-Aware Quantization indexes on vector files

USAGE:
  vaq_cli train  --data FILE --out INDEX [--budget 128] [--segments 16]
                 [--limit N] [--ti-clusters 1000] [--seed 7] [--clustered]
  vaq_cli search --index INDEX --queries FILE [--k 10] [--visit 0.25] [--limit N]
  vaq_cli eval   --index INDEX --queries FILE --truth FILE.ivecs [--k 100]
                 [--visit 0.25] [--limit N]
  vaq_cli info   --index INDEX
  vaq_cli audit  INDEX            (or --index INDEX)
  vaq_cli kernels                 (report SIMD tier support + the active scan kernel)
  vaq_cli chaos  [--seed-range 0..32] [--p 0.3] [--n 400] [--dim 16]
  vaq_cli crash  [--durability] [--seed 7] [--n 96] [--dim 12] [--k 8]
  vaq_cli bench  [--n 100000] [--dim 64] [--queries 16] [--k 10]
                 [--budget 48] [--segments 8] [--seed 7] [--reps 3]
                 [--train-limit 20000] [--out results] [--profile]
                 [--concurrent [--seal 8192] [--batch 1024] [--readers 2]]
                 [--out-of-core [--block 65536] [--seal 500000]
                  [--visit 0.25] [--rss-budget-mb 0]]

Vector FILEs may be .fvecs, .bvecs, or .csv (one vector per line).
`audit` re-checks the index's structural invariants (bit budget C1–C4,
importance monotonicity, code ranges, TI partition order) and exits
non-zero listing each VAQ1xx diagnostic on failure.
`chaos` runs the full train → save → load → query pipeline on synthetic
data with every registered fault site armed under a seeded probabilistic
schedule, asserting each run ends in a clean result or a typed error —
never a panic, a failed audit, or a silently wrong answer. The same
schedule then drives a segmented index across seal, tombstone-purge, and
merge boundaries (sites `segment.seal` / `segment.compact`), checking
that failed maintenance degrades without losing rows, resurfacing
deleted rows, or corrupting query answers.
`crash` is the deterministic crash-point recovery harness: a counting
pass enumerates every IO point a scripted durable workload touches
(sites `persist.wal_append` / `persist.commit` / `persist.fsync`), then
one run per point kills the workload there with a simulated power loss
(`Trigger::CrashPoint` — all later IO is abandoned), powers back up,
and requires `open_durable` to recover exactly the acknowledged
pre-crash state: same live ids, same query answers, clean audit, and a
working journal afterwards. A typed recovery error is accepted only
when the index never became durable before the cut. Zero panics, zero
divergences, or the command exits non-zero listing every violated
point. `--durability` names the (only) suite explicitly for CI logs.
`bench` times the quantized SIMD ADC scan against the f32 full scan and
early-abandon scan on synthetic data (results must match exactly,
sequentially and batched), over two bit budgets — the default mixed-width
plan and an all-nibble 4-bit plan — plus a per-tier kernel
micro-benchmark, and writes results/BENCH_adc_scan_v2.json. The run
fails if early-abandon is slower than the full scan it prunes. Set
VAQ_FORCE_KERNEL=scalar|ssse3|avx2|avx512|neon (or VAQ_FORCE_SCALAR=1)
to measure the end-to-end engine numbers on a pinned kernel tier.
`bench --concurrent` instead benchmarks the segmented index: a writer
ingests the dataset tail in batches (sealing and compacting in the
background) while reader threads keep answering queries from lock-free
snapshots; the drained index is then timed again. Writes
results/BENCH_segments.json, including how many queries completed while
ingest was running.
`bench --out-of-core` is the mapped-extent acceptance run: the dataset
is streamed to an fvecs file block by block, dictionaries fit from a
block-sampled subset, the whole file is ingested blockwise, and the
index is persisted in the page-aligned VAQ4 layout. The in-RAM index is
then dropped, the peak-RSS watermark reset, and every query answered
from the memory-mapped reopen — answers must be byte-identical to the
in-RAM index. With --rss-budget-mb N > 0 the run fails unless the index
file exceeds N MiB while the query-phase peak RSS stays under it.
Writes results/BENCH_out_of_core.json.
`bench --profile` additionally turns on the obs subsystem: per-stage
training spans, query-phase spans, per-query latency histograms, and
kernel timings are printed after the run and exported to
results/OBS_bench.prom (Prometheus text) and results/OBS_bench.json.
Set VAQ_THREADS=N to pin the worker count of every threaded site.";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{a}`"));
        };
        // Boolean flags.
        if key == "clustered"
            || key == "profile"
            || key == "concurrent"
            || key == "durability"
            || key == "out-of-core"
        {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), val.clone());
    }
    Ok(opts)
}

fn get<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(|s| s.as_str()).ok_or_else(|| format!("missing required --{key}"))
}

fn get_or<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

/// Loads vectors from fvecs/bvecs/csv, dispatching on extension.
fn load_vectors(path: &Path, limit: Option<usize>) -> Result<Matrix, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let loaded = match ext {
        "fvecs" => read_fvecs(path, limit),
        "bvecs" => read_bvecs(path, limit),
        "csv" | "tsv" | "txt" => read_csv(path, false).map(|(m, _)| match limit {
            Some(l) if l < m.rows() => m.select_rows(&(0..l).collect::<Vec<_>>()),
            _ => m,
        }),
        other => return Err(format!("unsupported vector format `.{other}`")),
    };
    loaded.map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let data_path = PathBuf::from(get(opts, "data")?);
    let out = PathBuf::from(get(opts, "out")?);
    let budget: usize = get_or(opts, "budget", 128)?;
    let segments: usize = get_or(opts, "segments", 16)?;
    let limit: usize = get_or(opts, "limit", 0)?;
    let ti_clusters: usize = get_or(opts, "ti-clusters", 1000)?;
    let seed: u64 = get_or(opts, "seed", 7)?;

    let data = load_vectors(&data_path, if limit > 0 { Some(limit) } else { None })?;
    println!("loaded {} vectors × {} dims from {}", data.rows(), data.cols(), data_path.display());

    let mut cfg = VaqConfig::new(budget, segments)
        .with_seed(seed)
        .with_ti_clusters(ti_clusters.min(data.rows()));
    if opts.contains_key("clustered") {
        cfg = cfg.clustered();
    }
    let t0 = std::time::Instant::now();
    let vaq = Vaq::train(&data, &cfg).map_err(|e| e.to_string())?;
    println!("trained in {:.1}s — bit allocation {:?}", t0.elapsed().as_secs_f64(), vaq.bits());
    vaq.save(&out).map_err(|e| e.to_string())?;
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("index written to {} ({:.1} MiB)", out.display(), size as f64 / (1 << 20) as f64);
    Ok(())
}

fn load_index(opts: &Opts) -> Result<Vaq, String> {
    let path = PathBuf::from(get(opts, "index")?);
    Vaq::load(&path).map_err(|e| e.to_string())
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    let vaq = load_index(opts)?;
    let queries_path = PathBuf::from(get(opts, "queries")?);
    let k: usize = get_or(opts, "k", 10)?;
    let visit: f64 = get_or(opts, "visit", 0.25)?;
    let limit: usize = get_or(opts, "limit", 0)?;
    let queries = load_vectors(&queries_path, if limit > 0 { Some(limit) } else { None })?;

    let t0 = std::time::Instant::now();
    for q in 0..queries.rows() {
        let hits = vaq
            .search_with(queries.row(q), k, SearchStrategy::TiEa { visit_frac: visit })
            .expect("search")
            .0;
        let ids: Vec<String> =
            hits.iter().map(|h| format!("{}:{:.4}", h.index, h.distance)).collect();
        println!("query {q}: {}", ids.join(" "));
    }
    eprintln!("{} queries in {:.1} ms", queries.rows(), t0.elapsed().as_secs_f64() * 1e3);
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let vaq = load_index(opts)?;
    let queries_path = PathBuf::from(get(opts, "queries")?);
    let truth_path = PathBuf::from(get(opts, "truth")?);
    let k: usize = get_or(opts, "k", 100)?;
    let visit: f64 = get_or(opts, "visit", 0.25)?;
    let limit: usize = get_or(opts, "limit", 0)?;
    let queries = load_vectors(&queries_path, if limit > 0 { Some(limit) } else { None })?;
    let truth = read_ivecs(&truth_path, Some(queries.rows()))
        .map_err(|e| format!("{}: {e}", truth_path.display()))?;
    if truth.len() < queries.rows() {
        return Err(format!(
            "ground truth has {} rows for {} queries",
            truth.len(),
            queries.rows()
        ));
    }

    let t0 = std::time::Instant::now();
    let retrieved: Vec<Vec<u32>> = (0..queries.rows())
        .map(|q| {
            vaq.search_with(queries.row(q), k, SearchStrategy::TiEa { visit_frac: visit })
                .expect("search")
                .0
                .iter()
                .map(|h| h.index)
                .collect()
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    println!("recall@{k} = {:.4}", recall_at_k(&retrieved, &truth[..queries.rows()], k));
    println!("MAP@{k}    = {:.4}", map_at_k(&retrieved, &truth[..queries.rows()], k));
    println!(
        "query time = {:.2} ms total, {:.3} ms/query",
        secs * 1e3,
        secs * 1e3 / queries.rows() as f64
    );
    Ok(())
}

fn cmd_audit(opts: &Opts) -> Result<(), String> {
    let path = PathBuf::from(get(opts, "index")?);
    let vaq = Vaq::load(&path).map_err(|e| e.to_string())?;
    println!(
        "auditing {} — {} vectors, {} subspaces, {} code bits",
        path.display(),
        vaq.len(),
        vaq.bits().len(),
        vaq.code_bits()
    );
    let report = vaq.audit();
    if report.is_ok() {
        println!("audit clean: all structural invariants hold");
        return Ok(());
    }
    for issue in report.issues() {
        eprintln!("{issue}");
    }
    Err(format!("{} invariant violation(s) found", report.issues().len()))
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let vaq = load_index(opts)?;
    println!("vectors:        {}", vaq.len());
    println!("code bits:      {} ({} bytes/vector)", vaq.code_bits(), vaq.code_bits().div_ceil(8));
    println!("subspaces:      {}", vaq.bits().len());
    println!("bit allocation: {:?}", vaq.bits());
    let shares: Vec<String> =
        vaq.layout().variance_share.iter().map(|v| format!("{:.3}", v)).collect();
    println!("variance share: [{}]", shares.join(", "));
    match vaq.ti() {
        Some(ti) => println!(
            "TI partition:   {} clusters over the first {} subspaces",
            ti.num_clusters(),
            ti.prefix_subspaces()
        ),
        None => println!("TI partition:   none (EA-only queries)"),
    }
    Ok(())
}

/// Parses `LO..HI` (half-open) into a range of chaos seeds.
fn parse_seed_range(s: &str) -> Result<std::ops::Range<u64>, String> {
    let (lo, hi) = s.split_once("..").ok_or_else(|| format!("--seed-range `{s}`: want LO..HI"))?;
    let lo: u64 = lo.trim().parse().map_err(|_| format!("--seed-range: bad start `{lo}`"))?;
    let hi: u64 = hi.trim().parse().map_err(|_| format!("--seed-range: bad end `{hi}`"))?;
    if lo >= hi {
        return Err(format!("--seed-range `{s}` is empty"));
    }
    Ok(lo..hi)
}

/// Deterministic synthetic training data with a mildly skewed variance
/// spectrum; seeds 3 mod 4 additionally plant non-finite values so the
/// ingress path is exercised too.
fn chaos_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(d);
        for j in 0..d {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            row.push(v * 3.0 / (1.0 + j as f32 * 0.4));
        }
        if seed % 4 == 3 && i % 97 == 13 {
            row[i % d] = if i % 2 == 0 { f32::NAN } else { f32::INFINITY };
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

/// One chaos iteration: train → serialize → deserialize → query, with all
/// fault sites armed. Returns `Ok(true)` when the pipeline produced a
/// queryable index, `Ok(false)` when it ended in a typed error, and `Err`
/// on any contract violation (wrong answer, failed audit).
fn chaos_run(seed: u64, p: f64, n: usize, d: usize) -> Result<bool, String> {
    use vaq_core::faults::{arm, Trigger, SITES};

    for site in SITES {
        arm(site, Trigger::Probability { p, seed });
    }
    let data = chaos_data(n, d, seed);
    let ingress =
        if seed.is_multiple_of(2) { IngressPolicy::Reject } else { IngressPolicy::Sanitize };
    let cfg =
        VaqConfig::new(32, 4).with_seed(seed).with_ti_clusters(16.min(n)).with_ingress(ingress);

    let trained = match Vaq::train(&data, &cfg) {
        Ok(v) => v,
        // A typed error is an accepted outcome; the site that tripped is
        // in the message.
        Err(e) => return Ok(drop_err(e)),
    };
    let report = trained.audit();
    if !report.is_ok() {
        return Err(format!("trained index failed audit: {}", report.issues().len()));
    }

    let bytes = trained.to_bytes();
    let loaded = match Vaq::from_bytes(&bytes) {
        Ok(v) => v,
        Err(e) => return Ok(drop_err(e)),
    };
    let report = loaded.audit();
    if !report.is_ok() {
        return Err(format!("loaded index failed audit: {}", report.issues().len()));
    }

    // Querying may never fail — only degrade. Full-visit TiEa is exact, so
    // whatever path it takes (TI, audited-out TI, injected bypass) must
    // agree with the FullScan reference on the same engine state.
    for qi in (0..n).step_by((n / 8).max(1)) {
        let q: Vec<f32> =
            data.row(qi).iter().map(|v| if v.is_finite() { *v } else { 0.0 }).collect();
        let full = loaded.search_with(&q, 5, SearchStrategy::FullScan).expect("search").0;
        let tiea =
            loaded.search_with(&q, 5, SearchStrategy::TiEa { visit_frac: 1.0 }).expect("search").0;
        let f: Vec<u32> = full.iter().map(|h| h.index).collect();
        let t: Vec<u32> = tiea.iter().map(|h| h.index).collect();
        if f != t {
            return Err(format!(
                "seed {seed} query {qi}: TiEa {t:?} disagrees with FullScan {f:?}"
            ));
        }
    }

    // Segmented phase: the same armed schedule now crosses seal,
    // tombstone-purge, and merge boundaries (`segment.seal` /
    // `segment.compact` fire under the probabilistic trigger). Failed
    // maintenance must degrade — buffer retained, input segments kept —
    // while queries stay exact and tombstoned rows stay dead.
    let seg = SegmentedVaq::from_vaq(
        loaded,
        SegmentPolicy::default()
            .with_seal_threshold(24)
            .with_compact_min_segments(2)
            .with_tombstone_purge_frac(0.3)
            .with_ti_clusters(8)
            .sequential(),
    );
    // `SegmentedVaq::add` trusts its input like `Vaq::add` does, so feed
    // it the sanitized view of the chaos rows.
    let sanitized = |i: usize| -> Vec<f32> {
        data.row(i).iter().map(|v| if v.is_finite() { *v } else { 0.0 }).collect()
    };
    let mut s2 = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    let mut deleted: Vec<u32> = Vec::new();
    for round in 0..5usize {
        // Three 13-row batches per round: every round crosses the 24-row
        // seal threshold, so maintenance triggers mid-schedule.
        for b in 0..3usize {
            let rows: Vec<Vec<f32>> =
                (0..13).map(|r| sanitized((round * 39 + b * 13 + r) % n)).collect();
            let ids = match seg.add(&Matrix::from_rows(&rows)) {
                Ok(ids) => ids,
                Err(e) => return Ok(drop_err(e)),
            };
            s2 = s2.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let victim = ids[(s2 >> 33) as usize % ids.len()];
            if seg.delete(victim) {
                deleted.push(victim);
            }
        }
        let q = sanitized((round * 17) % n);
        let full = match seg.search_with(&q, 5, SearchStrategy::FullScan) {
            Ok(r) => r.0,
            Err(e) => return Ok(drop_err(e)),
        };
        let tiea = match seg.search_with(&q, 5, SearchStrategy::TiEa { visit_frac: 1.0 }) {
            Ok(r) => r.0,
            Err(e) => return Ok(drop_err(e)),
        };
        if full.iter().map(|h| h.index).ne(tiea.iter().map(|h| h.index)) {
            return Err(format!(
                "seed {seed} round {round}: segmented TiEa disagrees with FullScan"
            ));
        }
        if full.iter().any(|h| deleted.contains(&h.index)) {
            return Err(format!("seed {seed} round {round}: query surfaced a tombstoned id"));
        }
    }
    // Out-of-core phase: persist the page-aligned extent layout and
    // reopen it memory-mapped under the same armed schedule. An armed
    // `persist.mmap` degrades the open to the owned read path; either
    // way the answers must match the in-RAM index exactly.
    let v4 = std::env::temp_dir().join(format!("vaq-chaos-{}-{seed}.vaq4", std::process::id()));
    match seg.save_mapped(&v4) {
        Err(e) => {
            let _ = std::fs::remove_file(&v4);
            return Ok(drop_err(e));
        }
        Ok(()) => match SegmentedVaq::open_mapped(&v4) {
            Err(e) => {
                let _ = std::fs::remove_file(&v4);
                return Ok(drop_err(e));
            }
            Ok(mapped) => {
                for round in 0..3usize {
                    let q = sanitized((round * 23) % n);
                    let want = match seg.search_with(&q, 5, SearchStrategy::FullScan) {
                        Ok(r) => r.0,
                        Err(e) => {
                            let _ = std::fs::remove_file(&v4);
                            return Ok(drop_err(e));
                        }
                    };
                    let got = match mapped.search_with(&q, 5, SearchStrategy::FullScan) {
                        Ok(r) => r.0,
                        Err(e) => {
                            let _ = std::fs::remove_file(&v4);
                            return Ok(drop_err(e));
                        }
                    };
                    if want != got {
                        let _ = std::fs::remove_file(&v4);
                        return Err(format!(
                            "seed {seed}: mapped reopen disagrees with the in-RAM index"
                        ));
                    }
                    if got.iter().any(|h| deleted.contains(&h.index)) {
                        let _ = std::fs::remove_file(&v4);
                        return Err(format!("seed {seed}: mapped reopen surfaced a tombstoned id"));
                    }
                }
            }
        },
    }
    let _ = std::fs::remove_file(&v4);

    // Quiesce deterministically before the final audit: a failed seal
    // legitimately leaves the buffer over threshold until the next
    // trigger retries it, which the VAQ111 quiescence check would flag.
    vaq_core::faults::disarm_all();
    seg.flush();
    let report = seg.audit();
    if !report.is_ok() {
        return Err(format!(
            "seed {seed}: segmented index failed audit after quiesce: {}",
            report.issues().len()
        ));
    }
    Ok(true)
}

/// Accepts any typed `VaqError` (returning `false` = "degraded to error");
/// the type system already guarantees it is not a panic.
fn drop_err(_e: vaq_core::VaqError) -> bool {
    false
}

/// Times one search strategy over the query set, returning seconds per
/// query and the summed per-query work counters.
fn time_strategy(
    vaq: &Vaq,
    queries: &Matrix,
    k: usize,
    reps: usize,
    strategy: SearchStrategy,
) -> (f64, vaq_core::SearchStats) {
    // Warm caches (and the lazily quantized tables) outside the clock.
    for qi in 0..queries.rows().min(4) {
        let _ = vaq.search_with(queries.row(qi), k, strategy);
    }
    let mut stats = vaq_core::SearchStats::default();
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        for qi in 0..queries.rows() {
            stats += vaq.search_with(queries.row(qi), k, strategy).expect("search").1;
        }
    }
    (t0.elapsed().as_secs_f64() / (reps * queries.rows()) as f64, stats)
}

/// Times the batched quantized path (table-transposed multi-query tiles)
/// over the whole query set, seconds per query.
fn time_batched(
    vaq: &Vaq,
    queries: &Matrix,
    k: usize,
    reps: usize,
) -> (f64, vaq_core::SearchStats) {
    let _ = vaq.search_batch(queries, k, SearchStrategy::Quantized).expect("search"); // warm
    let mut stats = vaq_core::SearchStats::default();
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        stats += vaq.search_batch(queries, k, SearchStrategy::Quantized).expect("search").1;
    }
    (t0.elapsed().as_secs_f64() / (reps * queries.rows()) as f64, stats)
}

/// `kernels`: one line per SIMD tier with its support status on this CPU,
/// plus the kernel the dispatcher actually picked (after VAQ_FORCE_KERNEL
/// / VAQ_FORCE_SCALAR overrides) — CI matrices print this to keep forced
/// runs honest about what they measured.
fn cmd_kernels(_opts: &Opts) -> Result<(), String> {
    use vaq_linalg::{active_kernel, kernel_supported, ScanKernel};
    for kern in ScanKernel::ALL {
        println!(
            "{:>6}: {}",
            kern.name(),
            if kernel_supported(kern) { "supported" } else { "not supported" }
        );
    }
    println!("active: {}", active_kernel().name());
    Ok(())
}

/// One fully-benched bit-budget configuration of the ADC scan.
struct ConfigReport {
    /// Batched quantized end-to-end throughput, Mvec/s.
    batched_mvps: f64,
    json: vaq_bench::Json,
}

/// Trains one bit budget over `ds`, proves parity (full scan == quantized
/// == batched), times every strategy plus the batched tile path, gates on
/// the early-abandon perf regression, and micro-benches every SIMD tier
/// this CPU supports over a synthetic packed database shaped like the
/// trained plan.
#[allow(clippy::too_many_arguments)]
fn bench_adc_config(
    label: &str,
    ds: &vaq_dataset::Dataset,
    k: usize,
    budget: usize,
    segments: usize,
    seed: u64,
    reps: usize,
    train_limit: usize,
    uniform: bool,
) -> Result<ConfigReport, String> {
    use vaq_bench::Json;
    use vaq_linalg::{
        accumulate_qsums_with, active_kernel, kernel_supported, PackedCodes, PackedRow,
        QuantizedTables, ScanKernel, TableArena,
    };

    let n = ds.data.rows();
    let nq = ds.queries.rows();
    // Paper-style setup: learn dictionaries on a training sample, then
    // encode the full collection — the bench measures scan speed, not
    // dictionary learning. `uniform` pins the allocation to budget/m bits
    // everywhere (4 each for the nibble config, so every packed row is a
    // two-codes-per-byte pair) instead of the variance-aware split.
    let mut cfg = VaqConfig::new(budget, segments).with_seed(seed).with_ti_clusters(0);
    if uniform {
        cfg = cfg.uniform_allocation();
    }
    let train_rows = train_limit.min(n);
    let t0 = std::time::Instant::now();
    let mut vaq = {
        let sample = ds.data.select_rows(&(0..train_rows).collect::<Vec<_>>());
        Vaq::train(&sample, &cfg).map_err(|e| e.to_string())?
    };
    if train_rows < n {
        let rest = ds.data.select_rows(&(train_rows..n).collect::<Vec<_>>());
        vaq.add(&rest).map_err(|e| e.to_string())?;
    }
    let train_secs = t0.elapsed().as_secs_f64();
    let kernel = active_kernel();
    println!(
        "[{label}] trained in {train_secs:.1}s — bit allocation {:?}, scan kernel {}",
        vaq.bits(),
        kernel.name()
    );

    // The quantized scan is a pruning accelerator, not an approximation:
    // its results must be byte-identical to the exact f32 full scan, and
    // the batched tile path must reproduce the sequential path exactly.
    let mut sequential = Vec::with_capacity(nq);
    for qi in 0..nq {
        let q = ds.queries.row(qi);
        let full = vaq.search_with(q, k, SearchStrategy::FullScan).expect("search").0;
        let quant = vaq.search_with(q, k, SearchStrategy::Quantized).expect("search").0;
        if full != quant {
            return Err(format!(
                "[{label}] quantized results diverge from the full scan on query {qi}"
            ));
        }
        sequential.push(quant);
    }
    let (batched, _) =
        vaq.search_batch(&ds.queries, k, SearchStrategy::Quantized).map_err(|e| e.to_string())?;
    if batched != sequential {
        return Err(format!("[{label}] batched quantized diverges from the sequential path"));
    }
    println!("[{label}] parity: quantized == full scan == batched on all {nq} queries");

    let (full_spq, _) = time_strategy(&vaq, &ds.queries, k, reps, SearchStrategy::FullScan);
    let (ea_spq, _) = time_strategy(&vaq, &ds.queries, k, reps, SearchStrategy::EarlyAbandon);
    let (qz_spq, qz_stats) = time_strategy(&vaq, &ds.queries, k, reps, SearchStrategy::Quantized);
    let (batch_spq, _) = time_batched(&vaq, &ds.queries, k, reps);
    // Regression gate for the early-abandon perf bug: abandoning work
    // must never cost more than doing all of it (5% timer noise allowed).
    if ea_spq > full_spq * 1.05 {
        return Err(format!(
            "[{label}] early-abandon regression: {:.3} ms/q vs full scan {:.3} ms/q — \
             abandoning work must not be slower than doing it",
            ea_spq * 1e3,
            full_spq * 1e3
        ));
    }
    let prune_rate = qz_stats.quantized_pruned as f64 / qz_stats.vectors_visited.max(1) as f64;
    let mvps = |spq: f64| n as f64 / spq / 1e6;
    println!(
        "[{label}] engine: full {:.3} ms/q ({:.0} Mvec/s), early-abandon {:.3} ms/q \
         ({:.0} Mvec/s), quantized {:.3} ms/q ({:.0} Mvec/s), batched quantized {:.3} ms/q \
         ({:.0} Mvec/s) — {:.0}% pruned",
        full_spq * 1e3,
        mvps(full_spq),
        ea_spq * 1e3,
        mvps(ea_spq),
        qz_spq * 1e3,
        mvps(qz_spq),
        batch_spq * 1e3,
        mvps(batch_spq),
        prune_rate * 100.0
    );

    // Kernel micro-benchmark: raw qsum accumulation throughput over a
    // synthetic packed database shaped like the trained plan, once per
    // SIMD tier this CPU can run.
    let sizes: Vec<usize> = vaq.bits().iter().map(|&b| 1usize << b).collect();
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut codes = Vec::with_capacity(n * sizes.len());
    for _ in 0..n {
        for &size in &sizes {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            codes.push(((s >> 33) as usize % size) as u16);
        }
    }
    let packed = PackedCodes::pack(&codes, &sizes, n);
    let mut tiers: Vec<Json> = Vec::new();
    let mut pair_rows = 0usize;
    if packed.is_active() {
        pair_rows =
            packed.packed_rows().iter().filter(|r| matches!(r, PackedRow::Pair { .. })).count();
        let mut arena = TableArena::with_layout(&sizes);
        arena.fill_with(|_, t| {
            for v in t.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = (s >> 40) as f32 / (1u32 << 22) as f32;
            }
        });
        let mut qt = QuantizedTables::default();
        qt.quantize(&arena, &packed);
        let mut qsums = Vec::new();
        let mut scalar_ml = 0.0;
        for kern in ScanKernel::ALL {
            if !kernel_supported(kern) {
                continue;
            }
            accumulate_qsums_with(kern, &packed, &qt, &mut qsums); // warmup
            let micro_reps = reps * 10;
            let t0 = std::time::Instant::now();
            for _ in 0..micro_reps {
                accumulate_qsums_with(kern, &packed, &qt, &mut qsums);
            }
            let secs = t0.elapsed().as_secs_f64();
            let mlookups = (n * packed.num_subspaces() * micro_reps) as f64 / secs / 1e6;
            let gvecs = (n * micro_reps) as f64 / secs / 1e9;
            let vs_scalar = if scalar_ml > 0.0 { mlookups / scalar_ml } else { 1.0 };
            if kern == ScanKernel::Scalar {
                scalar_ml = mlookups;
            }
            println!(
                "[{label}] kernel {:>6}: {mlookups:.0} M lookups/s, {gvecs:.2} Gvec/s \
                 ({vs_scalar:.1}× scalar)",
                kern.name()
            );
            tiers.push(Json::obj([
                ("kernel", Json::Str(kern.name().to_string())),
                ("mlookups_per_sec", Json::Num(mlookups)),
                ("gvectors_per_sec", Json::Num(gvecs)),
                ("speedup_vs_scalar", Json::Num(vs_scalar)),
            ]));
        }
    } else {
        println!("[{label}] kernel: plan not packable; micro-bench skipped");
    }

    let json = Json::obj([
        ("label", Json::Str(label.to_string())),
        ("budget_bits", Json::Num(budget as f64)),
        ("bit_allocation", Json::Arr(vaq.bits().iter().map(|&b| Json::Num(b as f64)).collect())),
        ("train_secs", Json::Num(train_secs)),
        ("packed_subspaces", Json::Num(packed.num_subspaces() as f64)),
        ("packed_rows", Json::Num(packed.num_rows() as f64)),
        ("nibble_pair_rows", Json::Num(pair_rows as f64)),
        (
            "engine",
            Json::obj([
                ("full_scan_ms_per_query", Json::Num(full_spq * 1e3)),
                ("full_scan_mvectors_per_sec", Json::Num(mvps(full_spq))),
                ("early_abandon_ms_per_query", Json::Num(ea_spq * 1e3)),
                ("early_abandon_mvectors_per_sec", Json::Num(mvps(ea_spq))),
                ("quantized_ms_per_query", Json::Num(qz_spq * 1e3)),
                ("quantized_mvectors_per_sec", Json::Num(mvps(qz_spq))),
                ("batched_quantized_ms_per_query", Json::Num(batch_spq * 1e3)),
                ("batched_quantized_mvectors_per_sec", Json::Num(mvps(batch_spq))),
                ("quantized_speedup_vs_full_scan", Json::Num(full_spq / qz_spq)),
                ("batched_speedup_vs_full_scan", Json::Num(full_spq / batch_spq)),
                ("quantized_prune_rate", Json::Num(prune_rate)),
            ]),
        ),
        ("kernel_micro", Json::Arr(tiers)),
    ]);
    Ok(ConfigReport { batched_mvps: mvps(batch_spq), json })
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    if opts.contains_key("concurrent") {
        return cmd_bench_segments(opts);
    }
    if opts.contains_key("out-of-core") {
        return cmd_bench_out_of_core(opts);
    }
    use vaq_bench::Json;
    use vaq_dataset::SyntheticSpec;
    use vaq_linalg::active_kernel;

    let n: usize = get_or(opts, "n", 100_000)?;
    let dim: usize = get_or(opts, "dim", 64)?;
    let nq: usize = get_or(opts, "queries", 16)?;
    let k: usize = get_or(opts, "k", 10)?;
    let budget: usize = get_or(opts, "budget", 48)?;
    let segments: usize = get_or(opts, "segments", 8)?;
    let seed: u64 = get_or(opts, "seed", 7)?;
    let reps: usize = get_or(opts, "reps", 3)?;
    let train_limit: usize = get_or(opts, "train-limit", 20_000)?;
    let out_dir = PathBuf::from(get_or(opts, "out", "results".to_string())?);
    if n == 0 || nq == 0 || reps == 0 || train_limit == 0 {
        return Err("--n, --queries, --reps, and --train-limit must be positive".into());
    }
    let profile = opts.contains_key("profile");
    if profile {
        vaq_core::obs::set_enabled(true);
        vaq_core::obs::install_kernel_timing();
        vaq_core::obs::reset();
    }

    let spec = SyntheticSpec { dim, ..SyntheticSpec::sift_like() };
    let ds = spec.generate(n, nq, seed);
    println!("data: {n} × {dim} synthetic ({}), {nq} queries", spec.name);

    // Two bit budgets, benched identically: the default mixed-width plan
    // (wide subspaces plus a few nibble pairs) and an all-nibble plan
    // (4 bits per subspace, so every packed row carries two codes per
    // byte) — the Quick-ADC shape the in-register shuffle kernels hit
    // their throughput ceiling on.
    let primary =
        bench_adc_config("mixed", &ds, k, budget, segments, seed, reps, train_limit, false)?;
    let nibble =
        bench_adc_config("nibble4", &ds, k, 4 * segments, segments, seed, reps, train_limit, true)?;

    // The v1 bench (BENCH_adc_scan.json) stays committed as the frozen
    // baseline; when present, report the end-to-end speedup against its
    // single-query quantized path.
    let v1_qz = std::fs::read_to_string(out_dir.join("BENCH_adc_scan.json"))
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|j| j.get("engine")?.get("quantized_mvectors_per_sec")?.as_f64());
    let best_mvps = primary.batched_mvps.max(nibble.batched_mvps);
    let mut top = vec![
        ("bench".to_string(), Json::Str("adc_scan_v2".to_string())),
        ("n".to_string(), Json::Num(n as f64)),
        ("dim".to_string(), Json::Num(dim as f64)),
        ("queries".to_string(), Json::Num(nq as f64)),
        ("k".to_string(), Json::Num(k as f64)),
        ("reps".to_string(), Json::Num(reps as f64)),
        ("active_kernel".to_string(), Json::Str(active_kernel().name().to_string())),
        ("best_batched_quantized_mvectors_per_sec".to_string(), Json::Num(best_mvps)),
    ];
    if let Some(v1) = v1_qz {
        println!(
            "end-to-end: best batched quantized {best_mvps:.0} Mvec/s — {:.1}× the v1 \
             single-query path ({v1:.0} Mvec/s)",
            best_mvps / v1
        );
        top.push(("v1_quantized_mvectors_per_sec".to_string(), Json::Num(v1)));
        top.push(("end_to_end_speedup_vs_v1".to_string(), Json::Num(best_mvps / v1)));
    }
    top.push(("configs".to_string(), Json::Arr(vec![primary.json, nibble.json])));
    let json = Json::Obj(top);
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let path = out_dir.join("BENCH_adc_scan_v2.json");
    std::fs::write(&path, json.pretty()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("results written to {}", path.display());

    if profile {
        let snap = vaq_core::obs::snapshot();
        print_profile(&snap);
        let prom_path = out_dir.join("OBS_bench.prom");
        std::fs::write(&prom_path, snap.to_prometheus())
            .map_err(|e| format!("{}: {e}", prom_path.display()))?;
        let json_path = out_dir.join("OBS_bench.json");
        std::fs::write(&json_path, snap.to_json())
            .map_err(|e| format!("{}: {e}", json_path.display()))?;
        println!("profile written to {} and {}", prom_path.display(), json_path.display());
    }
    Ok(())
}

/// `bench --concurrent`: concurrent ingest + query benchmark for the
/// segmented index (acceptance criterion of ISSUE 6: queries must keep
/// completing while ingest is running). One writer adds the dataset tail
/// in batches — sealing and compacting on the background maintenance
/// thread — while reader threads answer queries from lock-free snapshots
/// the whole time. The drained, fully sealed index is then timed on the
/// same query set, and everything lands in results/BENCH_segments.json.
fn cmd_bench_segments(opts: &Opts) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use vaq_bench::Json;
    use vaq_dataset::SyntheticSpec;

    let n: usize = get_or(opts, "n", 100_000)?;
    let dim: usize = get_or(opts, "dim", 64)?;
    let nq: usize = get_or(opts, "queries", 16)?;
    let k: usize = get_or(opts, "k", 10)?;
    let budget: usize = get_or(opts, "budget", 48)?;
    let segments: usize = get_or(opts, "segments", 8)?;
    let seed: u64 = get_or(opts, "seed", 7)?;
    let reps: usize = get_or(opts, "reps", 3)?;
    let train_limit: usize = get_or(opts, "train-limit", 20_000)?;
    let seal: usize = get_or(opts, "seal", 8192)?;
    let batch_rows: usize = get_or(opts, "batch", 1024)?;
    let readers: usize = get_or(opts, "readers", 2)?;
    let out_dir = PathBuf::from(get_or(opts, "out", "results".to_string())?);
    if n == 0 || nq == 0 || reps == 0 || train_limit == 0 || batch_rows == 0 || readers == 0 {
        return Err(
            "--n, --queries, --reps, --train-limit, --batch, and --readers must be positive".into(),
        );
    }

    let spec = SyntheticSpec { dim, ..SyntheticSpec::sift_like() };
    let ds = spec.generate(n, nq, seed);
    let train_rows = train_limit.min(n);
    println!(
        "data: {n} × {dim} synthetic ({}), {nq} queries; training on {train_rows} rows, \
         ingesting {} concurrently",
        spec.name,
        n - train_rows
    );

    let cfg = VaqConfig::new(budget, segments).with_seed(seed).with_ti_clusters(0);
    let t0 = std::time::Instant::now();
    let vaq = {
        let sample = ds.data.select_rows(&(0..train_rows).collect::<Vec<_>>());
        Vaq::train(&sample, &cfg).map_err(|e| e.to_string())?
    };
    let train_secs = t0.elapsed().as_secs_f64();
    println!("trained in {train_secs:.1}s — bit allocation {:?}", vaq.bits());

    // Count maintenance events over the whole run.
    vaq_core::obs::set_enabled(true);
    let _ = vaq_core::obs::take_events();

    let policy = SegmentPolicy::default().with_seal_threshold(seal);
    let index = SegmentedVaq::from_vaq(vaq, policy);

    // Concurrent phase: one writer, `readers` query threads.
    let done = AtomicBool::new(false);
    let mut ingest_err: Option<String> = None;
    let mut ingest_secs = 0.0f64;
    let mut reader_stats: Vec<(u64, f64)> = Vec::new(); // (queries, secs on the clock)
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let index = &index;
                let done = &done;
                let queries = &ds.queries;
                scope.spawn(move || {
                    let mut searcher = index.searcher();
                    let mut count = 0u64;
                    let t0 = std::time::Instant::now();
                    loop {
                        for qi in 0..queries.rows() {
                            match searcher.search_with(
                                queries.row(qi),
                                k,
                                SearchStrategy::Quantized,
                            ) {
                                Ok(_) => count += 1,
                                Err(e) => return Err(e.to_string()),
                            }
                        }
                        if done.load(Ordering::Acquire) {
                            return Ok((count, t0.elapsed().as_secs_f64()));
                        }
                    }
                })
            })
            .collect();

        let t0 = std::time::Instant::now();
        for lo in (train_rows..n).step_by(batch_rows) {
            let hi = (lo + batch_rows).min(n);
            let batch = ds.data.select_rows(&(lo..hi).collect::<Vec<_>>());
            if let Err(e) = index.add(&batch) {
                ingest_err = Some(e.to_string());
                break;
            }
        }
        ingest_secs = t0.elapsed().as_secs_f64();
        done.store(true, Ordering::Release);
        for h in handles {
            match h.join() {
                Ok(Ok(stat)) => reader_stats.push(stat),
                Ok(Err(e)) => ingest_err = Some(format!("reader failed: {e}")),
                Err(_) => ingest_err = Some("reader panicked".into()),
            }
        }
    });
    if let Some(e) = ingest_err {
        return Err(e);
    }
    index.flush();

    let during_total: u64 = reader_stats.iter().map(|&(c, _)| c).sum();
    let during_qps: f64 =
        reader_stats.iter().map(|&(c, secs)| c as f64 / secs.max(1e-9)).sum::<f64>();
    let ingested = n - train_rows;
    println!(
        "ingest: {ingested} rows in {ingest_secs:.2}s ({:.0} krows/s) with {readers} readers \
         running — {during_total} queries completed during ingest ({during_qps:.0} q/s)",
        ingested as f64 / ingest_secs.max(1e-9) / 1e3,
    );
    if during_total == 0 {
        return Err("no query completed while ingest was running".into());
    }

    // Exactness spot-check on the drained index, then steady-state timing.
    for qi in 0..ds.queries.rows().min(4) {
        let q = ds.queries.row(qi);
        let full = index.search_with(q, k, SearchStrategy::FullScan).map_err(|e| e.to_string())?;
        let tiea = index
            .search_with(q, k, SearchStrategy::TiEa { visit_frac: 1.0 })
            .map_err(|e| e.to_string())?;
        let f: Vec<u32> = full.0.iter().map(|h| h.index).collect();
        let t: Vec<u32> = tiea.0.iter().map(|h| h.index).collect();
        if f != t {
            return Err(format!("post-ingest parity failure on query {qi}: {t:?} vs {f:?}"));
        }
    }
    let mut searcher = index.searcher();
    for qi in 0..ds.queries.rows().min(4) {
        let _ = searcher.search_with(ds.queries.row(qi), k, SearchStrategy::Quantized);
    }
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        for qi in 0..ds.queries.rows() {
            searcher
                .search_with(ds.queries.row(qi), k, SearchStrategy::Quantized)
                .map_err(|e| e.to_string())?;
        }
    }
    let sealed_spq = t0.elapsed().as_secs_f64() / (reps * nq) as f64;

    let events = vaq_core::obs::take_events();
    let count_kind = |kind: &str| events.iter().filter(|e| e.kind == kind).count() as f64;
    let set = index.snapshot();
    println!(
        "drained: {} segments, {} live rows; steady-state {:.3} ms/q; \
         {} seals, {} merges, {} purges",
        set.num_segments(),
        set.live_len(),
        sealed_spq * 1e3,
        count_kind("segment.seal"),
        count_kind("segment.compact"),
        count_kind("segment.tombstone_purge"),
    );

    let json = Json::obj([
        ("bench", Json::Str("segmented_ingest".to_string())),
        ("n", Json::Num(n as f64)),
        ("dim", Json::Num(dim as f64)),
        ("queries", Json::Num(nq as f64)),
        ("k", Json::Num(k as f64)),
        ("train_rows", Json::Num(train_rows as f64)),
        ("seal_threshold", Json::Num(seal as f64)),
        ("batch_rows", Json::Num(batch_rows as f64)),
        ("readers", Json::Num(readers as f64)),
        ("train_secs", Json::Num(train_secs)),
        (
            "ingest",
            Json::obj([
                ("rows", Json::Num(ingested as f64)),
                ("secs", Json::Num(ingest_secs)),
                ("krows_per_sec", Json::Num(ingested as f64 / ingest_secs.max(1e-9) / 1e3)),
            ]),
        ),
        (
            "queries_during_ingest",
            Json::obj([
                ("total", Json::Num(during_total as f64)),
                ("queries_per_sec", Json::Num(during_qps)),
            ]),
        ),
        ("steady_state_ms_per_query", Json::Num(sealed_spq * 1e3)),
        (
            "maintenance",
            Json::obj([
                ("seals", Json::Num(count_kind("segment.seal"))),
                ("compactions", Json::Num(count_kind("segment.compact"))),
                ("tombstone_purges", Json::Num(count_kind("segment.tombstone_purge"))),
            ]),
        ),
        (
            "final",
            Json::obj([
                ("segments", Json::Num(set.num_segments() as f64)),
                ("live_rows", Json::Num(set.live_len() as f64)),
            ]),
        ),
    ]);
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let path = out_dir.join("BENCH_segments.json");
    std::fs::write(&path, json.pretty()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("results written to {}", path.display());
    Ok(())
}

/// Peak resident set size (VmHWM) in KiB, from `/proc/self/status`.
/// Returns `None` off Linux — the RSS budget then degrades to advisory.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// `ooc-query`: the internal child half of `bench --out-of-core`. Opens
/// the mapped index, answers the query set, checks every answer
/// byte-for-byte against the recorded in-RAM reference, and reports its
/// own whole-process peak RSS — a clean measurement of the mapped
/// serving footprint, because this process never built anything.
fn cmd_ooc_query(opts: &Opts) -> Result<(), String> {
    let index_path = PathBuf::from(get(opts, "index")?);
    let queries_path = PathBuf::from(get(opts, "queries")?);
    let want_path = PathBuf::from(get(opts, "want")?);
    let k: usize = get_or(opts, "k", 10)?;
    let visit: f64 = get_or(opts, "visit", 0.25)?;
    let quant_probes: usize = get_or(opts, "quant-probes", 8)?;

    let queries = load_vectors(&queries_path, None)?;
    let want_bytes =
        std::fs::read(&want_path).map_err(|e| format!("{}: {e}", want_path.display()))?;
    let mut cursor = 0usize;
    let mut next_hits = || -> Result<Vec<(u32, u32)>, String> {
        let take_u32 = |cursor: &mut usize| -> Result<u32, String> {
            let b = want_bytes
                .get(*cursor..*cursor + 4)
                .ok_or_else(|| "truncated want file".to_string())?;
            *cursor += 4;
            Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
        };
        let len = take_u32(&mut cursor)? as usize;
        (0..len).map(|_| Ok((take_u32(&mut cursor)?, take_u32(&mut cursor)?))).collect()
    };

    let t0 = std::time::Instant::now();
    let mapped = SegmentedVaq::open_mapped(&index_path).map_err(|e| e.to_string())?;
    let open_secs = t0.elapsed().as_secs_f64();
    let strat = SearchStrategy::TiEa { visit_frac: visit };
    let t0 = std::time::Instant::now();
    for qi in 0..queries.rows() {
        let got = mapped.search_with(queries.row(qi), k, strat).map_err(|e| e.to_string())?.0;
        let got: Vec<(u32, u32)> = got.iter().map(|h| (h.index, h.distance.to_bits())).collect();
        if got != next_hits()? {
            return Err(format!("query {qi}: mapped answers diverge from the in-RAM index"));
        }
    }
    let query_secs = t0.elapsed().as_secs_f64();
    let tiea_kb = peak_rss_kb();
    for qi in 0..quant_probes.min(queries.rows()) {
        let got = mapped
            .search_with(queries.row(qi), k, SearchStrategy::Quantized)
            .map_err(|e| e.to_string())?
            .0;
        let got: Vec<(u32, u32)> = got.iter().map(|h| (h.index, h.distance.to_bits())).collect();
        if got != next_hits()? {
            return Err(format!("query {qi}: mapped Quantized answers diverge"));
        }
    }
    let quant_kb = peak_rss_kb();
    println!("open_secs={open_secs}");
    println!("query_secs={query_secs}");
    if let Some(kb) = tiea_kb {
        println!("peak_rss_kb_tiea={kb}");
    }
    if let Some(kb) = quant_kb {
        println!("peak_rss_kb_quant={kb}");
    }
    Ok(())
}

/// `bench --out-of-core`: the mapped-extent acceptance run. Streams a
/// synthetic dataset to an fvecs file block by block (never materialized
/// in RAM), trains the dictionaries from a block-sampled subset, ingests
/// the whole file blockwise into a segmented index, persists it in the
/// page-aligned `VAQ4` layout, then drops the in-RAM index, resets the
/// peak-RSS watermark, and answers the query set from the memory-mapped
/// reopen. The mapped answers must be byte-identical to the in-RAM
/// index's, and the query-phase peak RSS is measured against
/// `--rss-budget-mb` (enforced when the budget is nonzero and the
/// platform reports VmHWM). Writes results/BENCH_out_of_core.json.
fn cmd_bench_out_of_core(opts: &Opts) -> Result<(), String> {
    use vaq_bench::Json;
    use vaq_dataset::io::{fvecs_row_count, read_fvecs_block};
    use vaq_dataset::largescale::{sample_fvecs_blocks, stream_to_fvecs};
    use vaq_dataset::SyntheticSpec;

    let n: usize = get_or(opts, "n", 3_000_000)?;
    let dim: usize = get_or(opts, "dim", 32)?;
    let nq: usize = get_or(opts, "queries", 128)?;
    let k: usize = get_or(opts, "k", 10)?;
    let budget: usize = get_or(opts, "budget", 64)?;
    let segments: usize = get_or(opts, "segments", 16)?;
    let seed: u64 = get_or(opts, "seed", 7)?;
    let block: usize = get_or(opts, "block", 65_536)?;
    let train_limit: usize = get_or(opts, "train-limit", 100_000)?;
    let seal: usize = get_or(opts, "seal", 500_000)?;
    let ti_clusters: usize = get_or(opts, "ti-clusters", 1000)?;
    let visit: f64 = get_or(opts, "visit", 0.25)?;
    let rss_budget_mb: u64 = get_or(opts, "rss-budget-mb", 0)?;
    let out_dir = PathBuf::from(get_or(opts, "out", "results".to_string())?);
    if n == 0 || nq == 0 || block == 0 || train_limit == 0 {
        return Err("--n, --queries, --block, and --train-limit must be positive".into());
    }

    let work = std::env::temp_dir().join(format!("vaq-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&work).map_err(|e| format!("{}: {e}", work.display()))?;
    let data_path = work.join("data.fvecs");
    let index_path = work.join("index.vaq4");
    let cleanup = || {
        let _ = std::fs::remove_dir_all(&work);
    };

    // Phase 1: the dataset lives on disk, one block resident at a time.
    let spec = SyntheticSpec { dim, ..SyntheticSpec::sift_like() };
    let t0 = std::time::Instant::now();
    stream_to_fvecs(&spec, &data_path, n, block, seed)
        .map_err(|e| format!("{}: {e}", data_path.display()))?;
    let stream_secs = t0.elapsed().as_secs_f64();
    let data_mb = std::fs::metadata(&data_path).map(|m| m.len()).unwrap_or(0) / (1 << 20);
    println!("data: {n} × {dim} streamed to {} ({data_mb} MiB, {stream_secs:.1}s)", spec.name);
    let queries = spec.generate_queries(n, nq, seed);

    // Phase 2: dictionaries fit from a block-sampled subset; the full
    // file is then ingested block by block.
    let t0 = std::time::Instant::now();
    let sample = sample_fvecs_blocks(&data_path, dim, train_limit, block, seed)
        .map_err(|e| format!("sample: {e}"))?;
    let cfg = VaqConfig::new(budget, segments).with_seed(seed).with_ti_clusters(0);
    let policy = SegmentPolicy::default()
        .with_seal_threshold(seal)
        .with_ti_clusters(ti_clusters)
        .sequential();
    let seg = SegmentedVaq::train(&sample, &cfg, policy).map_err(|e| e.to_string())?;
    drop(sample);
    let train_secs = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let total = fvecs_row_count(&data_path, dim).map_err(|e| format!("row count: {e}"))?;
    let mut at = 0usize;
    while at < total {
        let rows = block.min(total - at);
        let m = read_fvecs_block(&data_path, dim, at, rows).map_err(|e| format!("ingest: {e}"))?;
        seg.add(&m).map_err(|e| e.to_string())?;
        at += rows;
    }
    seg.flush();
    let ingest_secs = t0.elapsed().as_secs_f64();
    let build_peak_mb = peak_rss_kb().map(|kb| kb / 1024);
    println!(
        "built: {} rows in {} segments (train {train_secs:.1}s, ingest {ingest_secs:.1}s, \
         build peak RSS {} MiB)",
        seg.len(),
        seg.snapshot().num_segments(),
        build_peak_mb.map_or("?".into(), |m| m.to_string()),
    );

    // In-RAM reference answers, captured before the index is dropped.
    // They go to a file so the query child can compare byte-for-byte.
    let strat = SearchStrategy::TiEa { visit_frac: visit };
    let quant_probes = nq.min(8);
    let queries_path = work.join("queries.fvecs");
    let want_path = work.join("want.bin");
    vaq_dataset::io::write_fvecs(&queries_path, &queries)
        .map_err(|e| format!("{}: {e}", queries_path.display()))?;
    {
        let mut want = Vec::new();
        let mut push_hits = |hits: &[vaq_core::Neighbor]| {
            want.extend((u32::try_from(hits.len()).expect("k fits u32")).to_le_bytes());
            for h in hits {
                want.extend(h.index.to_le_bytes());
                want.extend(h.distance.to_bits().to_le_bytes());
            }
        };
        for qi in 0..nq {
            push_hits(&seg.search_with(queries.row(qi), k, strat).map_err(|e| e.to_string())?.0);
        }
        for qi in 0..quant_probes {
            push_hits(
                &seg.search_with(queries.row(qi), k, SearchStrategy::Quantized)
                    .map_err(|e| e.to_string())?
                    .0,
            );
        }
        std::fs::write(&want_path, &want).map_err(|e| format!("{}: {e}", want_path.display()))?;
    }

    let t0 = std::time::Instant::now();
    seg.save_mapped(&index_path).map_err(|e| e.to_string())?;
    let save_secs = t0.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&index_path).map(|m| m.len()).unwrap_or(0);
    println!("saved: {} MiB VAQ4 in {save_secs:.1}s", file_bytes / (1 << 20));
    drop(seg);

    // Phase 3: a fresh child process answers the query set from the
    // mapped reopen, so its whole-process VmHWM *is* the serving
    // footprint — no build-phase allocations in the measurement.
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let out = std::process::Command::new(&exe)
        .args([
            "ooc-query",
            "--index",
            &index_path.display().to_string(),
            "--queries",
            &queries_path.display().to_string(),
            "--want",
            &want_path.display().to_string(),
            "--k",
            &k.to_string(),
            "--visit",
            &visit.to_string(),
            "--quant-probes",
            &quant_probes.to_string(),
        ])
        .output()
        .map_err(|e| format!("spawn query child: {e}"))?;
    if !out.status.success() {
        cleanup();
        return Err(format!(
            "mapped query child failed: {}{}",
            String::from_utf8_lossy(&out.stderr).trim(),
            String::from_utf8_lossy(&out.stdout).trim(),
        ));
    }
    let report = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> Option<f64> {
        report
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.trim().parse().ok())
    };
    let open_secs = field("open_secs").unwrap_or(0.0);
    let query_secs = field("query_secs").unwrap_or(0.0);
    let tiea_peak_mb = field("peak_rss_kb_tiea").map(|kb| kb / 1024.0);
    let quant_peak_mb = field("peak_rss_kb_quant").map(|kb| kb / 1024.0);
    println!(
        "mapped (child process): open {open_secs:.2}s, {nq} queries at {:.2} ms/q — answers \
         identical; peak RSS {} MiB TiEa, {} MiB after Quantized probes (file {} MiB)",
        query_secs / nq as f64 * 1e3,
        tiea_peak_mb.map_or("?".into(), |m| format!("{m:.0}")),
        quant_peak_mb.map_or("?".into(), |m| format!("{m:.0}")),
        file_bytes / (1 << 20),
    );

    // The budget binds the TiEa serving path; the Quantized probes are
    // reported separately — they exist to show the packed extent group
    // staying non-resident until first asked for.
    let mut budget_ok = Json::Null;
    if rss_budget_mb > 0 {
        if let Some(peak) = tiea_peak_mb {
            if file_bytes / (1 << 20) <= rss_budget_mb {
                cleanup();
                return Err(format!(
                    "--rss-budget-mb {rss_budget_mb} is not out-of-core: the index file is only \
                     {} MiB",
                    file_bytes / (1 << 20)
                ));
            }
            if peak > rss_budget_mb as f64 {
                cleanup();
                return Err(format!(
                    "query-phase peak RSS {peak:.0} MiB exceeds the {rss_budget_mb} MiB budget"
                ));
            }
            budget_ok = Json::Bool(true);
            println!("RSS budget: {peak:.0} MiB peak ≤ {rss_budget_mb} MiB cap — enforced OK");
        } else {
            println!("RSS budget: VmHWM unavailable on this platform — advisory only");
        }
    }

    let mb = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    let json = Json::obj([
        ("bench", Json::Str("out_of_core".to_string())),
        ("n", Json::Num(n as f64)),
        ("dim", Json::Num(dim as f64)),
        ("queries", Json::Num(nq as f64)),
        ("k", Json::Num(k as f64)),
        ("budget_bits", Json::Num(budget as f64)),
        ("subspaces", Json::Num(segments as f64)),
        ("block_rows", Json::Num(block as f64)),
        ("train_rows", Json::Num(train_limit as f64)),
        ("seal_threshold", Json::Num(seal as f64)),
        ("visit_frac", Json::Num(visit)),
        ("dataset_mb", Json::Num(data_mb as f64)),
        ("index_file_mb", Json::Num((file_bytes / (1 << 20)) as f64)),
        (
            "build",
            Json::obj([
                ("stream_secs", Json::Num(stream_secs)),
                ("train_secs", Json::Num(train_secs)),
                ("ingest_secs", Json::Num(ingest_secs)),
                ("save_secs", Json::Num(save_secs)),
                ("peak_rss_mb", build_peak_mb.map_or(Json::Null, |m| Json::Num(m as f64))),
            ]),
        ),
        (
            "mapped_query",
            Json::obj([
                ("open_secs", Json::Num(open_secs)),
                ("ms_per_query", Json::Num(query_secs / nq as f64 * 1e3)),
                ("peak_rss_mb_tiea", mb(tiea_peak_mb)),
                ("peak_rss_mb_after_quantized", mb(quant_peak_mb)),
                ("answers_identical", Json::Bool(true)),
            ]),
        ),
        ("rss_budget_mb", Json::Num(rss_budget_mb as f64)),
        ("rss_budget_enforced", budget_ok),
    ]);
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let path = out_dir.join("BENCH_out_of_core.json");
    std::fs::write(&path, json.pretty()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("results written to {}", path.display());
    cleanup();
    Ok(())
}

/// Renders an obs snapshot as the human-readable `--profile` report:
/// span table, non-empty histogram buckets, counters, and event totals.
fn print_profile(snap: &vaq_core::obs::Snapshot) {
    println!("\nprofile: spans");
    println!(
        "  {:<22} {:>8} {:>12} {:>12} {:>12}",
        "span", "count", "total ms", "mean µs", "max µs"
    );
    for s in &snap.spans {
        let mean_us = s.total_ns as f64 / s.count.max(1) as f64 / 1e3;
        println!(
            "  {:<22} {:>8} {:>12.3} {:>12.2} {:>12.2}",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            mean_us,
            s.max_ns as f64 / 1e3
        );
    }
    for h in &snap.histograms {
        println!("profile: histogram {} ({} observations)", h.name, h.count);
        for &(le_ns, c) in h.buckets.iter().filter(|&&(_, c)| c > 0) {
            println!("  ≤ {:>12.1} µs  {c}", le_ns as f64 / 1e3);
        }
        let mean_us = h.sum_ns as f64 / h.count.max(1) as f64 / 1e3;
        println!("  mean {mean_us:.2} µs");
    }
    if !snap.counters.is_empty() {
        println!("profile: counters");
        for &(name, v) in &snap.counters {
            println!("  {name:<28} {v}");
        }
    }
    if !snap.events.is_empty() || snap.events_dropped > 0 {
        println!(
            "profile: {} structured events ({} dropped)",
            snap.events.len(),
            snap.events_dropped
        );
        for e in snap.events.iter().take(10) {
            println!("  [{}] {}: {}", e.seq, e.kind, e.detail);
        }
    }
}

fn cmd_chaos(opts: &Opts) -> Result<(), String> {
    use vaq_core::faults::{disarm_all, take_degradations};

    let range = parse_seed_range(opts.get("seed-range").map(|s| s.as_str()).unwrap_or("0..32"))?;
    let p: f64 = get_or(opts, "p", 0.3)?;
    let n: usize = get_or(opts, "n", 400)?;
    let d: usize = get_or(opts, "dim", 16)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--p {p} outside [0, 1]"));
    }

    let (mut clean, mut degraded, mut errored) = (0u64, 0u64, 0u64);
    let mut failures: Vec<String> = Vec::new();
    for seed in range.clone() {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos_run(seed, p, n, d)));
        let notes = take_degradations();
        disarm_all();
        match outcome {
            Err(_) => failures.push(format!("seed {seed}: PANIC")),
            Ok(Err(msg)) => failures.push(format!("seed {seed}: {msg}")),
            Ok(Ok(queryable)) => {
                if !queryable {
                    errored += 1;
                } else if notes.is_empty() {
                    clean += 1;
                } else {
                    degraded += 1;
                }
                if !notes.is_empty() {
                    println!("seed {seed}: degraded — {}", notes.join("; "));
                }
            }
        }
    }

    let total = range.end - range.start;
    println!(
        "chaos: {total} seeds, {clean} clean, {degraded} degraded-but-correct, \
         {errored} typed errors, {} contract violations",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        Err(format!(
            "{} chaos seed(s) violated the no-panic/no-wrong-answer contract",
            failures.len()
        ))
    }
}

/// The IO fault sites a [`vaq_core::faults::Trigger::CrashPoint`] sweep
/// enumerates (each is registered in `faults::SITES`).
const CRASH_SITES: [&str; 3] = ["persist.wal_append", "persist.commit", "persist.fsync"];

/// One crash-harness run: the live workload instance plus how it ended.
struct CrashRun {
    seg: SegmentedVaq,
    /// `true` once the initial `make_durable` acknowledged — from then on
    /// recovery must succeed and match the acknowledged prefix.
    durable: bool,
    /// The typed error that stopped the workload (the simulated power
    /// cut), `None` when every op acknowledged.
    stopped: Option<vaq_core::VaqError>,
}

/// Replays the scripted durable workload against a fresh manifest path:
/// make-durable, interleaved add/delete batches across seal and compact
/// boundaries, an update, a mid-stream checkpoint, and a final
/// checkpoint. Stops at the first failed op. The returned instance is
/// the oracle: every mutation reaches the write-ahead log before memory,
/// so its in-memory state is exactly the set of acknowledged ops.
fn crash_workload(base: &[u8], data: &Matrix, path: &Path) -> Result<CrashRun, String> {
    let vaq = Vaq::from_bytes(base).map_err(|e| format!("workload setup: {e}"))?;
    let seg = SegmentedVaq::from_vaq(
        vaq,
        SegmentPolicy::default()
            .with_seal_threshold(12)
            .with_compact_min_segments(2)
            .with_ti_clusters(4)
            .sequential(),
    );
    let half = data.rows() / 2;
    let mut durable = false;
    let stopped = (|| -> Result<(), vaq_core::VaqError> {
        seg.make_durable(path)?;
        durable = true;
        let mut cursor = half;
        let mut victims: Vec<u32> = Vec::new();
        for round in 0..2usize {
            // Three 7-row batches per round cross the 12-row seal
            // threshold, so maintenance markers land mid-schedule.
            for _batch in 0..3usize {
                let hi = cursor + 7;
                let ids = seg.add(&data.select_rows(&(cursor..hi).collect::<Vec<_>>()))?;
                cursor = hi;
                victims.push(ids[0]);
            }
            for v in victims.drain(..) {
                let _ = seg.try_delete(v)?;
            }
            if round == 0 {
                seg.flush();
                // Replace a trained row with the (otherwise unused) last
                // dataset row: a delete + add pair through one call.
                seg.update(1, data.row(data.rows() - 1))?;
                seg.checkpoint()?;
            }
        }
        seg.flush();
        seg.checkpoint()?;
        Ok(())
    })();
    Ok(CrashRun { seg, durable, stopped: stopped.err() })
}

/// Logical-state fingerprint used to compare the crashed oracle with the
/// recovered index: the live id set plus full-scan answers (sorted by
/// `(distance bits, id)` so segmentation-dependent scan order cannot
/// masquerade as divergence) for the last five dataset rows as queries.
fn crash_fingerprint(
    seg: &SegmentedVaq,
    data: &Matrix,
    k: usize,
) -> Result<(Vec<u32>, Vec<Vec<(u32, u32)>>), String> {
    let mut answers = Vec::new();
    for qi in data.rows().saturating_sub(5)..data.rows() {
        let hits = seg
            .search_with(data.row(qi), k, SearchStrategy::FullScan)
            .map_err(|e| format!("query on live index failed: {e}"))?
            .0;
        let mut a: Vec<(u32, u32)> = hits.iter().map(|h| (h.distance.to_bits(), h.index)).collect();
        a.sort_unstable();
        answers.push(a);
    }
    Ok((seg.live_ids(), answers))
}

/// Recreates `dir` empty.
fn fresh_dir(dir: &Path) -> Result<PathBuf, String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    Ok(dir.to_path_buf())
}

/// How one swept crash point resolved (violations are reported upward).
enum CrashVerdict {
    /// Recovery reproduced the acknowledged prefix exactly.
    Recovered,
    /// The cut landed before the index ever became durable and recovery
    /// failed with a typed error — nothing was promised, nothing is owed.
    Unborn,
}

fn cmd_crash(opts: &Opts) -> Result<(), String> {
    use vaq_core::faults::{arm, crashed, disarm_all, hit_count, Trigger};

    let seed: u64 = get_or(opts, "seed", 7)?;
    let n: usize = get_or(opts, "n", 96)?;
    let d: usize = get_or(opts, "dim", 12)?;
    let k: usize = get_or(opts, "k", 8)?;
    if n < 64 {
        return Err("--n must be at least 64 (the workload script needs the rows)".into());
    }
    // `--durability` names the only suite; accepted for explicit CI logs.

    // Seeds ≡ 0 (mod 4) keep `chaos_data` finite: the durability contract
    // is exercised on clean vectors (ingress chaos is `chaos` business).
    let data = chaos_data(n, d, seed.wrapping_mul(4));
    let half = n / 2;
    let cfg = VaqConfig::new(32, 4).with_seed(seed).with_ti_clusters(8.min(half));
    let base = Vaq::train(&data.select_rows(&(0..half).collect::<Vec<_>>()), &cfg)
        .map_err(|e| format!("baseline training failed: {e}"))?
        .to_bytes();
    let scratch = std::env::temp_dir().join(format!("vaq-crash-{}", std::process::id()));

    // Counting pass: arm the IO sites inert, run the workload fault-free,
    // and read back how many times each site was hit — that enumerates
    // every IO point the sweep must kill at.
    disarm_all();
    for site in CRASH_SITES {
        arm(site, Trigger::Off);
    }
    let dir = fresh_dir(&scratch.join("baseline"))?;
    let baseline_path = dir.join("index.vaq");
    let run = crash_workload(&base, &data, &baseline_path)?;
    if let Some(e) = run.stopped {
        disarm_all();
        return Err(format!("fault-free workload failed: {e}"));
    }
    let io_points: Vec<(&'static str, u64)> =
        CRASH_SITES.iter().map(|&s| (s, hit_count(s))).collect();
    disarm_all();
    let oracle = crash_fingerprint(&run.seg, &data, k)?;
    // Clean-shutdown recovery must already reproduce the final state.
    let rec = SegmentedVaq::open_durable(&baseline_path)
        .map_err(|e| format!("clean recovery failed: {e}"))?;
    if crash_fingerprint(&rec, &data, k)? != oracle {
        return Err("clean recovery diverged from the live index".into());
    }
    let total: u64 = io_points.iter().map(|&(_, h)| h).sum();
    let detail: Vec<String> = io_points.iter().map(|&(s, h)| format!("{s} ×{h}")).collect();
    println!("crash: workload touches {total} IO points ({})", detail.join(", "));

    let mut failures: Vec<String> = Vec::new();
    let (mut recovered, mut unborn) = (0u64, 0u64);
    for &(site, hits) in &io_points {
        for point in 1..=hits {
            let dir = fresh_dir(&scratch.join(format!("{}-{point}", site.replace('.', "_"))))?;
            let path = dir.join("index.vaq");
            disarm_all();
            arm(site, Trigger::CrashPoint(point));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || -> Result<CrashVerdict, String> {
                    let run = crash_workload(&base, &data, &path)?;
                    if run.stopped.is_none() || !crashed() {
                        return Err(format!(
                            "crash point never cut the workload (stopped: {:?})",
                            run.stopped
                        ));
                    }
                    // The crashed instance is the oracle (see
                    // `crash_workload`); capture it before power-up.
                    let oracle = crash_fingerprint(&run.seg, &data, k)?;
                    disarm_all(); // power back up
                    match SegmentedVaq::open_durable(&path) {
                        Ok(rec) => {
                            if crash_fingerprint(&rec, &data, k)? != oracle {
                                return Err(
                                    "recovered state diverges from the acknowledged prefix".into(),
                                );
                            }
                            // Recovery must hand back a *working* durable
                            // index, not just a readable one.
                            rec.checkpoint()
                                .map_err(|e| format!("post-recovery checkpoint failed: {e}"))?;
                            Ok(CrashVerdict::Recovered)
                        }
                        Err(_) if !run.durable => Ok(CrashVerdict::Unborn),
                        Err(e) => Err(format!("recovery failed on a durable index: {e}")),
                    }
                },
            ));
            disarm_all();
            match outcome {
                Err(_) => failures.push(format!("{site} point {point}: PANIC")),
                Ok(Err(msg)) => failures.push(format!("{site} point {point}: {msg}")),
                Ok(Ok(CrashVerdict::Recovered)) => recovered += 1,
                Ok(Ok(CrashVerdict::Unborn)) => unborn += 1,
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "crash: {total} points swept — {recovered} recovered exactly, {unborn} died before \
         durability (typed), {} violations",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        Err(format!("{} crash point(s) violated the recovery contract", failures.len()))
    }
}
