//! `vaq_cli` — build, persist, and query VAQ indexes from the command
//! line, over the standard vector-file formats (fvecs/bvecs/CSV). This is
//! the path for running the reproduction on the paper's *real* datasets
//! when you have them (SIFT1B/DEEP1B downloads, UCR archive exports).
//!
//! ```sh
//! # Train a 128-bit index over 16 subspaces on SIFT learn vectors:
//! vaq_cli train --data sift_learn.fvecs --budget 128 --segments 16 --out sift.vaq
//!
//! # Answer queries, 10 neighbors each:
//! vaq_cli search --index sift.vaq --queries sift_query.fvecs --k 10
//!
//! # Score against ground truth (ivecs) and report Recall/MAP + timing:
//! vaq_cli eval --index sift.vaq --queries sift_query.fvecs \
//!              --truth sift_groundtruth.ivecs --k 100
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vaq_core::{Audit, SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::io::{read_bvecs, read_csv, read_fvecs, read_ivecs};
use vaq_linalg::Matrix;
use vaq_metrics::{map_at_k, recall_at_k};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `audit` also accepts a bare index path: `vaq_cli audit index.vaq`.
    let mut rest: Vec<String> = args[1..].to_vec();
    if cmd == "audit" && rest.len() == 1 && !rest[0].starts_with("--") {
        rest = vec!["--index".to_string(), rest.remove(0)];
    }
    let opts = match parse_opts(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&opts),
        "search" => cmd_search(&opts),
        "eval" => cmd_eval(&opts),
        "info" => cmd_info(&opts),
        "audit" => cmd_audit(&opts),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "vaq_cli — Variance-Aware Quantization indexes on vector files

USAGE:
  vaq_cli train  --data FILE --out INDEX [--budget 128] [--segments 16]
                 [--limit N] [--ti-clusters 1000] [--seed 7] [--clustered]
  vaq_cli search --index INDEX --queries FILE [--k 10] [--visit 0.25] [--limit N]
  vaq_cli eval   --index INDEX --queries FILE --truth FILE.ivecs [--k 100]
                 [--visit 0.25] [--limit N]
  vaq_cli info   --index INDEX
  vaq_cli audit  INDEX            (or --index INDEX)

Vector FILEs may be .fvecs, .bvecs, or .csv (one vector per line).
`audit` re-checks the index's structural invariants (bit budget C1–C4,
importance monotonicity, code ranges, TI partition order) and exits
non-zero listing each VAQ1xx diagnostic on failure.";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{a}`"));
        };
        // Boolean flags.
        if key == "clustered" {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), val.clone());
    }
    Ok(opts)
}

fn get<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(|s| s.as_str()).ok_or_else(|| format!("missing required --{key}"))
}

fn get_or<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

/// Loads vectors from fvecs/bvecs/csv, dispatching on extension.
fn load_vectors(path: &Path, limit: Option<usize>) -> Result<Matrix, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let loaded = match ext {
        "fvecs" => read_fvecs(path, limit),
        "bvecs" => read_bvecs(path, limit),
        "csv" | "tsv" | "txt" => read_csv(path, false).map(|(m, _)| match limit {
            Some(l) if l < m.rows() => m.select_rows(&(0..l).collect::<Vec<_>>()),
            _ => m,
        }),
        other => return Err(format!("unsupported vector format `.{other}`")),
    };
    loaded.map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let data_path = PathBuf::from(get(opts, "data")?);
    let out = PathBuf::from(get(opts, "out")?);
    let budget: usize = get_or(opts, "budget", 128)?;
    let segments: usize = get_or(opts, "segments", 16)?;
    let limit: usize = get_or(opts, "limit", 0)?;
    let ti_clusters: usize = get_or(opts, "ti-clusters", 1000)?;
    let seed: u64 = get_or(opts, "seed", 7)?;

    let data = load_vectors(&data_path, if limit > 0 { Some(limit) } else { None })?;
    println!("loaded {} vectors × {} dims from {}", data.rows(), data.cols(), data_path.display());

    let mut cfg = VaqConfig::new(budget, segments)
        .with_seed(seed)
        .with_ti_clusters(ti_clusters.min(data.rows()));
    if opts.contains_key("clustered") {
        cfg = cfg.clustered();
    }
    let t0 = std::time::Instant::now();
    let vaq = Vaq::train(&data, &cfg).map_err(|e| e.to_string())?;
    println!("trained in {:.1}s — bit allocation {:?}", t0.elapsed().as_secs_f64(), vaq.bits());
    vaq.save(&out).map_err(|e| e.to_string())?;
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("index written to {} ({:.1} MiB)", out.display(), size as f64 / (1 << 20) as f64);
    Ok(())
}

fn load_index(opts: &Opts) -> Result<Vaq, String> {
    let path = PathBuf::from(get(opts, "index")?);
    Vaq::load(&path).map_err(|e| e.to_string())
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    let vaq = load_index(opts)?;
    let queries_path = PathBuf::from(get(opts, "queries")?);
    let k: usize = get_or(opts, "k", 10)?;
    let visit: f64 = get_or(opts, "visit", 0.25)?;
    let limit: usize = get_or(opts, "limit", 0)?;
    let queries = load_vectors(&queries_path, if limit > 0 { Some(limit) } else { None })?;

    let t0 = std::time::Instant::now();
    for q in 0..queries.rows() {
        let hits = vaq.search_with(queries.row(q), k, SearchStrategy::TiEa { visit_frac: visit }).0;
        let ids: Vec<String> =
            hits.iter().map(|h| format!("{}:{:.4}", h.index, h.distance)).collect();
        println!("query {q}: {}", ids.join(" "));
    }
    eprintln!("{} queries in {:.1} ms", queries.rows(), t0.elapsed().as_secs_f64() * 1e3);
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let vaq = load_index(opts)?;
    let queries_path = PathBuf::from(get(opts, "queries")?);
    let truth_path = PathBuf::from(get(opts, "truth")?);
    let k: usize = get_or(opts, "k", 100)?;
    let visit: f64 = get_or(opts, "visit", 0.25)?;
    let limit: usize = get_or(opts, "limit", 0)?;
    let queries = load_vectors(&queries_path, if limit > 0 { Some(limit) } else { None })?;
    let truth = read_ivecs(&truth_path, Some(queries.rows()))
        .map_err(|e| format!("{}: {e}", truth_path.display()))?;
    if truth.len() < queries.rows() {
        return Err(format!(
            "ground truth has {} rows for {} queries",
            truth.len(),
            queries.rows()
        ));
    }

    let t0 = std::time::Instant::now();
    let retrieved: Vec<Vec<u32>> = (0..queries.rows())
        .map(|q| {
            vaq.search_with(queries.row(q), k, SearchStrategy::TiEa { visit_frac: visit })
                .0
                .iter()
                .map(|h| h.index)
                .collect()
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    println!("recall@{k} = {:.4}", recall_at_k(&retrieved, &truth[..queries.rows()], k));
    println!("MAP@{k}    = {:.4}", map_at_k(&retrieved, &truth[..queries.rows()], k));
    println!(
        "query time = {:.2} ms total, {:.3} ms/query",
        secs * 1e3,
        secs * 1e3 / queries.rows() as f64
    );
    Ok(())
}

fn cmd_audit(opts: &Opts) -> Result<(), String> {
    let path = PathBuf::from(get(opts, "index")?);
    let vaq = Vaq::load(&path).map_err(|e| e.to_string())?;
    println!(
        "auditing {} — {} vectors, {} subspaces, {} code bits",
        path.display(),
        vaq.len(),
        vaq.bits().len(),
        vaq.code_bits()
    );
    let report = vaq.audit();
    if report.is_ok() {
        println!("audit clean: all structural invariants hold");
        return Ok(());
    }
    for issue in report.issues() {
        eprintln!("{issue}");
    }
    Err(format!("{} invariant violation(s) found", report.issues().len()))
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let vaq = load_index(opts)?;
    println!("vectors:        {}", vaq.len());
    println!("code bits:      {} ({} bytes/vector)", vaq.code_bits(), vaq.code_bits().div_ceil(8));
    println!("subspaces:      {}", vaq.bits().len());
    println!("bit allocation: {:?}", vaq.bits());
    let shares: Vec<String> =
        vaq.layout().variance_share.iter().map(|v| format!("{:.3}", v)).collect();
    println!("variance share: [{}]", shares.join(", "));
    match vaq.ti() {
        Some(ti) => println!(
            "TI partition:   {} clusters over the first {} subspaces",
            ti.num_clusters(),
            ti.prefix_subspaces()
        ),
        None => println!("TI partition:   none (EA-only queries)"),
    }
    Ok(())
}
