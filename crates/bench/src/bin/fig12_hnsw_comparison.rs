//! **Figure 12** — VAQ vs HNSW built *over PQ-encoded data* on the
//! SIFT-like workload at a 256-bit budget (§V-E).
//!
//! HNSW sweeps M ∈ {8, 16, 32}, efConstruction ∈ {50, 200} and
//! efSearch ∈ {16, 64}; VAQ sweeps the visited-cluster fraction
//! {0.05, 0.1, 0.25}. Preprocessing time (encode + graph build) and query
//! time are reported at each MAP level.
//!
//! Paper shape to reproduce: HNSW needs an order of magnitude more
//! preprocessing (paper: 22× at matched MAP) for roughly 2× faster
//! queries; VAQ reaches comparable accuracy with trivial preprocessing.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig12_hnsw_comparison`

use vaq_baselines::pq::{Pq, PqConfig};
use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(20_000);
    let nq = args.queries(50);
    let k = 100;
    const BUDGET: usize = 256;
    const SEGMENTS: usize = 32;
    println!("Figure 12: VAQ vs HNSW-over-PQ on SIFT-like (n = {n}, {BUDGET}-bit budget)\n");

    let ds = SyntheticSpec::sift_like().generate(n, nq, args.seed);
    let truth = exact_knn(&ds.data, &ds.queries, k);
    let mut results: Vec<MethodResult> = Vec::new();
    let mut rows = Vec::new();

    // VAQ sweep.
    let t = std::time::Instant::now();
    let vaq = Vaq::train(
        &ds.data,
        &VaqConfig::new(BUDGET, SEGMENTS)
            .with_seed(args.seed)
            .with_ti_clusters((n / 100).clamp(64, 1000)),
    )
    .unwrap();
    let vaq_train = t.elapsed().as_secs_f64();
    for frac in [0.05f64, 0.1, 0.25] {
        let r = evaluate_with_truth(
            |q| {
                vaq.search_with(q, k, SearchStrategy::TiEa { visit_frac: frac })
                    .expect("search")
                    .0
                    .iter()
                    .map(|x| x.index)
                    .collect()
            },
            &ds.queries,
            &truth,
            k,
        );
        rows.push(vec![
            "VAQ".into(),
            format!("visit={frac}"),
            format!("{:.4}", r.1),
            fmt_secs(r.2),
            fmt_secs(vaq_train),
        ]);
        results.push(MethodResult {
            method: "VAQ".into(),
            dataset: ds.name.clone(),
            code_bits: BUDGET,
            recall: r.0,
            map: r.1,
            query_secs: r.2,
            train_secs: vaq_train,
            params: format!("visit={frac}"),
        });
    }

    // HNSW over PQ-encoded data.
    let t = std::time::Instant::now();
    let pq = Pq::train(&ds.data, &PqConfig::new(SEGMENTS).with_bits(BUDGET / SEGMENTS)).unwrap();
    let pq_train = t.elapsed().as_secs_f64();
    for m in [8usize, 16, 32] {
        for efc in [50usize, 200] {
            let t = std::time::Instant::now();
            let store = vaq_index::hnsw::PqStore::from_pq(&pq);
            let hnsw = vaq_index::hnsw::Hnsw::build(
                store,
                &vaq_index::hnsw::HnswConfig {
                    m,
                    ef_construction: efc,
                    ef_search: 32,
                    seed: args.seed,
                },
            )
            .unwrap();
            let build = pq_train + t.elapsed().as_secs_f64();
            for efs in [16usize, 64] {
                let r = evaluate_with_truth(
                    |q| hnsw.search_ef(q, k, efs).iter().map(|x| x.index).collect(),
                    &ds.queries,
                    &truth,
                    k,
                );
                rows.push(vec![
                    "HNSW+PQ".into(),
                    format!("M={m} efC={efc} efS={efs}"),
                    format!("{:.4}", r.1),
                    fmt_secs(r.2),
                    fmt_secs(build),
                ]);
                results.push(MethodResult {
                    method: "HNSW+PQ".into(),
                    dataset: ds.name.clone(),
                    code_bits: BUDGET,
                    recall: r.0,
                    map: r.1,
                    query_secs: r.2,
                    train_secs: build,
                    params: format!("M={m} efC={efc} efS={efs}"),
                });
            }
        }
    }

    print_table(&["method", "config", "MAP@100", "query time", "preprocess time"], &rows);

    // Shape check: preprocessing ratio at matched MAP.
    let vaq_best = results
        .iter()
        .filter(|r| r.method == "VAQ")
        .max_by(|a, b| a.map.total_cmp(&b.map))
        .unwrap()
        .clone();
    let hnsw_matching: Vec<&MethodResult> =
        results.iter().filter(|r| r.method == "HNSW+PQ" && r.map >= vaq_best.map - 0.05).collect();
    if let Some(h) = hnsw_matching.iter().min_by(|a, b| a.query_secs.total_cmp(&b.query_secs)) {
        println!(
            "\nShape check at MAP ≈ {:.3}: HNSW preprocessing {:.1}× VAQ's; \
             HNSW query time {:.1}× VAQ's (paper: 22× more preprocessing, ~0.5× query time)",
            vaq_best.map,
            h.train_secs / vaq_best.train_secs,
            h.query_secs / vaq_best.query_secs,
        );
    } else {
        println!("\nShape check: no HNSW configuration reached VAQ's MAP − 0.05");
    }
    write_json(&args.out_dir, "fig12_hnsw_comparison.json", &results).expect("write results");
}
