//! Ablation of VAQ design choices beyond the paper's Figure 9:
//!
//! 1. **Partial importance balancing** on/off (§III-C): the paper argues
//!    the bounded PC swaps spread importance without breaking the global
//!    ordering; this quantifies the recall effect per dataset family.
//! 2. **TI prefix width** (`TIClusterNumSubs`, Algorithm 3): how many
//!    leading subspaces the triangle-inequality metric spans. Wider
//!    prefixes tighten the lower bound (more skipping) but cost more per
//!    centroid distance.
//!
//! Run: `cargo run -p vaq-bench --release --bin ablation_design_choices`

use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(15_000);
    let nq = args.queries(50);
    let k = 100;
    println!("Design-choice ablations (n = {n}, queries = {nq})\n");
    let mut results: Vec<MethodResult> = Vec::new();

    // --- Ablation 1: partial balancing. ---
    println!("1) Partial importance balancing (64-bit budget, 16 subspaces):");
    let mut rows = Vec::new();
    for spec in
        [SyntheticSpec::sift_like(), SyntheticSpec::sald_like(), SyntheticSpec::seismic_like()]
    {
        let ds = spec.generate(n, nq, args.seed);
        let truth = exact_knn(&ds.data, &ds.queries, k);
        let mut row = vec![ds.name.clone()];
        for balance in [true, false] {
            let mut cfg = VaqConfig::new(64, 16).with_seed(args.seed).with_ti_clusters(0);
            cfg.partial_balance = balance;
            let vaq = Vaq::train(&ds.data, &cfg).unwrap();
            let r = evaluate_with_truth(
                |q| {
                    vaq.search_with(q, k, SearchStrategy::FullScan)
                        .expect("search")
                        .0
                        .iter()
                        .map(|x| x.index)
                        .collect()
                },
                &ds.queries,
                &truth,
                k,
            );
            row.push(format!("{:.4}", r.0));
            results.push(MethodResult {
                method: format!("VAQ-balance={balance}"),
                dataset: ds.name.clone(),
                code_bits: 64,
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs: 0.0,
                params: "ablation=balance".into(),
            });
        }
        rows.push(row);
    }
    print_table(&["dataset", "balanced (paper)", "unbalanced"], &rows);

    // --- Ablation 2: TI prefix width. ---
    println!("\n2) TI prefix width (SIFT-like, 128-bit budget, 16 subspaces, visit 0.25):");
    let ds = SyntheticSpec::sift_like().generate(n, nq, args.seed);
    let truth = exact_knn(&ds.data, &ds.queries, k);
    let mut rows = Vec::new();
    for prefix in [2usize, 4, 8, 16] {
        let mut cfg = VaqConfig::new(128, 16)
            .with_seed(args.seed)
            .with_ti_clusters((n / 100).clamp(32, 1000));
        cfg.ti_prefix_subspaces = prefix;
        let vaq = Vaq::train(&ds.data, &cfg).unwrap();
        let r = evaluate_with_truth(
            |q| {
                vaq.search_with(q, k, SearchStrategy::TiEa { visit_frac: 0.25 })
                    .expect("search")
                    .0
                    .iter()
                    .map(|x| x.index)
                    .collect()
            },
            &ds.queries,
            &truth,
            k,
        );
        let (_, stats) = vaq
            .search_with(ds.queries.row(0), k, SearchStrategy::TiEa { visit_frac: 0.25 })
            .expect("search");
        rows.push(vec![
            format!("{prefix}"),
            format!("{:.4}", r.0),
            fmt_secs(r.2),
            format!("{}", stats.vectors_skipped),
        ]);
        results.push(MethodResult {
            method: format!("VAQ-prefix={prefix}"),
            dataset: ds.name.clone(),
            code_bits: 128,
            recall: r.0,
            map: r.1,
            query_secs: r.2,
            train_secs: 0.0,
            params: "ablation=ti_prefix".into(),
        });
    }
    print_table(&["prefix subspaces", "recall@100", "query time", "vectors skipped (q0)"], &rows);

    write_json(&args.out_dir, "ablation_design_choices.json", &results).expect("write results");
}
