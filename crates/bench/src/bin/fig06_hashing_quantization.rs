//! **Figure 6** — VAQ vs the strongest hashing and quantization methods
//! (PQ, OPQ, ITQ-LSH) on all five large-scale datasets, the paper's
//! headline comparison.
//!
//! Configurations follow §V-A exactly: 256 bits / 32 subspaces for SALD,
//! SIFT, DEEP; 128 bits / 16 subspaces for ASTRO, SEISMIC (8 bits per
//! subspace for PQ/OPQ — the configuration that *favours* them); VAQ uses
//! the same budget and segments with min 1 / max 13 bits.
//!
//! Paper shape to reproduce: VAQ wins MAP on every dataset and answers
//! queries ~5× faster than PQ/OPQ scans (TI+EA pruning) and ~2× faster
//! than ITQ-LSH; ITQ-LSH is not accuracy-competitive.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig06_hashing_quantization`

use vaq_baselines::itq::{ItqConfig, ItqLsh};
use vaq_baselines::opq::{Opq, OpqConfig};
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_baselines::AnnIndex;
use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(20_000);
    let nq = args.queries(100);
    let k = 100;
    println!("Figure 6: VAQ vs PQ / OPQ / ITQ-LSH (n = {n}, queries = {nq}, k = {k})\n");

    let mut results: Vec<MethodResult> = Vec::new();
    for spec in SyntheticSpec::all() {
        let (budget, m) = match spec.name {
            "astro-like" | "seismic-like" => (128usize, 16usize),
            _ => (256, 32),
        };
        let ds = spec.generate(n, nq, args.seed);
        let truth = exact_knn(&ds.data, &ds.queries, k);
        println!("== {} (budget {budget}, {m} subspaces) ==", ds.name);

        let mut rows = Vec::new();
        let record = |method: &str,
                      params: String,
                      code_bits: usize,
                      train: f64,
                      r: (f64, f64, f64),
                      rows: &mut Vec<Vec<String>>,
                      results: &mut Vec<MethodResult>| {
            rows.push(vec![
                method.into(),
                format!("{:.4}", r.1),
                format!("{:.4}", r.0),
                fmt_secs(r.2),
                fmt_secs(train),
            ]);
            results.push(MethodResult {
                method: method.into(),
                dataset: ds.name.clone(),
                code_bits,
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs: train,
                params,
            });
        };

        let t = std::time::Instant::now();
        let pq = Pq::train(&ds.data, &PqConfig::new(m).with_bits(budget / m)).unwrap();
        let train = t.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| pq.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        record(
            "PQ",
            format!("b={}", budget / m),
            pq.code_bits(),
            train,
            r,
            &mut rows,
            &mut results,
        );

        let t = std::time::Instant::now();
        let opq = Opq::train(&ds.data, &OpqConfig::new(m).with_bits(budget / m)).unwrap();
        let train = t.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| opq.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        record(
            "OPQ",
            format!("b={}", budget / m),
            opq.code_bits(),
            train,
            r,
            &mut rows,
            &mut results,
        );

        let t = std::time::Instant::now();
        let itq = ItqLsh::train(&ds.data, &ItqConfig::new(budget)).unwrap();
        let train = t.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| itq.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        record(
            "ITQ-LSH",
            format!("bits={budget}"),
            itq.code_bits(),
            train,
            r,
            &mut rows,
            &mut results,
        );

        let t = std::time::Instant::now();
        let vaq = Vaq::train(
            &ds.data,
            &VaqConfig::new(budget, m)
                .with_seed(args.seed)
                .with_ti_clusters((n / 100).clamp(16, 1000)),
        )
        .unwrap();
        let train = t.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| vaq.search(q, k).expect("search").iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        record(
            "VAQ",
            format!("bits={:?}", vaq.bits()),
            vaq.code_bits(),
            train,
            r,
            &mut rows,
            &mut results,
        );

        print_table(&["method", "MAP@100", "recall@100", "query time", "encode time"], &rows);
        println!();
    }

    // Shape summary.
    let datasets: Vec<String> = {
        let mut d: Vec<String> = results.iter().map(|r| r.dataset.clone()).collect();
        d.dedup();
        d
    };
    let mut wins = 0;
    let mut speedups = Vec::new();
    for ds in &datasets {
        let get = |m: &str| results.iter().find(|r| &r.dataset == ds && r.method == m).unwrap();
        let vaq = get("VAQ");
        let best_rival =
            ["PQ", "OPQ", "ITQ-LSH"].iter().map(|m| get(m).map).fold(f64::MIN, f64::max);
        if vaq.map >= best_rival {
            wins += 1;
        }
        speedups.push(get("PQ").query_secs / vaq.query_secs);
    }
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "Shape check: VAQ best MAP on {wins}/{} datasets; mean speedup vs PQ scan {:.1}×",
        datasets.len(),
        mean_speedup
    );
    write_json(&args.out_dir, "fig06_hashing_quantization.json", &results).expect("write results");
}
