//! **Figure 1** — comparison of quantization methods across three
//! large-scale datasets at a 256-bit budget with 64 subspaces (the 4-bit
//! per-subspace regime that favours the hardware-accelerated methods).
//!
//! Paper shape to reproduce: Bolt is fastest but least accurate; PQFS
//! matches PQ's accuracy at lower runtime; OPQ only marginally improves on
//! PQ (and can invert on SALD); VAQ beats everyone on recall *and* beats
//! the float scans on runtime.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig01_quantizer_tradeoff`

use vaq_baselines::bolt::{Bolt, BoltConfig};
use vaq_baselines::opq::{Opq, OpqConfig};
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_baselines::pqfs::{PqFastScan, PqfsConfig};
use vaq_baselines::AnnIndex;
use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(20_000);
    let nq = args.queries(100);
    let k = 100;
    const BUDGET: usize = 256;
    const SEGMENTS: usize = 64;

    println!("Figure 1: quantizer trade-off ({BUDGET}-bit budget, {SEGMENTS} subspaces)");
    println!("n = {n}, queries = {nq}, k = {k}\n");

    let specs =
        [SyntheticSpec::sift_like(), SyntheticSpec::deep_like(), SyntheticSpec::sald_like()];
    let mut results: Vec<MethodResult> = Vec::new();

    for spec in &specs {
        let ds = spec.generate(n, nq, args.seed);
        // DEEP is 96-d: 64 subspaces would make some 1-wide; that is fine
        // for PQ but halve segments there to stay within dimensionality,
        // keeping the 4-bit budget per subspace (as the paper notes,
        // configurations adapt to dimensionality).
        let m = SEGMENTS.min(ds.dim() / 2);
        let bits = BUDGET / m;
        let truth = exact_knn(&ds.data, &ds.queries, k);
        println!("== {} (d={}, m={m}, {bits} bits/subspace) ==", ds.name, ds.dim());

        let mut rows = Vec::new();
        let push = |method: &str,
                    params: String,
                    code_bits: usize,
                    train_secs: f64,
                    r: (f64, f64, f64),
                    rows: &mut Vec<Vec<String>>,
                    results: &mut Vec<MethodResult>| {
            rows.push(vec![
                method.to_string(),
                format!("{:.4}", r.0),
                format!("{:.4}", r.1),
                fmt_secs(r.2),
                fmt_secs(train_secs),
            ]);
            results.push(MethodResult {
                method: method.into(),
                dataset: ds.name.clone(),
                code_bits,
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs,
                params,
            });
        };

        let t0 = std::time::Instant::now();
        let pq = Pq::train(&ds.data, &PqConfig::new(m).with_bits(bits)).unwrap();
        let pq_train = t0.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| pq.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        push("PQ", format!("m={m} b={bits}"), pq.code_bits(), pq_train, r, &mut rows, &mut results);

        let t0 = std::time::Instant::now();
        let opq = Opq::train(&ds.data, &OpqConfig::new(m).with_bits(bits)).unwrap();
        let opq_train = t0.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| opq.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        push(
            "OPQ",
            format!("m={m} b={bits}"),
            opq.code_bits(),
            opq_train,
            r,
            &mut rows,
            &mut results,
        );

        let t0 = std::time::Instant::now();
        let bolt = Bolt::train(&ds.data, &BoltConfig::new(m)).unwrap();
        let bolt_train = t0.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| bolt.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        push(
            "Bolt",
            format!("m={m} b=4"),
            bolt.code_bits(),
            bolt_train,
            r,
            &mut rows,
            &mut results,
        );

        // PQFS keeps 8-bit dictionaries: same 256-bit budget → m/2 subspaces.
        let t0 = std::time::Instant::now();
        let pqfs = PqFastScan::train(&ds.data, &PqfsConfig::new(BUDGET / 8)).unwrap();
        let pqfs_train = t0.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| pqfs.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        push(
            "PQFS",
            format!("m={} b=8", BUDGET / 8),
            pqfs.code_bits(),
            pqfs_train,
            r,
            &mut rows,
            &mut results,
        );

        let t0 = std::time::Instant::now();
        let vaq = Vaq::train(
            &ds.data,
            &VaqConfig::new(BUDGET, m)
                .with_seed(args.seed)
                .with_ti_clusters((n / 100).clamp(16, 1000)),
        )
        .unwrap();
        let vaq_train = t0.elapsed().as_secs_f64();
        let r = evaluate_with_truth(
            |q| vaq.search(q, k).expect("search").iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        push(
            "VAQ",
            "visit=0.25 bits=1..13".into(),
            vaq.code_bits(),
            vaq_train,
            r,
            &mut rows,
            &mut results,
        );

        print_table(&["method", "recall@100", "MAP@100", "query time", "train time"], &rows);
        println!();
    }

    write_json(&args.out_dir, "fig01_quantizer_tradeoff.json", &results).expect("write results");
}
