//! **Figure 7** — ablation of VAQ's pruning cascade during query
//! execution: plain Heap scan vs Early Abandoning (EA) vs triangle-
//! inequality data skipping with EA at 25% and 10% cluster visits
//! (256-bit budget, 32 subspaces, 1000 TI clusters — §V-B).
//!
//! Paper shape to reproduce: EA ≈ 2.3× faster than Heap on average;
//! TI+EA-0.25 ≈ 5×; TI+EA-0.1 ≈ 8.7×; recall unchanged (TI is exact w.r.t.
//! the ADC ranking; only the unvisited-cluster fraction can cost recall).
//!
//! Run: `cargo run -p vaq-bench --release --bin fig07_pruning_ablation`

use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(40_000);
    let nq = args.queries(50);
    let k = 100;
    println!("Figure 7: pruning ablation (n = {n}, queries = {nq}, k = {k})\n");

    let strategies: [(&str, SearchStrategy); 4] = [
        ("Heap", SearchStrategy::FullScan),
        ("EA", SearchStrategy::EarlyAbandon),
        ("TI+EA-0.25", SearchStrategy::TiEa { visit_frac: 0.25 }),
        ("TI+EA-0.1", SearchStrategy::TiEa { visit_frac: 0.10 }),
    ];

    let mut results: Vec<MethodResult> = Vec::new();
    let mut per_dataset_speedups: Vec<(String, f64, f64, f64)> = Vec::new();

    for spec in SyntheticSpec::all() {
        let (budget, m) = match spec.name {
            "astro-like" | "seismic-like" => (128usize, 16usize),
            _ => (256, 32),
        };
        let ds = spec.generate(n, nq, args.seed);
        let truth = exact_knn(&ds.data, &ds.queries, k);
        println!("== {} ==", ds.name);

        let ti_clusters = (n / 100).clamp(64, 1000);
        let vaq = Vaq::train(
            &ds.data,
            &VaqConfig::new(budget, m).with_seed(args.seed).with_ti_clusters(ti_clusters),
        )
        .unwrap();

        let mut rows = Vec::new();
        let mut times = Vec::new();
        for (name, strategy) in strategies {
            let r = evaluate_with_truth(
                |q| {
                    vaq.search_with(q, k, strategy)
                        .expect("search")
                        .0
                        .iter()
                        .map(|x| x.index)
                        .collect()
                },
                &ds.queries,
                &truth,
                k,
            );
            // Work counters for one representative query.
            let (_, stats) = vaq.search_with(ds.queries.row(0), k, strategy).expect("search");
            rows.push(vec![
                name.into(),
                format!("{:.4}", r.0),
                fmt_secs(r.2),
                format!("{}", stats.vectors_visited),
                format!("{}", stats.lookups),
            ]);
            times.push(r.2);
            results.push(MethodResult {
                method: name.into(),
                dataset: ds.name.clone(),
                code_bits: vaq.code_bits(),
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs: 0.0,
                params: format!("ti_clusters={ti_clusters}"),
            });
        }
        print_table(
            &["strategy", "recall@100", "query time", "vectors visited (q0)", "lookups (q0)"],
            &rows,
        );
        let heap = times[0];
        println!(
            "speedups vs Heap: EA {:.1}×, TI+EA-0.25 {:.1}×, TI+EA-0.1 {:.1}×\n",
            heap / times[1],
            heap / times[2],
            heap / times[3]
        );
        per_dataset_speedups.push((
            ds.name.clone(),
            heap / times[1],
            heap / times[2],
            heap / times[3],
        ));
    }

    let avg = |f: fn(&(String, f64, f64, f64)) -> f64| {
        per_dataset_speedups.iter().map(f).sum::<f64>() / per_dataset_speedups.len() as f64
    };
    println!(
        "Average speedups vs Heap — EA {:.1}× (paper 2.3×), TI+EA-0.25 {:.1}× (paper 5×), \
         TI+EA-0.1 {:.1}× (paper 8.7×)",
        avg(|r| r.1),
        avg(|r| r.2),
        avg(|r| r.3)
    );
    write_json(&args.out_dir, "fig07_pruning_ablation.json", &results).expect("write results");
}
