//! **Figure 11** — VAQ against the scalable series indexes — iSAX2+ and
//! DSTree in their NG (no-guarantee) and Epsilon variants — and against
//! IMI+OPQ, on the series-style workloads (§V-E).
//!
//! All methods contribute recall/time operating points by sweeping their
//! quality knob (VAQ: visit fraction; iSAX2+/DSTree: leaves visited or ε;
//! IMI: candidate quota), mirroring the paper's parameter sweeps.
//!
//! Paper shape to reproduce: VAQ's speedup@recall beats the tree indexes;
//! IMI+OPQ accelerates OPQ but loses recall versus the exhaustive scan.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig11_index_comparison`

use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};
use vaq_index::dstree::{DsTree, DsTreeConfig};
use vaq_index::imi::{Imi, ImiConfig};
use vaq_index::isax::{IsaxConfig, IsaxIndex};
use vaq_index::search_with_rerank;
use vaq_index::TraversalParams;
use vaq_metrics::ranking::{time_at_recall, OperatingPoint};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(40_000);
    let nq = args.queries(50);
    let k = 100;
    println!("Figure 11: VAQ vs iSAX2+ / DSTree / IMI+OPQ (n = {n}, queries = {nq})\n");

    let specs = [SyntheticSpec::sald_like(), SyntheticSpec::seismic_like()];
    let mut results: Vec<MethodResult> = Vec::new();

    for spec in &specs {
        let ds = spec.generate(n, nq, args.seed);
        let truth = exact_knn(&ds.data, &ds.queries, k);
        println!("== {} ==", ds.name);
        let mut rows = Vec::new();
        let mut curves: Vec<(String, Vec<OperatingPoint>)> = Vec::new();

        let record = |method: &str,
                      params: String,
                      train: f64,
                      r: (f64, f64, f64),
                      rows: &mut Vec<Vec<String>>,
                      results: &mut Vec<MethodResult>| {
            rows.push(vec![
                method.into(),
                params.clone(),
                format!("{:.4}", r.0),
                fmt_secs(r.2),
                fmt_secs(train),
            ]);
            results.push(MethodResult {
                method: method.into(),
                dataset: ds.name.clone(),
                code_bits: 0,
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs: train,
                params,
            });
        };

        // VAQ sweep.
        let budget = 128usize.min((ds.dim() / 8) * 13).max(16 * 4);
        let m = 16usize;
        let t = std::time::Instant::now();
        let vaq = Vaq::train(
            &ds.data,
            &VaqConfig::new(budget, m)
                .with_seed(args.seed)
                .with_ti_clusters((n / 100).clamp(64, 1000)),
        )
        .unwrap();
        let vaq_train = t.elapsed().as_secs_f64();
        let mut vaq_curve = Vec::new();
        // Following the paper's protocol, quantization methods retrieve a
        // larger pool and re-rank it with the original vectors.
        for frac in [0.05f64, 0.1, 0.25, 0.5, 1.0] {
            let r = evaluate_with_truth(
                |q| {
                    search_with_rerank(&ds.data, q, k, 5, |qq, kk| {
                        vaq.search_with(qq, kk, SearchStrategy::TiEa { visit_frac: frac })
                            .expect("search")
                            .0
                            .iter()
                            .map(|x| x.index)
                            .collect()
                    })
                    .iter()
                    .map(|x| x.index)
                    .collect()
                },
                &ds.queries,
                &truth,
                k,
            );
            vaq_curve.push((r.0, r.2));
            record("VAQ", format!("visit={frac}+rerank"), vaq_train, r, &mut rows, &mut results);
        }
        curves.push(("VAQ".into(), vaq_curve));

        // iSAX2+ sweep: NG leaves + epsilon.
        let t = std::time::Instant::now();
        let isax = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        let isax_train = t.elapsed().as_secs_f64();
        let mut isax_curve = Vec::new();
        for (label, params) in [
            ("NG-1", TraversalParams::ng(1)),
            ("NG-10", TraversalParams::ng(10)),
            ("NG-100", TraversalParams::ng(100)),
            ("eps-2", TraversalParams::epsilon(2.0)),
            ("eps-0.5", TraversalParams::epsilon(0.5)),
        ] {
            let r = evaluate_with_truth(
                |q| isax.search(q, k, params).iter().map(|x| x.index).collect(),
                &ds.queries,
                &truth,
                k,
            );
            isax_curve.push((r.0, r.2));
            record("iSAX2+", label.into(), isax_train, r, &mut rows, &mut results);
        }
        curves.push(("iSAX2+".into(), isax_curve));

        // DSTree sweep.
        let t = std::time::Instant::now();
        let dstree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        let dstree_train = t.elapsed().as_secs_f64();
        let mut ds_curve = Vec::new();
        for (label, params) in [
            ("NG-1", TraversalParams::ng(1)),
            ("NG-10", TraversalParams::ng(10)),
            ("NG-100", TraversalParams::ng(100)),
            ("eps-2", TraversalParams::epsilon(2.0)),
            ("eps-0.5", TraversalParams::epsilon(0.5)),
        ] {
            let r = evaluate_with_truth(
                |q| dstree.search(q, k, params).iter().map(|x| x.index).collect(),
                &ds.queries,
                &truth,
                k,
            );
            ds_curve.push((r.0, r.2));
            record("DSTree", label.into(), dstree_train, r, &mut rows, &mut results);
        }
        curves.push(("DSTree".into(), ds_curve));

        // IMI+OPQ sweep.
        let t = std::time::Instant::now();
        let mut imi_cfg = ImiConfig::new(m);
        imi_cfg.opq = vaq_baselines::opq::OpqConfig::new(m).with_bits((budget / m).clamp(1, 8));
        let imi = Imi::build(&ds.data, &imi_cfg).unwrap();
        let imi_train = t.elapsed().as_secs_f64();
        let mut imi_curve = Vec::new();
        for quota in [n / 100, n / 20, n / 4] {
            let r = evaluate_with_truth(
                |q| {
                    search_with_rerank(&ds.data, q, k, 5, |qq, kk| {
                        imi.search_with_candidates(qq, kk, quota).iter().map(|x| x.index).collect()
                    })
                    .iter()
                    .map(|x| x.index)
                    .collect()
                },
                &ds.queries,
                &truth,
                k,
            );
            imi_curve.push((r.0, r.2));
            record("IMI+OPQ", format!("T={quota}+rerank"), imi_train, r, &mut rows, &mut results);
        }
        let _ = imi.occupied_cells();
        curves.push(("IMI+OPQ".into(), imi_curve));

        print_table(&["method", "config", "recall@100", "query time", "build time"], &rows);

        // Speedup@recall table at moderate targets.
        println!("\ntime@recall (lower is better):");
        let mut srows = Vec::new();
        for target in [0.5f64, 0.7, 0.8] {
            let mut row = vec![format!("{target}")];
            for (name, curve) in &curves {
                row.push(match time_at_recall(curve, target) {
                    Some(t) => format!("{} ({name})", fmt_secs(t)),
                    None => format!("unreachable ({name})"),
                });
            }
            srows.push(row);
        }
        print_table(&["target recall", "VAQ", "iSAX2+", "DSTree", "IMI+OPQ"], &srows);
        println!();
    }
    write_json(&args.out_dir, "fig11_index_comparison.json", &results).expect("write results");
}
