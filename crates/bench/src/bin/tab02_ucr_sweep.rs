//! **Table II** — average Recall@5/@10 and MAP@5/@10 over the 128
//! medium-scale datasets for Bolt, PQ, OPQ, and VAQ at budgets
//! (64 bits, 16 segments) and (128 bits, 32 segments) (§V-D).
//!
//! Also emits the per-dataset Recall@5 table consumed by
//! `fig10_critical_difference` and runs the paper's pairwise Wilcoxon
//! tests (99% confidence).
//!
//! Paper shape to reproduce: VAQ > OPQ > PQ > Bolt at every budget; the
//! Wilcoxon test confirms VAQ's edge; VAQ-64 hangs with OPQ-128.
//!
//! Run: `cargo run -p vaq-bench --release --bin tab02_ucr_sweep`

use vaq_baselines::bolt::{Bolt, BoltConfig};
use vaq_baselines::opq::{Opq, OpqConfig};
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_baselines::AnnIndex;
use vaq_bench::{print_table, write_json, ExpArgs, Json, ToJson};
use vaq_core::{Vaq, VaqConfig};
use vaq_dataset::{exact_knn, ucr_like_archive};
use vaq_metrics::{map_at_k, recall_at_k, wilcoxon_signed_rank};

/// Per-(method, budget) scores across the archive, used by Figure 10.
pub struct ArchiveScores {
    pub methods: Vec<String>,
    /// `recall5[method][dataset]`
    pub recall5: Vec<Vec<f64>>,
    pub datasets: Vec<String>,
}

impl ToJson for ArchiveScores {
    fn to_json(&self) -> Json {
        Json::obj([
            ("methods", self.methods.to_json()),
            ("recall5", self.recall5.to_json()),
            ("datasets", self.datasets.to_json()),
        ])
    }
}

fn main() {
    let args = ExpArgs::parse();
    let n_train = args.size(150);
    let n_test = args.queries(20);
    let k = 10;
    println!("Table II: 128 medium-scale datasets (train = {n_train}, queries = {n_test} each)\n");

    let archive = ucr_like_archive(n_train, n_test, args.seed);
    let configs = [(64usize, 16usize), (128, 32)];
    // methods × configs scores per dataset.
    let method_names: Vec<String> = configs
        .iter()
        .flat_map(|&(b, _)| ["Bolt", "PQ", "OPQ", "VAQ"].iter().map(move |m| format!("{m}-{b}")))
        .collect();
    let mut recall5: Vec<Vec<f64>> = vec![Vec::new(); method_names.len()];
    let mut recall10: Vec<Vec<f64>> = vec![Vec::new(); method_names.len()];
    let mut map5: Vec<Vec<f64>> = vec![Vec::new(); method_names.len()];
    let mut map10: Vec<Vec<f64>> = vec![Vec::new(); method_names.len()];
    let mut dataset_names = Vec::new();

    for (di, ds) in archive.iter().enumerate() {
        dataset_names.push(ds.name.clone());
        let truth = exact_knn(&ds.data, &ds.queries, k);
        let mut mi = 0;
        for &(budget, m) in &configs {
            let m = m.min(ds.dim() / 2).max(2);
            let m_even = m - (m % 2);
            let searches: Vec<Box<dyn Fn(&[f32]) -> Vec<u32>>> = {
                let bolt = Bolt::train(&ds.data, &BoltConfig::new(m_even)).unwrap();
                let pq =
                    Pq::train(&ds.data, &PqConfig::new(m).with_bits((budget / m).clamp(1, 12)))
                        .unwrap();
                let opq =
                    Opq::train(&ds.data, &OpqConfig::new(m).with_bits((budget / m).clamp(1, 12)))
                        .unwrap();
                let vaq = Vaq::train(
                    &ds.data,
                    &VaqConfig::new(budget.min(m * 13), m).with_seed(args.seed).with_ti_clusters(0),
                )
                .unwrap();
                vec![
                    Box::new(move |q: &[f32]| bolt.search(q, k).iter().map(|x| x.index).collect()),
                    Box::new(move |q: &[f32]| pq.search(q, k).iter().map(|x| x.index).collect()),
                    Box::new(move |q: &[f32]| opq.search(q, k).iter().map(|x| x.index).collect()),
                    Box::new(move |q: &[f32]| {
                        vaq.search_with(q, k, vaq_core::SearchStrategy::FullScan)
                            .expect("search")
                            .0
                            .iter()
                            .map(|x| x.index)
                            .collect()
                    }),
                ]
            };
            for search in &searches {
                let retrieved: Vec<Vec<u32>> =
                    (0..ds.queries.rows()).map(|q| search(ds.queries.row(q))).collect();
                recall5[mi].push(recall_at_k(&retrieved, &truth, 5));
                recall10[mi].push(recall_at_k(&retrieved, &truth, 10));
                map5[mi].push(map_at_k(&retrieved, &truth, 5));
                map10[mi].push(map_at_k(&retrieved, &truth, 10));
                mi += 1;
            }
        }
        if (di + 1) % 32 == 0 {
            println!("  ... {} / {} datasets done", di + 1, archive.len());
        }
    }

    // Averages table (the paper's Table II).
    println!();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut rows = Vec::new();
    for (mi, name) in method_names.iter().enumerate() {
        let (budget, _) = if mi < 4 { configs[0] } else { configs[1] };
        let seg = if mi < 4 { configs[0].1 } else { configs[1].1 };
        rows.push(vec![
            format!("{budget}, {seg}"),
            name.split('-').next().unwrap().to_string(),
            format!("{:.5}", avg(&recall5[mi])),
            format!("{:.5}", avg(&recall10[mi])),
            format!("{:.5}", avg(&map5[mi])),
            format!("{:.5}", avg(&map10[mi])),
        ]);
    }
    print_table(&["Budget, Seg", "Method", "Rec@5", "Rec@10", "MAP@5", "MAP@10"], &rows);

    // Pairwise Wilcoxon tests at 99% confidence (paper protocol).
    println!("\nWilcoxon signed-rank (Recall@5, 99% confidence):");
    let pairs = [
        ("VAQ-64", "OPQ-64"),
        ("VAQ-128", "OPQ-128"),
        ("VAQ-64", "OPQ-128"),
        ("VAQ-64", "PQ-128"),
        ("OPQ-128", "PQ-128"),
    ];
    for (a, b) in pairs {
        let ia = method_names.iter().position(|m| m == a).unwrap();
        let ib = method_names.iter().position(|m| m == b).unwrap();
        let w = wilcoxon_signed_rank(&recall5[ia], &recall5[ib]);
        println!(
            "  {a} vs {b}: wins {}–{}, z = {:+.2}, p = {:.2e} → {}",
            w.wins_a,
            w.wins_b,
            w.z,
            w.p_value,
            if w.p_value < 0.01 {
                if w.z > 0.0 {
                    "A significantly better"
                } else {
                    "B significantly better"
                }
            } else {
                "no significant difference"
            }
        );
    }

    let scores = ArchiveScores { methods: method_names, recall5, datasets: dataset_names };
    write_json(&args.out_dir, "tab02_ucr_scores.json", &scores).expect("write results");
}
