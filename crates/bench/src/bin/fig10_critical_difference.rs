//! **Figure 10** — the critical-difference diagram over the 128
//! medium-scale datasets: Friedman test followed by the post-hoc Nemenyi
//! test at 95% confidence on Recall@5 (§V-D).
//!
//! Consumes the per-dataset scores written by `tab02_ucr_sweep`
//! (`results/tab02_ucr_scores.json`); run that binary first.
//!
//! Paper shape to reproduce: VAQ-128 ranked first and significantly better
//! than everything; VAQ-64 and OPQ-128 statistically tied (the "half
//! budget" headline); VAQ-64 significantly better than PQ-128.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig10_critical_difference`

use vaq_bench::{print_table, write_json, ExpArgs, Json, ToJson};
use vaq_metrics::ranking::{nemenyi_critical_difference, nemenyi_groups};
use vaq_metrics::stats::friedman_test;

struct ArchiveScores {
    methods: Vec<String>,
    recall5: Vec<Vec<f64>>,
    datasets: Vec<String>,
}

impl ArchiveScores {
    fn from_json(value: &Json) -> Result<ArchiveScores, String> {
        let strings = |key: &str| -> Result<Vec<String>, String> {
            value
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing array field '{key}'"))?
                .iter()
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| format!("non-string in '{key}'"))
                })
                .collect()
        };
        let recall5 = value
            .get("recall5")
            .and_then(Json::as_array)
            .ok_or("missing array field 'recall5'")?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| "non-array row in 'recall5'".to_string())?
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| "non-number in 'recall5'".to_string()))
                    .collect()
            })
            .collect::<Result<Vec<Vec<f64>>, String>>()?;
        Ok(ArchiveScores { methods: strings("methods")?, recall5, datasets: strings("datasets")? })
    }
}

fn main() {
    let args = ExpArgs::parse();
    let path = args.out_dir.join("tab02_ucr_scores.json");
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing {} — run `cargo run -p vaq-bench --release --bin tab02_ucr_sweep` first",
            path.display()
        )
    });
    let parsed = Json::parse(&raw).expect("parse scores");
    let scores = ArchiveScores::from_json(&parsed).expect("decode scores");
    let n = scores.datasets.len();
    let k = scores.methods.len();
    println!("Figure 10: Friedman + Nemenyi over {n} datasets, {k} method/budget pairs\n");

    let fr = friedman_test(&scores.recall5);
    println!(
        "Friedman χ² = {:.2} (df = {}), p = {:.3e} → {}",
        fr.chi_square,
        fr.df,
        fr.p_value,
        if fr.p_value < 0.05 {
            "methods differ significantly"
        } else {
            "no significant differences"
        }
    );

    let cd = nemenyi_critical_difference(k, n);
    println!("Nemenyi critical difference (α = 0.05): {cd:.3}\n");

    // Rank table, best first.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| fr.average_ranks[a].total_cmp(&fr.average_ranks[b]));
    let rows: Vec<Vec<String>> = order
        .iter()
        .map(|&i| vec![scores.methods[i].clone(), format!("{:.3}", fr.average_ranks[i])])
        .collect();
    print_table(&["method", "average rank (1 = best)"], &rows);

    // ASCII critical-difference diagram.
    println!(
        "\nCritical-difference diagram (rank axis, ═ groups are not significantly different):"
    );
    let min_rank = fr.average_ranks[order[0]];
    let max_rank = fr.average_ranks[*order.last().unwrap()];
    let width = 60.0;
    let pos = |r: f64| (((r - min_rank) / (max_rank - min_rank + 1e-9)) * width) as usize;
    for &i in &order {
        let p = pos(fr.average_ranks[i]);
        println!("{}• {} ({:.2})", " ".repeat(p), scores.methods[i], fr.average_ranks[i]);
    }
    let groups = nemenyi_groups(&fr.average_ranks, cd);
    for g in &groups {
        let lo = g.iter().map(|&i| pos(fr.average_ranks[i])).min().unwrap();
        let hi = g.iter().map(|&i| pos(fr.average_ranks[i])).max().unwrap();
        let names: Vec<&str> = g.iter().map(|&i| scores.methods[i].as_str()).collect();
        println!("{}{} {}", " ".repeat(lo), "═".repeat((hi - lo).max(1) + 1), names.join(" ≈ "));
    }

    // Shape checks against the paper's Figure 10.
    let rank_of =
        |name: &str| scores.methods.iter().position(|m| m == name).map(|i| fr.average_ranks[i]);
    if let (Some(v128), Some(v64), Some(o128), Some(p128)) =
        (rank_of("VAQ-128"), rank_of("VAQ-64"), rank_of("OPQ-128"), rank_of("PQ-128"))
    {
        println!("\nShape checks:");
        println!(
            "  VAQ-128 first overall: {}",
            if (v128 - fr.average_ranks[order[0]]).abs() < 1e-9 { "yes" } else { "NO" }
        );
        println!(
            "  VAQ-64 ≈ OPQ-128 (|Δrank| {:.2} vs CD {:.2}): {}",
            (v64 - o128).abs(),
            cd,
            if (v64 - o128).abs() <= cd { "tied (paper shape)" } else { "separated" }
        );
        println!(
            "  VAQ-64 better than PQ-128 by more than CD: {}",
            if p128 - v64 > cd { "yes" } else { "NO" }
        );
    }

    let average_ranks: Vec<(String, f64)> =
        order.iter().map(|&i| (scores.methods[i].clone(), fr.average_ranks[i])).collect();
    let out = Json::obj([
        ("average_ranks", average_ranks.to_json()),
        ("chi_square", fr.chi_square.to_json()),
        ("p_value", fr.p_value.to_json()),
        ("critical_difference", cd.to_json()),
    ]);
    write_json(&args.out_dir, "fig10_critical_difference.json", &out).expect("write results");
}
