//! **Figure 3** — the motivating data analysis: example series from the
//! CBF (high-noise) and SLC (low-noise) families, and the percentage of
//! overall variance explained by the first 20 principal components of
//! each, as captured by the eigenvalues (paper Eq. 6).
//!
//! Paper shape to reproduce: SLC's variance concentrates in the first few
//! PCs far more than CBF's (the paper reads ~60% vs ~40% in the first
//! PCs), which is exactly the skew VAQ's adaptive allocation exploits.
//!
//! Run: `cargo run -p vaq-bench --release --bin fig03_variance_profiles`

use vaq_bench::{print_table, write_json, ExpArgs, Json, ToJson};
use vaq_dataset::ucr::UcrFamily;
use vaq_linalg::Pca;

struct Profile {
    dataset: String,
    explained_pct_first_20: Vec<f64>,
    cumulative_pct_first_3: f64,
    example_series: Vec<Vec<f32>>,
}

impl ToJson for Profile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.to_json()),
            ("explained_pct_first_20", self.explained_pct_first_20.to_json()),
            ("cumulative_pct_first_3", self.cumulative_pct_first_3.to_json()),
            ("example_series", self.example_series.to_json()),
        ])
    }
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(600);
    println!("Figure 3: variance profiles of CBF vs SLC (n = {n})\n");

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (family, len) in [(UcrFamily::Cbf, 128usize), (UcrFamily::SlcLike, 1024)] {
        let ds = family.generate(len, n, 3, args.seed);
        let pca = Pca::fit(&ds.data).expect("pca");
        let ratio = pca.explained_variance_ratio();
        let first20: Vec<f64> = ratio.iter().take(20).map(|v| v * 100.0).collect();
        let cum3: f64 = ratio.iter().take(3).sum::<f64>() * 100.0;

        // One example per class (paper Figures 3a/3b).
        let examples: Vec<Vec<f32>> = (0..3).map(|c| ds.data.row(c).to_vec()).collect();

        rows.push(vec![
            ds.name.clone(),
            format!("{:.1}%", first20[0]),
            format!("{:.1}%", cum3),
            format!("{:.1}%", first20.iter().sum::<f64>()),
        ]);
        out.push(Profile {
            dataset: ds.name.clone(),
            explained_pct_first_20: first20.clone(),
            cumulative_pct_first_3: cum3,
            example_series: examples,
        });

        println!("{} — % variance per PC (first 20):", ds.name);
        let bars: Vec<String> = first20
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                format!("  PC{:<2} {:>5.1}% {}", i + 1, p, "#".repeat((p * 1.5) as usize))
            })
            .collect();
        println!("{}\n", bars.join("\n"));
    }

    print_table(&["dataset", "PC1", "top-3 cumulative", "top-20 cumulative"], &rows);

    let slc_cum = out[1].cumulative_pct_first_3;
    let cbf_cum = out[0].cumulative_pct_first_3;
    println!(
        "\nShape check: SLC top-3 {:.1}% > CBF top-3 {:.1}% → {}",
        slc_cum,
        cbf_cum,
        if slc_cum > cbf_cum { "REPRODUCED" } else { "NOT reproduced" }
    );
    write_json(&args.out_dir, "fig03_variance_profiles.json", &out).expect("write results");
}
