//! **Figure 8** — VAQ against the hardware-accelerated scanners, Bolt and
//! PQ Fast Scan, as recall/runtime operating curves (§V-B).
//!
//! VAQ's operating points come from the TI visit fraction (0.05 → 1.0);
//! Bolt and PQFS are fixed-scan methods, so each contributes one point at
//! its budget. Speedup@recall is computed by interpolating each curve, as
//! the paper does.
//!
//! Paper shape to reproduce: Bolt is the fastest scan but caps at low
//! recall (4-bit codebooks); PQFS keeps PQ-grade recall at moderate speed;
//! VAQ dominates speedup@recall at high recall (paper: up to 14× vs Bolt,
//! up to 105× vs PQFS).
//!
//! Run: `cargo run -p vaq-bench --release --bin fig08_hw_accelerated`

use vaq_baselines::bolt::{Bolt, BoltConfig};
use vaq_baselines::pqfs::{PqFastScan, PqfsConfig};
use vaq_baselines::AnnIndex;
use vaq_bench::{evaluate_with_truth, fmt_secs, print_table, write_json, ExpArgs, MethodResult};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::{exact_knn, SyntheticSpec};
use vaq_metrics::ranking::{speedup_at_recall, OperatingPoint};

fn main() {
    let args = ExpArgs::parse();
    let n = args.size(40_000);
    let nq = args.queries(50);
    let k = 100;
    const BUDGET: usize = 256;
    println!("Figure 8: VAQ vs hardware-accelerated scans (n = {n}, {BUDGET}-bit budget)\n");

    let specs =
        [SyntheticSpec::sift_like(), SyntheticSpec::deep_like(), SyntheticSpec::sald_like()];
    let mut results: Vec<MethodResult> = Vec::new();

    for spec in &specs {
        let ds = spec.generate(n, nq, args.seed);
        let m = 64usize.min(ds.dim() / 2);
        let truth = exact_knn(&ds.data, &ds.queries, k);
        println!("== {} ==", ds.name);
        let mut rows = Vec::new();

        // Bolt: one operating point.
        let bolt = Bolt::train(&ds.data, &BoltConfig::new(m)).unwrap();
        let r_bolt = evaluate_with_truth(
            |q| bolt.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        rows.push(vec![
            "Bolt".into(),
            "4-bit".into(),
            format!("{:.4}", r_bolt.0),
            fmt_secs(r_bolt.2),
        ]);
        let bolt_curve: Vec<OperatingPoint> = vec![(r_bolt.0, r_bolt.2)];

        // PQFS: one operating point (8-bit dictionaries).
        let pqfs = PqFastScan::train(&ds.data, &PqfsConfig::new(BUDGET / 8)).unwrap();
        let r_pqfs = evaluate_with_truth(
            |q| pqfs.search(q, k).iter().map(|x| x.index).collect(),
            &ds.queries,
            &truth,
            k,
        );
        rows.push(vec![
            "PQFS".into(),
            "8-bit".into(),
            format!("{:.4}", r_pqfs.0),
            fmt_secs(r_pqfs.2),
        ]);
        let pqfs_curve: Vec<OperatingPoint> = vec![(r_pqfs.0, r_pqfs.2)];

        // VAQ: visit-fraction sweep.
        let vaq = Vaq::train(
            &ds.data,
            &VaqConfig::new(BUDGET, m)
                .with_seed(args.seed)
                .with_ti_clusters((n / 100).clamp(64, 1000)),
        )
        .unwrap();
        let mut vaq_curve: Vec<OperatingPoint> = Vec::new();
        for frac in [0.05f64, 0.1, 0.25, 0.5, 1.0] {
            let r = evaluate_with_truth(
                |q| {
                    vaq.search_with(q, k, SearchStrategy::TiEa { visit_frac: frac })
                        .expect("search")
                        .0
                        .iter()
                        .map(|x| x.index)
                        .collect()
                },
                &ds.queries,
                &truth,
                k,
            );
            rows.push(vec![
                "VAQ".into(),
                format!("visit={frac}"),
                format!("{:.4}", r.0),
                fmt_secs(r.2),
            ]);
            vaq_curve.push((r.0, r.2));
            results.push(MethodResult {
                method: "VAQ".into(),
                dataset: ds.name.clone(),
                code_bits: vaq.code_bits(),
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs: 0.0,
                params: format!("visit={frac}"),
            });
        }
        for (method, r, bits) in
            [("Bolt", r_bolt, bolt.code_bits()), ("PQFS", r_pqfs, pqfs.code_bits())]
        {
            results.push(MethodResult {
                method: method.into(),
                dataset: ds.name.clone(),
                code_bits: bits,
                recall: r.0,
                map: r.1,
                query_secs: r.2,
                train_secs: 0.0,
                params: String::new(),
            });
        }

        print_table(&["method", "config", "recall@100", "query time"], &rows);
        // Speedup@recall at each rival's achievable recall.
        if let Some(s) = speedup_at_recall(&vaq_curve, &bolt_curve, r_bolt.0) {
            println!("speedup@recall({:.3}) vs Bolt: {:.1}×", r_bolt.0, s);
        }
        if let Some(s) = speedup_at_recall(&vaq_curve, &pqfs_curve, r_pqfs.0) {
            println!("speedup@recall({:.3}) vs PQFS: {:.1}×", r_pqfs.0, s);
        }
        println!();
    }
    write_json(&args.out_dir, "fig08_hw_accelerated.json", &results).expect("write results");
}
