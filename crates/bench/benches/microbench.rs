//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! the eigensolver behind VarPCA, dictionary learning, the MILP bit
//! allocator, and — most importantly — the per-query scan kernels whose
//! relative costs drive every runtime figure in the paper (full ADC scan
//! vs early abandoning vs TI+EA vs Bolt's integer scan).
//!
//! Run: `cargo bench -p vaq-bench`

use criterion::{BatchSize, Criterion};
use std::time::Duration;
use vaq_baselines::bolt::{Bolt, BoltConfig};
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_baselines::AnnIndex;
use vaq_bench::{write_json, Json};
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_dataset::SyntheticSpec;
use vaq_linalg::{covariance_centered, sym_eigen, TableArena};
use vaq_milp::{solve_lp, Cmp, Model, Objective};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("vaq");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g
}

fn bench_eigen(c: &mut Criterion) {
    let ds = SyntheticSpec::sift_like().generate(2000, 0, 1);
    let cov = covariance_centered(&ds.data).unwrap();
    let mut g = quick(c);
    g.bench_function("sym_eigen_128x128", |b| {
        b.iter(|| sym_eigen(std::hint::black_box(&cov)).unwrap())
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let ds = SyntheticSpec::deep_like().generate(4000, 0, 2);
    let mut g = quick(c);
    g.bench_function("kmeans_k64_n4000_d96", |b| {
        b.iter(|| {
            vaq_kmeans::KMeans::fit(
                std::hint::black_box(&ds.data),
                &vaq_kmeans::KMeansConfig::new(64).with_max_iters(5),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_milp(c: &mut Criterion) {
    let shares: Vec<f64> = (0..32).map(|i| (0.8f64).powi(i)).collect();
    let mut g = quick(c);
    g.bench_function("milp_bit_allocation_256b_32seg", |b| {
        b.iter(|| {
            vaq_core::allocate_bits(
                std::hint::black_box(&shares),
                256,
                1,
                13,
                vaq_core::AllocationStrategy::Adaptive,
            )
            .unwrap()
        })
    });
    g.bench_function("simplex_20x10", |b| {
        b.iter_batched(
            || {
                let mut m = Model::new(Objective::Maximize);
                let vars: Vec<usize> =
                    (0..10).map(|i| m.add_var(0.0, 10.0, 1.0 + i as f64 * 0.1)).collect();
                for r in 0..20 {
                    let coeffs: Vec<(usize, f64)> = vars
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, 1.0 + ((i + r) % 3) as f64))
                        .collect();
                    m.add_constraint(coeffs, Cmp::Le, 50.0 + r as f64);
                }
                m
            },
            |m| solve_lp(std::hint::black_box(&m)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_scan_kernels(c: &mut Criterion) {
    // The paper's runtime story in microcosm: one query against 20k codes.
    let n = 20_000;
    let ds = SyntheticSpec::sift_like().generate(n, 1, 3);
    let q = ds.queries.row(0);
    let k = 100;

    let pq = Pq::train(&ds.data, &PqConfig::new(16).with_bits(8)).unwrap();
    let bolt = Bolt::train(&ds.data, &BoltConfig::new(16)).unwrap();
    let vaq =
        Vaq::train(&ds.data, &VaqConfig::new(128, 16).with_seed(3).with_ti_clusters(200)).unwrap();

    let mut g = quick(c);
    g.bench_function("scan_pq_adc_20k", |b| b.iter(|| pq.search_adc(std::hint::black_box(q), k)));
    g.bench_function("scan_bolt_u8_20k", |b| b.iter(|| bolt.search(std::hint::black_box(q), k)));
    g.bench_function("scan_vaq_full_20k", |b| {
        b.iter(|| vaq.search_with(std::hint::black_box(q), k, SearchStrategy::FullScan))
    });
    g.bench_function("scan_vaq_ea_20k", |b| {
        b.iter(|| vaq.search_with(std::hint::black_box(q), k, SearchStrategy::EarlyAbandon))
    });
    g.bench_function("scan_vaq_tiea25_20k", |b| {
        b.iter(|| {
            vaq.search_with(std::hint::black_box(q), k, SearchStrategy::TiEa { visit_frac: 0.25 })
        })
    });
    g.bench_function("scan_vaq_tiea10_20k", |b| {
        b.iter(|| {
            vaq.search_with(std::hint::black_box(q), k, SearchStrategy::TiEa { visit_frac: 0.10 })
        })
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let ds = SyntheticSpec::sift_like().generate(2000, 16, 4);
    let pq = Pq::train(&ds.data, &PqConfig::new(16).with_bits(8)).unwrap();
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(128, 16).with_ti_clusters(0)).unwrap();
    let mut g = quick(c);
    g.bench_function("encode_one_pq_128d", |b| {
        b.iter(|| pq.encode(std::hint::black_box(ds.queries.row(0))))
    });
    g.bench_function("project_and_encode_one_vaq_128d", |b| {
        b.iter(|| {
            let p = vaq.project_query(std::hint::black_box(ds.queries.row(0))).unwrap();
            vaq.encoder().encode(&p)
        })
    });
    g.finish();
}

#[allow(deprecated)] // benchmarks the deprecated nested-table path on purpose
fn bench_lookup_tables(c: &mut Criterion) {
    // The tentpole comparison: per-query nested `Vec<Vec<f32>>` table
    // allocation vs refilling one flat `TableArena` in place, single-query
    // and batched (64 queries through the same staging buffer).
    let ds = SyntheticSpec::sift_like().generate(2000, 64, 5);
    let vaq = Vaq::train(&ds.data, &VaqConfig::new(128, 16).with_ti_clusters(0)).unwrap();
    let enc = vaq.encoder();
    let projected: Vec<Vec<f32>> =
        (0..ds.queries.rows()).map(|qi| vaq.project_query(ds.queries.row(qi)).unwrap()).collect();
    let q0 = projected[0].as_slice();

    let mut g = quick(c);
    g.bench_function("tables_nested_alloc_single", |b| {
        b.iter(|| enc.lookup_tables(std::hint::black_box(q0)))
    });
    let mut arena = TableArena::new();
    enc.fill_tables(q0, &mut arena); // pre-size: measure the steady state
    g.bench_function("tables_arena_refill_single", |b| {
        b.iter(|| enc.fill_tables(std::hint::black_box(q0), &mut arena))
    });
    g.bench_function("tables_nested_alloc_batch64", |b| {
        b.iter(|| {
            projected
                .iter()
                .map(|q| enc.lookup_tables(std::hint::black_box(q)).len())
                .sum::<usize>()
        })
    });
    g.bench_function("tables_arena_refill_batch64", |b| {
        b.iter(|| {
            for q in &projected {
                enc.fill_tables(std::hint::black_box(q), &mut arena);
            }
            arena.num_tables()
        })
    });
    g.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_eigen(&mut criterion);
    bench_kmeans(&mut criterion);
    bench_milp(&mut criterion);
    bench_scan_kernels(&mut criterion);
    bench_encode(&mut criterion);
    bench_lookup_tables(&mut criterion);

    // Persist every summary so regressions (e.g. the arena staging path
    // getting slower than the nested allocation it replaced) are diffable.
    let rows: Vec<Json> = criterion
        .summaries()
        .iter()
        .map(|s| {
            Json::obj([
                ("id", Json::Str(s.id.clone())),
                ("mean_ns", Json::Num(s.mean_ns)),
                ("best_ns", Json::Num(s.best_ns)),
                ("samples", Json::Num(s.samples as f64)),
            ])
        })
        .collect();
    write_json(std::path::Path::new("results"), "microbench.json", &rows).expect("write results");
}
