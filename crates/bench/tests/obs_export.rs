//! Round-trip tests for the obs exports: a profiled run's snapshot must
//! survive its own JSON rendering through [`vaq_bench::Json`]'s parser,
//! and the Prometheus text must parse back line-by-line into the same
//! numbers. One test function: the obs registries are process-global.

use vaq_bench::Json;
use vaq_core::obs;
use vaq_core::{SearchStrategy, Vaq, VaqConfig};
use vaq_linalg::Matrix;

/// Parses Prometheus text exposition into `(metric, labels, value)`
/// triples, skipping comments. Labels come back as the raw `k="v"` body.
fn parse_prometheus(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_labels, value) = line.rsplit_once(' ').expect("metric line has a value");
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => (n, l.strip_suffix('}').expect("closing brace")),
            None => (name_labels, ""),
        };
        out.push((
            name.to_string(),
            labels.to_string(),
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in line: {line}")),
        ));
    }
    out
}

fn lookup(metrics: &[(String, String, f64)], name: &str, labels: &str) -> Option<f64> {
    metrics.iter().find(|(n, l, _)| n == name && l == labels).map(|&(_, _, v)| v)
}

#[test]
fn profiled_run_round_trips_through_both_exports() {
    obs::set_enabled(true);
    obs::reset();

    // A miniature profiled workload: train, then answer queries under two
    // strategies so spans, counters, and the latency histogram all fill.
    let rows: Vec<Vec<f32>> = (0..240)
        .map(|i| {
            let t = i as f32 / 16.0;
            (0..8).map(|j| t * (j as f32 + 1.0) + ((i * 7 + j) % 5) as f32 * 0.25).collect()
        })
        .collect();
    let data = Matrix::from_rows(&rows);
    let vaq = Vaq::train(&data, &VaqConfig::new(16, 4).with_ti_clusters(8)).unwrap();
    for qi in 0..6 {
        vaq.search_with(data.row(qi * 31), 5, SearchStrategy::EarlyAbandon).unwrap();
        vaq.search_with(data.row(qi * 31), 5, SearchStrategy::Quantized).unwrap();
    }
    let snap = obs::snapshot();
    obs::set_enabled(false);

    assert!(snap.spans.iter().any(|s| s.name == "train.varpca" && s.count == 1));
    assert!(snap.spans.iter().any(|s| s.name == "query.table_refill"));
    let latency = snap
        .histograms
        .iter()
        .find(|h| h.name == "query_latency")
        .expect("latency histogram recorded");
    assert_eq!(latency.count, 12);

    // --- JSON round-trip through the workspace's own parser. ---
    let doc = Json::parse(&snap.to_json()).expect("snapshot JSON must parse");
    let spans = doc.get("spans").and_then(Json::as_array).unwrap();
    assert_eq!(spans.len(), snap.spans.len());
    for (parsed, orig) in spans.iter().zip(&snap.spans) {
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some(orig.name));
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(orig.count as f64));
        assert_eq!(parsed.get("total_ns").and_then(Json::as_f64), Some(orig.total_ns as f64));
        assert_eq!(parsed.get("max_ns").and_then(Json::as_f64), Some(orig.max_ns as f64));
    }
    let counters = doc.get("counters").and_then(Json::as_array).unwrap();
    assert_eq!(counters.len(), snap.counters.len());
    for (parsed, &(name, v)) in counters.iter().zip(&snap.counters) {
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some(name));
        assert_eq!(parsed.get("value").and_then(Json::as_f64), Some(v as f64));
    }
    let hists = doc.get("histograms").and_then(Json::as_array).unwrap();
    assert_eq!(hists.len(), snap.histograms.len());
    for (parsed, orig) in hists.iter().zip(&snap.histograms) {
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some(orig.name));
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(orig.count as f64));
        assert_eq!(parsed.get("sum_ns").and_then(Json::as_f64), Some(orig.sum_ns as f64));
        let buckets = parsed.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), orig.buckets.len());
        let parsed_total: f64 =
            buckets.iter().map(|b| b.get("count").and_then(Json::as_f64).unwrap()).sum();
        assert_eq!(parsed_total, orig.count as f64, "bucket counts must sum to the total");
    }
    assert_eq!(doc.get("events_dropped").and_then(Json::as_f64), Some(snap.events_dropped as f64));

    // --- Prometheus text round-trip. ---
    let metrics = parse_prometheus(&snap.to_prometheus());
    for s in &snap.spans {
        let labels = format!("span=\"{}\"", s.name);
        assert_eq!(lookup(&metrics, "vaq_span_count_total", &labels), Some(s.count as f64));
        let secs = lookup(&metrics, "vaq_span_seconds_total", &labels).unwrap();
        assert!(
            (secs - s.total_ns as f64 / 1e9).abs() <= 1e-12 * s.total_ns as f64 + f64::EPSILON,
            "span {} seconds diverged: {secs} vs {} ns",
            s.name,
            s.total_ns
        );
    }
    for &(name, v) in &snap.counters {
        let labels = format!("name=\"{name}\"");
        assert_eq!(lookup(&metrics, "vaq_counter_total", &labels), Some(v as f64));
    }
    // Histogram buckets are cumulative, never decreasing, and end at the
    // total count; +Inf and _count agree.
    let bucket_vals: Vec<f64> = metrics
        .iter()
        .filter(|(n, l, _)| n == "vaq_query_latency_seconds_bucket" && !l.contains("+Inf"))
        .map(|&(_, _, v)| v)
        .collect();
    assert_eq!(bucket_vals.len(), latency.buckets.len());
    for w in bucket_vals.windows(2) {
        assert!(w[0] <= w[1], "cumulative buckets decreased: {w:?}");
    }
    assert_eq!(bucket_vals.last().copied(), Some(latency.count as f64));
    assert_eq!(
        lookup(&metrics, "vaq_query_latency_seconds_bucket", "le=\"+Inf\""),
        Some(latency.count as f64)
    );
    assert_eq!(lookup(&metrics, "vaq_query_latency_seconds_count", ""), Some(latency.count as f64));
}
