//! Property tests for the baseline quantizers.

use proptest::prelude::*;
use vaq_baselines::pq::{Pq, PqConfig};
use vaq_baselines::pqfs::{PqFastScan, PqfsConfig};
use vaq_baselines::util::{split_uniform, TopK};
use vaq_baselines::AnnIndex;
use vaq_linalg::{squared_euclidean, Matrix, TableArena};

fn random_matrix() -> impl Strategy<Value = Matrix> {
    (4usize..=12, 30usize..=80).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pq_codes_always_within_dictionaries(data in random_matrix()) {
        let m = 2usize;
        let pq = Pq::train(&data, &PqConfig::new(m).with_bits(3)).unwrap();
        for i in 0..data.rows() {
            for (s, &c) in pq.code(i).iter().enumerate() {
                prop_assert!((c as usize) < pq.codebooks()[s].rows());
            }
        }
    }

    #[test]
    fn pq_decode_is_best_reconstruction_per_subspace(data in random_matrix()) {
        // The assigned codeword must be the nearest dictionary item for its
        // subspace — Lloyd optimality of the assignment step (paper Eq. 3).
        let pq = Pq::train(&data, &PqConfig::new(2).with_bits(3)).unwrap();
        for i in (0..data.rows()).step_by(7) {
            let row = data.row(i);
            for (s, &(lo, hi)) in pq.ranges().iter().enumerate() {
                let assigned = pq.code(i)[s] as usize;
                let d_assigned =
                    squared_euclidean(&row[lo..hi], &pq.codebooks()[s].row(assigned)[..hi - lo]);
                for cand in 0..pq.codebooks()[s].rows() {
                    let d = squared_euclidean(
                        &row[lo..hi],
                        &pq.codebooks()[s].row(cand)[..hi - lo],
                    );
                    prop_assert!(d_assigned <= d + 1e-4,
                        "row {i} subspace {s}: assigned {d_assigned} > candidate {d}");
                }
            }
        }
    }

    #[test]
    fn adc_distance_equals_decode_distance(data in random_matrix()) {
        let pq = Pq::train(&data, &PqConfig::new(2).with_bits(3)).unwrap();
        let q = data.row(0);
        let mut arena = TableArena::new();
        pq.fill_tables(q, &mut arena);
        for i in (0..data.rows()).step_by(11) {
            let adc: f32 = pq
                .code(i)
                .iter()
                .enumerate()
                .map(|(s, &c)| arena.lookup(s, c as usize))
                .sum();
            let direct = squared_euclidean(q, &pq.decode(pq.code(i)));
            prop_assert!((adc - direct).abs() <= 1e-2 * direct.max(1.0));
        }
    }

    #[test]
    fn pqfs_always_equals_pq(data in random_matrix()) {
        let pqfs = PqFastScan::train(&data, &PqfsConfig::new(2)).unwrap();
        for qi in (0..data.rows()).step_by(13) {
            let fast: Vec<u32> =
                pqfs.search(data.row(qi), 5).iter().map(|n| n.index).collect();
            let slow: Vec<u32> =
                pqfs.inner().search_adc(data.row(qi), 5).iter().map(|n| n.index).collect();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn topk_equals_full_sort(
        distances in proptest::collection::vec(0.0f32..100.0, 1..60),
        k in 1usize..10,
    ) {
        let mut top = TopK::new(k);
        for (i, &d) in distances.iter().enumerate() {
            top.push(i as u32, d);
        }
        let got: Vec<u32> = top.into_sorted().iter().map(|n| n.index).collect();
        let mut expect: Vec<(f32, u32)> =
            distances.iter().enumerate().map(|(i, &d)| (d, i as u32)).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<u32> =
            expect.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn split_uniform_tiles_dimensions(dim in 2usize..200, m_raw in 1usize..16) {
        let m = m_raw.min(dim);
        let s = split_uniform(dim, m);
        prop_assert_eq!(s.len(), m);
        prop_assert_eq!(s[0].0, 0);
        prop_assert_eq!(s.last().unwrap().1, dim);
        for w in s.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
            prop_assert!(w[0].1 > w[0].0);
        }
        // Widths differ by at most one.
        let widths: Vec<usize> = s.iter().map(|&(lo, hi)| hi - lo).collect();
        let max = widths.iter().max().unwrap();
        let min = widths.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }
}
