//! ITQ-LSH (Gong, Lazebnik, Gordo, Perronnin — TPAMI 2012): "Iterative
//! Quantization", the hashing baseline of the paper (§IV "Baselines": "from
//! hashing, we use a state-of-the-art variant that exploits quantization,
//! namely, ITQ-LSH").
//!
//! ITQ projects data onto its top `b` principal components and then learns
//! an orthogonal rotation that minimizes the quantization error of mapping
//! the projected data to the binary hypercube `{−1, +1}^b`:
//! alternate (a) `B = sgn(V R)` and (b) the Procrustes solve
//! `R = Ū W̄ᵀ` from `SVD(Vᵀ B)`. Codes are packed bit vectors; queries are
//! ranked by Hamming distance.

use crate::util::{Neighbor, TopK};
use crate::{AnnIndex, BaselineError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_linalg::{hamming, svd, DMatrix, Matrix, Pca};

/// Configuration for [`ItqLsh::train`].
#[derive(Debug, Clone)]
pub struct ItqConfig {
    /// Code length in bits (capped at the data dimensionality).
    pub bits: usize,
    /// ITQ rotation refinement iterations (the ITQ paper uses 50).
    pub iterations: usize,
    /// Seed for the random initial rotation.
    pub seed: u64,
}

impl ItqConfig {
    /// Standard configuration for the given bit budget.
    pub fn new(bits: usize) -> Self {
        ItqConfig { bits, iterations: 50, seed: 0x5eed }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained ITQ-LSH index with packed binary codes.
#[derive(Debug, Clone)]
pub struct ItqLsh {
    pca: Pca,
    /// Learned `b×b` rotation.
    rotation: Matrix,
    /// Effective code length (≤ requested bits).
    bits: usize,
    /// Packed codes: `words_per_code` u64 words per vector.
    codes: Vec<u64>,
    words_per_code: usize,
    n: usize,
}

impl ItqLsh {
    /// Learns the projection + rotation and encodes `data`.
    pub fn train(data: &Matrix, cfg: &ItqConfig) -> Result<ItqLsh, BaselineError> {
        if data.rows() == 0 {
            return Err(BaselineError::EmptyData);
        }
        if cfg.bits == 0 {
            return Err(BaselineError::BadConfig("bits must be positive".into()));
        }
        let bits = cfg.bits.min(data.cols());
        let pca = Pca::fit(data).map_err(|e| BaselineError::BadConfig(e.to_string()))?;
        // Projected data restricted to the top `bits` components.
        let z_full = pca.transform(data).map_err(|e| BaselineError::BadConfig(e.to_string()))?;
        let keep: Vec<usize> = (0..bits).collect();
        let v = z_full.select_columns(&keep);

        // Random orthogonal init via Gram–Schmidt of a Gaussian matrix.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut rotation = random_rotation(bits, &mut rng);

        for _ in 0..cfg.iterations {
            // B = sgn(V R)
            let z = v.matmul(&rotation).expect("shape");
            // C = Vᵀ B  (b×b), then SVD → R = U Wᵀ... we need the
            // Procrustes solution of min ‖B − V R‖ which is R = Ū W̄ᵀ from
            // SVD(Vᵀ B) = Ū Σ W̄ᵀ.
            let mut vtb = DMatrix::zeros(bits, bits);
            for i in 0..v.rows() {
                let vrow = v.row(i);
                let zrow = z.row(i);
                for (a, &vv) in vrow.iter().enumerate() {
                    let base = a * bits;
                    for (bcol, &zz) in zrow.iter().enumerate() {
                        let sign = if zz >= 0.0 { 1.0 } else { -1.0 };
                        vtb.set(a, bcol, vtb.as_slice()[base + bcol] + vv as f64 * sign);
                    }
                }
            }
            match svd(&vtb) {
                Ok(s) => {
                    rotation = s.u.matmul(&s.vt).expect("shape").to_f32();
                }
                Err(_) => break,
            }
        }

        // Encode the database.
        let words_per_code = bits.div_ceil(64);
        let n = data.rows();
        let mut codes = vec![0u64; n * words_per_code];
        let z = v.matmul(&rotation).expect("shape");
        for i in 0..n {
            pack_signs(z.row(i), &mut codes[i * words_per_code..(i + 1) * words_per_code]);
        }
        Ok(ItqLsh { pca, rotation, bits, codes, words_per_code, n })
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Encodes an arbitrary vector into a packed binary code.
    pub fn encode(&self, v: &[f32]) -> Vec<u64> {
        let z = self.pca.transform_vec(v).expect("dim");
        let keep = &z[..self.bits];
        let rotated = self.rotation.project_row(keep).expect("shape");
        let mut out = vec![0u64; self.words_per_code];
        pack_signs(&rotated, &mut out);
        out
    }
}

impl AnnIndex for ItqLsh {
    fn name(&self) -> &str {
        "ITQ-LSH"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let qcode = self.encode(query);
        let mut top = TopK::new(k);
        for i in 0..self.n {
            let code = &self.codes[i * self.words_per_code..(i + 1) * self.words_per_code];
            let d = hamming(code, &qcode);
            top.push(i as u32, d as f32);
        }
        top.into_sorted()
    }

    fn code_bits(&self) -> usize {
        self.bits
    }
}

/// Packs the signs of `values` into `out` (bit set ⇔ value ≥ 0).
fn pack_signs(values: &[f32], out: &mut [u64]) {
    for w in out.iter_mut() {
        *w = 0;
    }
    for (i, &v) in values.iter().enumerate() {
        if v >= 0.0 {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// Random orthogonal matrix via Gram–Schmidt on a Gaussian matrix.
fn random_rotation(n: usize, rng: &mut StdRng) -> Matrix {
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        loop {
            let mut c: Vec<f64> = (0..n)
                .map(|_| {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                })
                .collect();
            for prev in &cols {
                let dot: f64 = c.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
                for (ci, pi) in c.iter_mut().zip(prev.iter()) {
                    *ci -= dot * pi;
                }
            }
            let norm: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-8 {
                for ci in c.iter_mut() {
                    *ci /= norm;
                }
                cols.push(c);
                break;
            }
        }
    }
    let mut m = Matrix::zeros(n, n);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            m.set(i, j, v as f32);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    #[test]
    fn rejects_bad_configs() {
        assert!(ItqLsh::train(&Matrix::zeros(0, 8), &ItqConfig::new(16)).is_err());
        let data = SyntheticSpec::deep_like().generate(50, 0, 1).data;
        assert!(ItqLsh::train(&data, &ItqConfig::new(0)).is_err());
    }

    #[test]
    fn bits_capped_at_dimensionality() {
        let data = SyntheticSpec::deep_like().generate(100, 0, 1).data; // 96-d
        let itq = ItqLsh::train(&data, &ItqConfig::new(512)).unwrap();
        assert_eq!(itq.code_bits(), 96);
    }

    #[test]
    fn identical_vectors_have_zero_hamming() {
        let data = SyntheticSpec::sift_like().generate(200, 0, 3).data;
        let itq = ItqLsh::train(&data, &ItqConfig::new(64)).unwrap();
        for i in (0..200).step_by(41) {
            let c1 = itq.encode(data.row(i));
            let c2 = &itq.codes[i * itq.words_per_code..(i + 1) * itq.words_per_code];
            assert_eq!(c1.as_slice(), c2, "stored code differs from re-encoding row {i}");
        }
    }

    #[test]
    fn search_ranks_self_first() {
        let data = SyntheticSpec::sift_like().generate(300, 0, 5).data;
        let itq = ItqLsh::train(&data, &ItqConfig::new(64)).unwrap();
        let mut self_hits = 0;
        for i in (0..300).step_by(17) {
            let res = itq.search(data.row(i), 5);
            if res.iter().any(|n| n.index == i as u32) {
                self_hits += 1;
            }
        }
        let total = (0..300).step_by(17).count();
        assert!(self_hits * 10 >= total * 7, "self-hits {self_hits}/{total}");
    }

    #[test]
    fn recall_above_chance_below_quantizers() {
        // Paper: "ITQ-LSH is not competitive in terms of accuracy despite
        // using quantization".
        let ds = SyntheticSpec::sift_like().generate(800, 25, 6);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let itq = ItqLsh::train(&ds.data, &ItqConfig::new(64)).unwrap();
        let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
            .map(|q| itq.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect())
            .collect();
        let r = recall_at_k(&retrieved, &truth, 10);
        // Chance level is 10/800 = 0.0125.
        assert!(r > 0.1, "ITQ recall barely above chance: {r}");
    }

    #[test]
    fn rotation_is_orthonormal() {
        let data = SyntheticSpec::deep_like().generate(150, 0, 7).data;
        let itq = ItqLsh::train(&data, &ItqConfig { bits: 32, iterations: 10, seed: 3 }).unwrap();
        let rtr = itq.rotation.transpose().matmul(&itq.rotation).unwrap().to_f64();
        assert!(rtr.frobenius_distance(&DMatrix::identity(32)) < 1e-3);
    }

    #[test]
    fn more_iterations_do_not_hurt_quantization_loss() {
        // ITQ's objective ‖B − VR‖ should not increase with iterations.
        let data = SyntheticSpec::sift_like().generate(300, 0, 9).data;
        let loss = |iters: usize| -> f64 {
            let itq =
                ItqLsh::train(&data, &ItqConfig { bits: 32, iterations: iters, seed: 1 }).unwrap();
            // Recompute the objective.
            let z_full = itq.pca.transform(&data).unwrap();
            let v = z_full.select_columns(&(0..32).collect::<Vec<_>>());
            let z = v.matmul(&itq.rotation).unwrap();
            let mut total = 0.0f64;
            for i in 0..z.rows() {
                for &zz in z.row(i) {
                    let b = if zz >= 0.0 { 1.0 } else { -1.0 };
                    total += ((zz as f64) - b) * ((zz as f64) - b);
                }
            }
            total
        };
        let l1 = loss(1);
        let l20 = loss(20);
        assert!(l20 <= l1 * 1.02, "ITQ loss increased: {l1} → {l20}");
    }

    #[test]
    fn pack_signs_layout() {
        let mut out = vec![0u64; 2];
        let mut values = vec![-1.0f32; 70];
        values[0] = 1.0;
        values[65] = 1.0;
        pack_signs(&values, &mut out);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 1 << 1);
    }
}
