//! Plain Vector Quantization (Gray 1984; paper §II-C).
//!
//! One k-means dictionary over the full space: every vector is encoded as
//! the index of its nearest centroid. The paper uses VQ to motivate PQ —
//! a useful bit budget (say 64 bits) would need `2^64` centroids, which is
//! why VQ here caps the dictionary at a practical size and serves as the
//! accuracy floor in ablations.

use crate::util::{Neighbor, TopK};
use crate::{AnnIndex, BaselineError};
use vaq_kmeans::{KMeans, KMeansConfig};
use vaq_linalg::{squared_euclidean, Matrix};

/// Configuration for [`Vq::train`].
#[derive(Debug, Clone)]
pub struct VqConfig {
    /// Bits for the single dictionary (size `2^bits`, capped at 16 bits).
    pub bits: usize,
    /// k-means iterations.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl VqConfig {
    /// Standard configuration with the given bit budget.
    pub fn new(bits: usize) -> Self {
        VqConfig { bits, train_iters: 25, seed: 0x5eed }
    }
}

/// A trained VQ index.
#[derive(Debug, Clone)]
pub struct Vq {
    centroids: Matrix,
    codes: Vec<u16>,
    bits: usize,
}

impl Vq {
    /// Learns the dictionary and encodes `data`.
    pub fn train(data: &Matrix, cfg: &VqConfig) -> Result<Vq, BaselineError> {
        if data.rows() == 0 {
            return Err(BaselineError::EmptyData);
        }
        if cfg.bits == 0 || cfg.bits > 16 {
            return Err(BaselineError::BadConfig(format!("bits {} out of 1..=16", cfg.bits)));
        }
        let k = 1usize << cfg.bits;
        let km = KMeansConfig::new(k).with_seed(cfg.seed).with_max_iters(cfg.train_iters);
        let model = KMeans::fit(data, &km).map_err(|e| BaselineError::BadConfig(e.to_string()))?;
        let codes = model.assignments.iter().map(|&a| a as u16).collect();
        Ok(Vq { centroids: model.centroids, codes, bits: cfg.bits })
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }
}

impl AnnIndex for Vq {
    fn name(&self) -> &str {
        "VQ"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        // ADC: distance to each centroid once, then a table-lookup scan.
        let table: Vec<f32> =
            self.centroids.iter_rows().map(|c| squared_euclidean(c, query)).collect();
        let mut top = TopK::new(k);
        for (i, &c) in self.codes.iter().enumerate() {
            top.push(i as u32, table[c as usize]);
        }
        top.into_sorted()
    }

    fn code_bits(&self) -> usize {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::SyntheticSpec;

    #[test]
    fn rejects_bad_configs() {
        assert!(Vq::train(&Matrix::zeros(0, 4), &VqConfig::new(4)).is_err());
        let data = SyntheticSpec::deep_like().generate(50, 0, 1).data;
        assert!(Vq::train(&data, &VqConfig::new(0)).is_err());
        assert!(Vq::train(&data, &VqConfig::new(17)).is_err());
    }

    #[test]
    fn all_codes_within_dictionary() {
        let data = SyntheticSpec::sift_like().generate(300, 0, 2).data;
        let vq = Vq::train(&data, &VqConfig::new(5)).unwrap();
        let k = vq.centroids().rows();
        assert!(vq.codes.iter().all(|&c| (c as usize) < k));
        assert_eq!(vq.len(), 300);
        assert_eq!(vq.code_bits(), 5);
    }

    #[test]
    fn search_groups_by_cell() {
        // All results at the same distance must come from the same centroid
        // cell as the best one.
        let data = SyntheticSpec::sift_like().generate(400, 0, 4).data;
        let vq = Vq::train(&data, &VqConfig::new(4)).unwrap();
        let res = vq.search(data.row(7), 5);
        assert_eq!(res.len(), 5);
        let best_cell = vq.codes[res[0].index as usize];
        for n in &res {
            if (n.distance - res[0].distance).abs() < 1e-9 {
                assert_eq!(vq.codes[n.index as usize], best_cell);
            }
        }
    }

    #[test]
    fn coarser_dictionary_has_higher_distortion() {
        let data = SyntheticSpec::deep_like().generate(500, 0, 5).data;
        let fine = Vq::train(&data, &VqConfig::new(6)).unwrap();
        let coarse = Vq::train(&data, &VqConfig::new(2)).unwrap();
        let distortion = |vq: &Vq| -> f64 {
            (0..data.rows())
                .map(|i| {
                    squared_euclidean(data.row(i), vq.centroids.row(vq.codes[i] as usize)) as f64
                })
                .sum()
        };
        assert!(distortion(&fine) < distortion(&coarse));
    }
}
