//! Product Quantization (Jégou, Douze, Schmid — TPAMI 2011; paper §II-C).
//!
//! PQ splits the `d` dimensions into `m` contiguous subspaces, learns a
//! `2^bits`-item dictionary per subspace with k-means, and encodes every
//! vector as the concatenation of its nearest dictionary indices. Queries
//! are answered with the **Asymmetric Distance Computation** (ADC): per
//! subspace, a lookup table of squared distances from the query sub-vector
//! to every centroid is built once, and the database scan is `m` table
//! lookups + adds per encoded vector. The **Symmetric Distance Computation**
//! (SDC) — both sides encoded — is also provided for completeness.

use crate::util::{adc_table, split_uniform, Neighbor};
use crate::{AnnIndex, BaselineError};
use vaq_core::engine::{IndexView, QueryEngine};
use vaq_kmeans::{nearest_centroid, KMeans, KMeansConfig};
use vaq_linalg::{squared_euclidean, Matrix, PackedCodes, TableArena};

/// Converts engine results (core's `Neighbor`) into this crate's type.
pub(crate) fn from_core(neighbors: Vec<vaq_core::Neighbor>) -> Vec<Neighbor> {
    neighbors.into_iter().map(|n| Neighbor { index: n.index, distance: n.distance }).collect()
}

/// Configuration for [`Pq::train`].
#[derive(Debug, Clone)]
pub struct PqConfig {
    /// Number of subspaces `m`.
    pub num_subspaces: usize,
    /// Bits per subspace (dictionary size is `2^bits`, ≤ 16).
    pub bits_per_subspace: usize,
    /// k-means iterations for dictionary learning.
    pub train_iters: usize,
    /// RNG seed for dictionary learning.
    pub seed: u64,
}

impl PqConfig {
    /// The literature-standard configuration: 8 bits per subspace.
    pub fn new(num_subspaces: usize) -> Self {
        PqConfig { num_subspaces, bits_per_subspace: 8, train_iters: 25, seed: 0x5eed }
    }

    /// Overrides bits per subspace.
    pub fn with_bits(mut self, bits: usize) -> Self {
        self.bits_per_subspace = bits;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained PQ index over an encoded database.
#[derive(Debug, Clone)]
pub struct Pq {
    /// Subspace boundaries, `(start, end)` per subspace.
    ranges: Vec<(usize, usize)>,
    /// One dictionary (centroid matrix) per subspace.
    codebooks: Vec<Matrix>,
    /// Encoded database, row-major `n × m` codes.
    codes: Vec<u16>,
    /// Number of encoded vectors.
    n: usize,
    /// Total bits per encoded vector.
    bits: usize,
    /// Blocked code layout for the quantized SIMD scan (derived from
    /// `codes`; inactive when a dictionary exceeds 256 entries).
    packed: PackedCodes,
}

impl Pq {
    /// Learns dictionaries on `data` and encodes it.
    pub fn train(data: &Matrix, cfg: &PqConfig) -> Result<Pq, BaselineError> {
        if data.rows() == 0 {
            return Err(BaselineError::EmptyData);
        }
        if cfg.num_subspaces == 0 || cfg.num_subspaces > data.cols() {
            return Err(BaselineError::BadConfig(format!(
                "num_subspaces {} out of range for dim {}",
                cfg.num_subspaces,
                data.cols()
            )));
        }
        if cfg.bits_per_subspace == 0 || cfg.bits_per_subspace > 16 {
            return Err(BaselineError::BadConfig(format!(
                "bits_per_subspace {} out of range 1..=16",
                cfg.bits_per_subspace
            )));
        }
        let ranges = split_uniform(data.cols(), cfg.num_subspaces);
        let k = 1usize << cfg.bits_per_subspace;
        let mut codebooks = Vec::with_capacity(cfg.num_subspaces);
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let sub = submatrix(data, lo, hi);
            let km_cfg = KMeansConfig::new(k)
                .with_seed(cfg.seed.wrapping_add(s as u64))
                .with_max_iters(cfg.train_iters);
            let model =
                KMeans::fit(&sub, &km_cfg).map_err(|e| BaselineError::BadConfig(e.to_string()))?;
            codebooks.push(model.centroids);
        }
        let codes = encode_all(data, &ranges, &codebooks);
        let sizes: Vec<usize> = codebooks.iter().map(|cb| cb.rows()).collect();
        let packed = PackedCodes::pack(&codes, &sizes, data.rows());
        Ok(Pq {
            ranges,
            codebooks,
            codes,
            n: data.rows(),
            bits: cfg.num_subspaces * cfg.bits_per_subspace,
            packed,
        })
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.ranges.len()
    }

    /// The encoded code word of database row `i`.
    pub fn code(&self, i: usize) -> &[u16] {
        let m = self.ranges.len();
        &self.codes[i * m..(i + 1) * m]
    }

    /// Subspace boundaries.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Per-subspace dictionaries.
    pub fn codebooks(&self) -> &[Matrix] {
        &self.codebooks
    }

    /// Encodes an arbitrary vector with the learned dictionaries.
    pub fn encode(&self, v: &[f32]) -> Vec<u16> {
        self.ranges
            .iter()
            .zip(self.codebooks.iter())
            .map(|(&(lo, hi), cb)| nearest_centroid(cb, &v[lo..hi]).0 as u16)
            .collect()
    }

    /// Reconstructs (decodes) a code word back to a vector.
    pub fn decode(&self, code: &[u16]) -> Vec<f32> {
        let dim = self.ranges.last().map(|r| r.1).unwrap_or(0);
        let mut out = vec![0.0f32; dim];
        for ((&(lo, hi), cb), &c) in self.ranges.iter().zip(self.codebooks.iter()).zip(code) {
            out[lo..hi].copy_from_slice(&cb.row(c as usize)[..hi - lo]);
        }
        out
    }

    /// A borrowed [`IndexView`] of the encoded database, ready for a
    /// [`QueryEngine`]. PQ operates in the raw input space (no
    /// projection), so queries pass through unprojected.
    pub fn view(&self) -> IndexView<'_> {
        IndexView::new(&self.codebooks, &self.ranges, &self.codes, self.n)
            .with_packed(Some(&self.packed))
    }

    /// Fills `arena` with the per-subspace ADC tables for a query.
    pub fn fill_tables(&self, query: &[f32], arena: &mut TableArena) {
        arena.ensure_layout(self.codebooks.iter().map(|cb| cb.rows()));
        for (s, (&(lo, hi), cb)) in self.ranges.iter().zip(self.codebooks.iter()).enumerate() {
            vaq_linalg::squared_distances_into(&query[lo..hi], cb, arena.table_mut(s));
        }
    }

    /// Builds the per-subspace ADC lookup tables for a query.
    #[deprecated(
        since = "0.2.0",
        note = "allocates one Vec per subspace per query; use `fill_tables` \
                with a reusable `TableArena` (or a `QueryEngine` over \
                `Pq::view`) instead"
    )]
    pub fn lookup_tables(&self, query: &[f32]) -> Vec<Vec<f32>> {
        self.ranges
            .iter()
            .zip(self.codebooks.iter())
            .map(|(&(lo, hi), cb)| adc_table(&query[lo..hi], cb))
            .collect()
    }

    /// ADC distance of database row `i` under precomputed tables (used by
    /// candidate-list re-rankers such as the inverted multi-index).
    #[deprecated(
        since = "0.2.0",
        note = "pair with the deprecated `lookup_tables`; scan candidates \
                through `QueryEngine::search_ids_squared` over `Pq::view` \
                instead"
    )]
    #[inline]
    pub fn distance_with_tables(&self, tables: &[Vec<f32>], i: usize) -> f32 {
        let m = self.ranges.len();
        let code = &self.codes[i * m..(i + 1) * m];
        tables.iter().zip(code.iter()).map(|(t, &c)| t[c as usize]).sum()
    }

    /// ADC search: scan all codes accumulating table lookups. Distances
    /// are squared Euclidean (the PQ-literature convention).
    pub fn search_adc(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let view = self.view();
        let mut engine = QueryEngine::for_view(&view);
        from_core(engine.search_squared(&view, query, k, vaq_core::SearchStrategy::FullScan).0)
    }

    /// ADC search through the quantized SIMD scan: 8-bit lookup tables
    /// accumulated with `pshufb` give a lower bound per vector, and only
    /// survivors are reranked through the exact f32 tables — results are
    /// identical to [`Pq::search_adc`]. Falls back to the early-abandon
    /// scan when the plan is not packable (a dictionary > 256 entries).
    pub fn search_adc_quantized(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let view = self.view();
        let mut engine = QueryEngine::for_view(&view);
        from_core(engine.search_squared(&view, query, k, vaq_core::SearchStrategy::Quantized).0)
    }

    /// SDC search: the query is itself encoded and distances are taken
    /// between centroids. Less accurate than ADC; provided because the
    /// paper describes both (§II-C).
    pub fn search_sdc(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let qcode = self.encode(query);
        let view = self.view();
        let mut engine = QueryEngine::for_view(&view);
        // Per-subspace centroid-to-centroid tables for the query's code.
        engine.prepare_with(self.codebooks.iter().map(|cb| cb.rows()), |s, table| {
            let cb = &self.codebooks[s];
            let qrow = cb.row(qcode[s] as usize);
            for (c, slot) in table.iter_mut().enumerate() {
                *slot = squared_euclidean(cb.row(c), qrow);
            }
        });
        from_core(engine.scan_ids_prepared(&view, 0..self.n as u32, k).0)
    }

    /// Total quantization error of the encoded database (paper Equation 2,
    /// summed over subspaces).
    pub fn quantization_error(&self, data: &Matrix) -> f64 {
        let mut err = 0.0f64;
        for i in 0..self.n.min(data.rows()) {
            let rec = self.decode(self.code(i));
            err += squared_euclidean(data.row(i), &rec) as f64;
        }
        err
    }
}

impl AnnIndex for Pq {
    fn name(&self) -> &str {
        "PQ"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_adc(query, k)
    }

    fn code_bits(&self) -> usize {
        self.bits
    }
}

/// Copies a contiguous column range into its own matrix.
pub(crate) fn submatrix(data: &Matrix, lo: usize, hi: usize) -> Matrix {
    let mut out = Matrix::zeros(data.rows(), hi - lo);
    for i in 0..data.rows() {
        out.row_mut(i).copy_from_slice(&data.row(i)[lo..hi]);
    }
    out
}

/// Encodes every row of `data` against the per-subspace codebooks.
pub(crate) fn encode_all(
    data: &Matrix,
    ranges: &[(usize, usize)],
    codebooks: &[Matrix],
) -> Vec<u16> {
    let m = ranges.len();
    let n = data.rows();
    let mut codes = vec![0u16; n * m];
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [u16] = &mut codes;
        for w in 0..workers {
            let start = w * chunk;
            if start >= n {
                break;
            }
            let len = chunk.min(n - start);
            let (mine, tail) = rest.split_at_mut(len * m);
            rest = tail;
            scope.spawn(move || {
                for j in 0..len {
                    let row = data.row(start + j);
                    for (s, (&(lo, hi), cb)) in ranges.iter().zip(codebooks.iter()).enumerate() {
                        mine[j * m + s] = nearest_centroid(cb, &row[lo..hi]).0 as u16;
                    }
                }
            });
        }
    });
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    fn small_data() -> Matrix {
        SyntheticSpec::sift_like().generate(600, 0, 3).data
    }

    #[test]
    fn train_rejects_bad_configs() {
        let data = small_data();
        assert!(Pq::train(&data, &PqConfig::new(0)).is_err());
        assert!(Pq::train(&data, &PqConfig::new(4).with_bits(0)).is_err());
        assert!(Pq::train(&data, &PqConfig::new(4).with_bits(17)).is_err());
        assert!(Pq::train(&Matrix::zeros(0, 8), &PqConfig::new(2)).is_err());
        assert!(Pq::train(&data, &PqConfig::new(1000)).is_err());
    }

    #[test]
    fn encode_decode_reduces_error_with_more_bits() {
        let data = small_data();
        let coarse = Pq::train(&data, &PqConfig::new(8).with_bits(2)).unwrap();
        let fine = Pq::train(&data, &PqConfig::new(8).with_bits(6)).unwrap();
        let e_coarse = coarse.quantization_error(&data);
        let e_fine = fine.quantization_error(&data);
        assert!(e_fine < e_coarse, "more bits must quantize better: {e_fine} vs {e_coarse}");
    }

    #[test]
    fn code_bits_accounting() {
        let data = small_data();
        let pq = Pq::train(&data, &PqConfig::new(16).with_bits(4)).unwrap();
        assert_eq!(pq.code_bits(), 64);
        assert_eq!(pq.num_subspaces(), 16);
    }

    #[test]
    fn self_query_returns_reasonable_recall() {
        let data = small_data();
        let pq = Pq::train(&data, &PqConfig::new(16).with_bits(6)).unwrap();
        // Query with database vectors themselves.
        let mut hits = 0;
        for i in (0..data.rows()).step_by(37) {
            let res = pq.search(data.row(i), 10);
            if res.iter().any(|n| n.index == i as u32) {
                hits += 1;
            }
        }
        let total = (0..data.rows()).step_by(37).count();
        assert!(hits * 10 >= total * 8, "self-recall too low: {hits}/{total}");
    }

    #[test]
    fn adc_recall_beats_random_on_synthetic() {
        let ds = SyntheticSpec::sift_like().generate(800, 20, 5);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let pq = Pq::train(&ds.data, &PqConfig::new(16).with_bits(6)).unwrap();
        let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
            .map(|q| pq.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect())
            .collect();
        let r = recall_at_k(&retrieved, &truth, 10);
        assert!(r > 0.5, "PQ recall@10 too low: {r}");
    }

    #[test]
    fn adc_is_more_accurate_than_sdc() {
        let ds = SyntheticSpec::sift_like().generate(800, 30, 7);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let pq = Pq::train(&ds.data, &PqConfig::new(8).with_bits(5)).unwrap();
        let run = |sdc: bool| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    let r = if sdc {
                        pq.search_sdc(ds.queries.row(q), 10)
                    } else {
                        pq.search_adc(ds.queries.row(q), 10)
                    };
                    r.iter().map(|n| n.index).collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let adc = run(false);
        let sdc = run(true);
        assert!(adc >= sdc - 0.05, "ADC {adc} should be at least as good as SDC {sdc}");
    }

    #[test]
    fn lookup_table_scan_matches_decode_distance() {
        // The ADC distance must equal the distance to the reconstructed
        // vector (per-subspace orthogonal decomposition).
        let data = small_data();
        let pq = Pq::train(&data, &PqConfig::new(8).with_bits(4)).unwrap();
        let q = data.row(5);
        let mut arena = TableArena::new();
        pq.fill_tables(q, &mut arena);
        let code = pq.code(17);
        let table_dist: f32 =
            code.iter().enumerate().map(|(s, &c)| arena.lookup(s, c as usize)).sum();
        let rec = pq.decode(code);
        let direct = squared_euclidean(q, &rec);
        assert!((table_dist - direct).abs() < 1e-2 * direct.max(1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_data();
        let a = Pq::train(&data, &PqConfig::new(8).with_seed(1)).unwrap();
        let b = Pq::train(&data, &PqConfig::new(8).with_seed(1)).unwrap();
        assert_eq!(a.codes, b.codes);
    }

    #[test]
    fn arena_matches_deprecated_nested_tables() {
        // The flat arena must reproduce the nested-Vec tables bit for bit
        // (same accumulation order in both kernels).
        let data = small_data();
        let pq = Pq::train(&data, &PqConfig::new(8).with_bits(4)).unwrap();
        let q = data.row(33);
        let mut arena = TableArena::new();
        pq.fill_tables(q, &mut arena);
        #[allow(deprecated)]
        let nested = pq.lookup_tables(q);
        assert_eq!(arena.num_tables(), nested.len());
        for (s, table) in nested.iter().enumerate() {
            assert_eq!(arena.table(s), table.as_slice(), "subspace {s}");
        }
    }

    #[test]
    fn engine_scan_matches_manual_table_scan() {
        let data = small_data();
        let pq = Pq::train(&data, &PqConfig::new(8).with_bits(4)).unwrap();
        let q = data.row(2);
        let got = pq.search_adc(q, 12);
        // Reference: exhaustive accumulation + sort over all rows.
        let mut arena = TableArena::new();
        pq.fill_tables(q, &mut arena);
        let mut all: Vec<Neighbor> = (0..pq.len())
            .map(|i| {
                let dist: f32 =
                    pq.code(i).iter().enumerate().map(|(s, &c)| arena.lookup(s, c as usize)).sum();
                Neighbor { index: i as u32, distance: dist }
            })
            .collect();
        all.sort_by(|a, b| {
            a.distance.partial_cmp(&b.distance).unwrap().then_with(|| a.index.cmp(&b.index))
        });
        all.truncate(12);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            all.iter().map(|n| n.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn quantized_adc_matches_exact_adc() {
        let data = small_data();
        // 6-bit dictionaries (64 rows) sit on the nibble-split SIMD path.
        let pq = Pq::train(&data, &PqConfig::new(8).with_bits(6)).unwrap();
        for qi in [0, 59, 311, 599] {
            let q = data.row(qi);
            for k in [1, 10, 33] {
                assert_eq!(pq.search_adc_quantized(q, k), pq.search_adc(q, k), "qi={qi} k={k}");
            }
        }
    }

    #[test]
    fn quantized_adc_survives_unpackable_plans() {
        let data = small_data();
        // 9-bit dictionaries (512 rows) cannot pack into u8 codes; the
        // quantized entry point must silently fall back, not misrank.
        let pq = Pq::train(&data, &PqConfig::new(4).with_bits(9)).unwrap();
        let q = data.row(7);
        assert_eq!(pq.search_adc_quantized(q, 15), pq.search_adc(q, 15));
    }

    #[test]
    fn search_returns_k_sorted() {
        let data = small_data();
        let pq = Pq::train(&data, &PqConfig::new(4).with_bits(4)).unwrap();
        let res = pq.search(data.row(0), 25);
        assert_eq!(res.len(), 25);
        for w in res.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
