//! The rival methods the VAQ paper evaluates against (§II-C, §IV
//! "Baselines"), implemented from scratch:
//!
//! * [`vq::Vq`] — plain Vector Quantization: one k-means dictionary over
//!   the full space.
//! * [`pq::Pq`] — Product Quantization (Jégou et al. 2011): uniform
//!   subspaces, one `2^b`-item dictionary each, ADC lookup-table scans.
//! * [`opq::Opq`] — Optimized Product Quantization (Ge et al. 2013) in both
//!   flavors: *parametric* (PCA + eigenvalue-allocation permutation — the
//!   balancing the VAQ paper describes) and *non-parametric* (alternating
//!   Procrustes rotation / codebook refits).
//! * [`bolt::Bolt`] — Bolt (Blalock & Guttag 2017): 4-bit codebooks and
//!   8-bit quantized lookup tables with saturating integer accumulation.
//!   The original exploits SIMD shuffles; this is the hardware-oblivious
//!   algorithmic equivalent (same precision losses, same table sizes), so
//!   its accuracy penalty is faithful and its speed advantage comes from
//!   the same mechanism (tiny integer tables instead of float ones).
//! * [`pqfs::PqFastScan`] — PQ Fast Scan (André et al. 2015): full 8-bit PQ
//!   codebooks with 8-bit quantized tables and code grouping; keeps PQ's
//!   accuracy while scanning faster than float ADC.
//! * [`itq::ItqLsh`] — ITQ-LSH (Gong et al. 2012): PCA projection, iterative
//!   quantization rotation, packed binary codes, Hamming ranking.
//!
//! All searchers implement [`AnnIndex`], the minimal interface the
//! experiment harness drives.

#![forbid(unsafe_code)]

pub mod bolt;
pub mod itq;
pub mod opq;
pub mod pq;
pub mod pqfs;
pub mod util;
pub mod vq;

pub use bolt::Bolt;
pub use itq::ItqLsh;
pub use opq::Opq;
pub use pq::Pq;
pub use pqfs::PqFastScan;
pub use util::{split_uniform, Neighbor, TopK};
pub use vq::Vq;

use std::fmt;

/// A trained approximate-nearest-neighbor searcher.
pub trait AnnIndex {
    /// Human-readable method name (used in experiment output).
    fn name(&self) -> &str;

    /// Returns the approximate `k` nearest neighbors of `query`, ranked by
    /// increasing approximate distance.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Bits used to encode one database vector (for budget accounting).
    fn code_bits(&self) -> usize;
}

/// Errors shared by the baseline trainers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The training set was empty.
    EmptyData,
    /// The requested configuration is inconsistent (detail in the message).
    BadConfig(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::EmptyData => write!(f, "training data is empty"),
            BaselineError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}
