//! PQ Fast Scan (André, Kermarrec, Le Scouarnec — VLDB 2015).
//!
//! PQFS keeps PQ's full 8-bit codebooks (so its *accuracy matches PQ*) and
//! accelerates the scan by (1) quantizing the lookup tables to `u8` so they
//! stay cache/register resident and (2) grouping similar codes so lookups
//! hit the same table lines. The paper's observation — "PQFS maintains the
//! PQ accuracy, but the runtime is worse than Bolt" — follows from using
//! 256-entry tables (16× Bolt's) with the same integer trick.
//!
//! This implementation makes the accuracy preservation *exact* instead of
//! approximate: the quantized tables are built with floor rounding, making
//! the integer scan a **lower bound** on the float ADC distance. The scan
//! prunes with that lower bound and re-ranks every survivor with the exact
//! float tables, so the final top-k equals plain PQ ADC's top-k on every
//! query (a property the unit tests assert).

use crate::pq::{Pq, PqConfig};
use crate::util::{Neighbor, TopK};
use crate::{AnnIndex, BaselineError};
use vaq_linalg::{Matrix, TableArena};

/// Configuration for [`PqFastScan::train`].
#[derive(Debug, Clone)]
pub struct PqfsConfig {
    /// Inner PQ configuration. Bits per subspace is forced to 8 (the
    /// PQFS layout is built around 256-entry tables).
    pub pq: PqConfig,
    /// Whether to reorder the database by leading code for locality.
    pub group_codes: bool,
}

impl PqfsConfig {
    /// Standard configuration for the given subspace count.
    pub fn new(num_subspaces: usize) -> Self {
        PqfsConfig { pq: PqConfig::new(num_subspaces).with_bits(8), group_codes: true }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.pq.seed = seed;
        self
    }
}

/// A trained PQ Fast Scan index.
#[derive(Debug, Clone)]
pub struct PqFastScan {
    pq: Pq,
    /// Scan order → original database index (identity when ungrouped).
    order: Vec<u32>,
    /// Codes laid out in scan order, `m` per vector.
    scan_codes: Vec<u8>,
}

impl PqFastScan {
    /// Trains the inner PQ and builds the grouped scan layout.
    pub fn train(data: &Matrix, cfg: &PqfsConfig) -> Result<PqFastScan, BaselineError> {
        let mut pq_cfg = cfg.pq.clone();
        pq_cfg.bits_per_subspace = 8;
        let pq = Pq::train(data, &pq_cfg)?;
        let n = pq.len();
        let m = pq.num_subspaces();

        let mut order: Vec<u32> = (0..n as u32).collect();
        if cfg.group_codes {
            // Group by the first subspace code, then the second: vectors in
            // the same group share table lines during the scan.
            order.sort_by_key(|&i| {
                let c = pq.code(i as usize);
                (c[0], c.get(1).copied().unwrap_or(0))
            });
        }
        let mut scan_codes = vec![0u8; n * m];
        for (pos, &orig) in order.iter().enumerate() {
            let code = pq.code(orig as usize);
            for (s, &c) in code.iter().enumerate() {
                scan_codes[pos * m + s] = c as u8;
            }
        }
        Ok(PqFastScan { pq, order, scan_codes })
    }

    /// The inner PQ (for accuracy cross-checks).
    pub fn inner(&self) -> &Pq {
        &self.pq
    }

    /// Integer-pruned scan with exact re-ranking, staging the float tables
    /// in a caller-owned [`TableArena`] (refilled in place across queries).
    pub fn search_fast_in(&self, arena: &mut TableArena, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.pq.fill_tables(query, arena);
        let m = arena.num_tables();

        // Quantize with FLOOR so integer sums lower-bound the float sums.
        let mut offset_sum = 0.0f32;
        let mut max_range = 0.0f32;
        let mut mins = Vec::with_capacity(m);
        for t in arena.tables() {
            let mn = t.iter().cloned().fold(f32::INFINITY, f32::min);
            let mx = t.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            mins.push(mn);
            offset_sum += mn;
            max_range = max_range.max(mx - mn);
        }
        let scale = if max_range > 0.0 { 255.0 / max_range } else { 0.0 };
        let inv_scale = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        // Flat u8 tables sharing the arena's offsets.
        let offsets = arena.offsets();
        let flat = arena.as_slice();
        let mut qflat = vec![0u8; flat.len()];
        for s in 0..m {
            let (lo, hi) = (offsets[s], offsets[s + 1]);
            for (dst, &v) in qflat[lo..hi].iter_mut().zip(flat[lo..hi].iter()) {
                *dst = (((v - mins[s]) * scale).floor()).clamp(0.0, 255.0) as u8;
            }
        }

        let mut top = TopK::new(k);
        for pos in 0..self.order.len() {
            let code = &self.scan_codes[pos * m..(pos + 1) * m];
            let mut acc = 0u32;
            for (s, &c) in code.iter().enumerate() {
                acc += qflat[offsets[s] + c as usize] as u32;
            }
            // Lower bound on the float ADC distance.
            let lower = acc as f32 * inv_scale + offset_sum;
            if lower >= top.threshold() {
                continue;
            }
            // Exact re-rank for survivors.
            let mut exact = 0.0f32;
            for (s, &c) in code.iter().enumerate() {
                exact += flat[offsets[s] + c as usize];
            }
            top.push(self.order[pos], exact);
        }
        top.into_sorted()
    }

    /// Integer-pruned scan with exact re-ranking (throwaway table arena).
    pub fn search_fast(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut arena = TableArena::new();
        self.search_fast_in(&mut arena, query, k)
    }
}

impl AnnIndex for PqFastScan {
    fn name(&self) -> &str {
        "PQFS"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_fast(query, k)
    }

    fn code_bits(&self) -> usize {
        self.pq.code_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::SyntheticSpec;

    #[test]
    fn matches_plain_pq_results_exactly() {
        // The defining property: PQFS returns the same neighbors as PQ ADC.
        let ds = SyntheticSpec::sift_like().generate(600, 10, 3);
        let pqfs = PqFastScan::train(&ds.data, &PqfsConfig::new(8)).unwrap();
        for q in 0..ds.queries.rows() {
            let fast = pqfs.search_fast(ds.queries.row(q), 10);
            let slow = pqfs.inner().search_adc(ds.queries.row(q), 10);
            let fast_ids: Vec<u32> = fast.iter().map(|n| n.index).collect();
            let slow_ids: Vec<u32> = slow.iter().map(|n| n.index).collect();
            assert_eq!(fast_ids, slow_ids, "query {q} diverged");
            for (f, s) in fast.iter().zip(slow.iter()) {
                assert!((f.distance - s.distance).abs() < 1e-3 * s.distance.max(1.0));
            }
        }
    }

    #[test]
    fn grouping_does_not_change_results() {
        let ds = SyntheticSpec::deep_like().generate(400, 5, 9);
        let grouped = PqFastScan::train(&ds.data, &PqfsConfig::new(8)).unwrap();
        let mut cfg = PqfsConfig::new(8);
        cfg.group_codes = false;
        let flat = PqFastScan::train(&ds.data, &cfg).unwrap();
        for q in 0..ds.queries.rows() {
            let a: Vec<u32> =
                grouped.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect();
            let b: Vec<u32> = flat.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bits_are_always_eight_per_subspace() {
        let ds = SyntheticSpec::deep_like().generate(300, 0, 1);
        let mut cfg = PqfsConfig::new(8);
        cfg.pq.bits_per_subspace = 3; // must be overridden
        let pqfs = PqFastScan::train(&ds.data, &cfg).unwrap();
        assert_eq!(pqfs.code_bits(), 64);
    }

    #[test]
    fn empty_data_rejected() {
        assert!(PqFastScan::train(&Matrix::zeros(0, 16), &PqfsConfig::new(4)).is_err());
    }

    #[test]
    fn scan_order_is_a_permutation() {
        let ds = SyntheticSpec::sift_like().generate(250, 0, 2);
        let pqfs = PqFastScan::train(&ds.data, &PqfsConfig::new(8)).unwrap();
        let mut sorted = pqfs.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..250u32).collect::<Vec<_>>());
    }
}
