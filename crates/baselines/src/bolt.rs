//! Bolt (Blalock & Guttag, KDD 2017) — the fastest, least accurate LUT
//! scanner in the paper's comparison (§II-C "Accelerations for PQ
//! methods", Figures 1 and 8).
//!
//! Bolt's speed comes from two aggressive reductions, both reproduced here:
//!
//! 1. **4-bit codebooks** — only 16 centroids per subspace, so a lookup
//!    table fits in a SIMD register on the original hardware. The paper
//!    notes "Bolt operates only with 4 bits/subspace"; this implementation
//!    enforces that.
//! 2. **8-bit lookup tables** — float distance tables are affinely
//!    quantized to `u8` and accumulated in integers, trading distance
//!    precision for table bandwidth.
//!
//! The original uses `vpshufb` shuffles; portable Rust gets the same
//! *algorithmic* profile (tiny integer tables, packed 4-bit codes, two
//! codes per byte) without the ISA dependence — the accuracy penalty,
//! which is what the paper's comparisons measure, is identical in kind.
//!
//! Contrast with the engine's quantized scan (`vaq_linalg::qtables`,
//! DESIGN.md §10): Bolt *rounds* table entries affinely and reports the
//! approximate integer sums as final distances, accepting ranking error.
//! The quantized scan instead quantizes *downward* so the integer sum is a
//! certified lower bound, then reranks survivors through the exact f32
//! tables — same `pshufb` bandwidth trick, zero accuracy loss.

use crate::util::{split_uniform, Neighbor, TopK};
use crate::{AnnIndex, BaselineError};
use vaq_kmeans::{nearest_centroid, KMeans, KMeansConfig};
use vaq_linalg::{squared_distances_into, Matrix, TableArena};

/// Bolt's fixed per-subspace bit width.
pub const BOLT_BITS: usize = 4;

/// Number of centroids per subspace (`2^4`).
pub const BOLT_K: usize = 1 << BOLT_BITS;

/// Configuration for [`Bolt::train`].
#[derive(Debug, Clone)]
pub struct BoltConfig {
    /// Number of subspaces (must be even so codes pack two per byte).
    pub num_subspaces: usize,
    /// k-means iterations.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BoltConfig {
    /// Standard configuration for the given subspace count.
    pub fn new(num_subspaces: usize) -> Self {
        BoltConfig { num_subspaces, train_iters: 25, seed: 0x5eed }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained Bolt index: 16-centroid dictionaries and packed 4-bit codes.
#[derive(Debug, Clone)]
pub struct Bolt {
    ranges: Vec<(usize, usize)>,
    codebooks: Vec<Matrix>,
    /// Packed codes: `m/2` bytes per vector, low nibble = even subspace.
    packed: Vec<u8>,
    n: usize,
}

impl Bolt {
    /// Learns the dictionaries and encodes `data`.
    pub fn train(data: &Matrix, cfg: &BoltConfig) -> Result<Bolt, BaselineError> {
        if data.rows() == 0 {
            return Err(BaselineError::EmptyData);
        }
        let m = cfg.num_subspaces;
        if m == 0 || m > data.cols() {
            return Err(BaselineError::BadConfig(format!(
                "num_subspaces {m} out of range for dim {}",
                data.cols()
            )));
        }
        if !m.is_multiple_of(2) {
            return Err(BaselineError::BadConfig(format!(
                "Bolt packs two 4-bit codes per byte; num_subspaces must be even, got {m}"
            )));
        }
        let ranges = split_uniform(data.cols(), m);
        let mut codebooks = Vec::with_capacity(m);
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let sub = crate::pq::submatrix(data, lo, hi);
            let km = KMeansConfig::new(BOLT_K)
                .with_seed(cfg.seed.wrapping_add(s as u64))
                .with_max_iters(cfg.train_iters);
            let model =
                KMeans::fit(&sub, &km).map_err(|e| BaselineError::BadConfig(e.to_string()))?;
            codebooks.push(model.centroids);
        }

        let n = data.rows();
        let bytes_per_vec = m / 2;
        let mut packed = vec![0u8; n * bytes_per_vec];
        for i in 0..n {
            let row = data.row(i);
            for pair in 0..bytes_per_vec {
                let s0 = 2 * pair;
                let s1 = 2 * pair + 1;
                let (lo0, hi0) = ranges[s0];
                let (lo1, hi1) = ranges[s1];
                let c0 = nearest_centroid(&codebooks[s0], &row[lo0..hi0]).0 as u8;
                let c1 = nearest_centroid(&codebooks[s1], &row[lo1..hi1]).0 as u8;
                packed[i * bytes_per_vec + pair] = c0 | (c1 << 4);
            }
        }
        Ok(Bolt { ranges, codebooks, packed, n })
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Builds the quantized (u8) lookup tables for a query, staging the
    /// float tables in a caller-owned [`TableArena`] (refilled in place —
    /// zero steady-state allocations). Returns `(offset_sum, inv_scale)`
    /// such that `true_dist ≈ acc * inv_scale + offset_sum`.
    pub fn fill_quantized_tables(
        &self,
        query: &[f32],
        arena: &mut TableArena,
        tables: &mut Vec<[u8; BOLT_K]>,
    ) -> (f32, f32) {
        let m = self.ranges.len();
        arena.ensure_layout(self.codebooks.iter().map(|cb| cb.rows()));
        for (s, (&(lo, hi), cb)) in self.ranges.iter().zip(self.codebooks.iter()).enumerate() {
            squared_distances_into(&query[lo..hi], cb, arena.table_mut(s));
        }
        // Affine quantization: per-subspace offset (its min), global scale
        // chosen so the *maximum* per-subspace range maps to 255 — this is
        // Bolt's table quantization, which loses precision on subspaces
        // with small ranges.
        let mut offset_sum = 0.0f32;
        let mut max_range = 0.0f32;
        for t in arena.tables() {
            let mn = t.iter().cloned().fold(f32::INFINITY, f32::min);
            let mx = t.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            offset_sum += mn;
            max_range = max_range.max(mx - mn);
        }
        let scale = if max_range > 0.0 { 255.0 / max_range } else { 0.0 };
        tables.clear();
        tables.resize(m, [0u8; BOLT_K]);
        for (s, qt) in tables.iter_mut().enumerate() {
            let t = arena.table(s);
            let mn = t.iter().cloned().fold(f32::INFINITY, f32::min);
            for (dst, &v) in qt.iter_mut().zip(t.iter()) {
                *dst = (((v - mn) * scale).round()).clamp(0.0, 255.0) as u8;
            }
        }
        let inv_scale = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        (offset_sum, inv_scale)
    }

    /// Builds the quantized (u8) lookup tables for a query along with the
    /// affine parameters: returns `(tables, offset_sum, inv_scale)` such
    /// that `true_dist ≈ acc * inv_scale + offset_sum`. Convenience form
    /// of [`Bolt::fill_quantized_tables`] with throwaway buffers.
    pub fn quantized_tables(&self, query: &[f32]) -> (Vec<[u8; BOLT_K]>, f32, f32) {
        let mut arena = TableArena::new();
        let mut tables = Vec::new();
        let (offset_sum, inv_scale) = self.fill_quantized_tables(query, &mut arena, &mut tables);
        (tables, offset_sum, inv_scale)
    }

    /// Scans the packed codes with integer accumulation.
    pub fn search_quantized(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let (tables, offset_sum, inv_scale) = self.quantized_tables(query);
        let bytes_per_vec = self.ranges.len() / 2;
        let mut top = TopK::new(k);
        for i in 0..self.n {
            let code = &self.packed[i * bytes_per_vec..(i + 1) * bytes_per_vec];
            let mut acc = 0u32;
            for (pair, &byte) in code.iter().enumerate() {
                let c0 = (byte & 0x0F) as usize;
                let c1 = (byte >> 4) as usize;
                acc += tables[2 * pair][c0] as u32;
                acc += tables[2 * pair + 1][c1] as u32;
            }
            top.push(i as u32, acc as f32 * inv_scale + offset_sum);
        }
        top.into_sorted()
    }
}

impl AnnIndex for Bolt {
    fn name(&self) -> &str {
        "Bolt"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_quantized(query, k)
    }

    fn code_bits(&self) -> usize {
        self.ranges.len() * BOLT_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::{Pq, PqConfig};
    use crate::util::adc_table;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    #[test]
    fn rejects_odd_subspace_count() {
        let data = SyntheticSpec::deep_like().generate(100, 0, 1).data;
        assert!(Bolt::train(&data, &BoltConfig::new(3)).is_err());
        assert!(Bolt::train(&data, &BoltConfig::new(0)).is_err());
        assert!(Bolt::train(&Matrix::zeros(0, 8), &BoltConfig::new(2)).is_err());
    }

    #[test]
    fn code_bits_is_four_per_subspace() {
        let data = SyntheticSpec::deep_like().generate(200, 0, 1).data;
        let bolt = Bolt::train(&data, &BoltConfig::new(16)).unwrap();
        assert_eq!(bolt.code_bits(), 64);
    }

    #[test]
    fn packed_codes_round_trip() {
        // Every nibble must be a valid centroid index (< 16) — trivially
        // true for u8 nibbles, but check the packing layout by re-encoding.
        let data = SyntheticSpec::sift_like().generate(300, 0, 2).data;
        let bolt = Bolt::train(&data, &BoltConfig::new(8)).unwrap();
        let bytes_per_vec = 4;
        for i in (0..data.rows()).step_by(29) {
            let row = data.row(i);
            for pair in 0..bytes_per_vec {
                let byte = bolt.packed[i * bytes_per_vec + pair];
                let (lo0, hi0) = bolt.ranges[2 * pair];
                let expect0 = nearest_centroid(&bolt.codebooks[2 * pair], &row[lo0..hi0]).0 as u8;
                assert_eq!(byte & 0x0F, expect0);
            }
        }
    }

    #[test]
    fn recall_reasonable_but_below_equal_budget_pq() {
        // Paper Fig. 1/6: Bolt trades accuracy for speed — with the *same
        // bit budget*, PQ at 8 bits/subspace beats Bolt at 4 bits/subspace.
        let ds = SyntheticSpec::sift_like().generate(1000, 30, 4);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let run = |idx: &dyn AnnIndex| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| idx.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect())
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        // 64-bit budget both ways: Bolt 16 subspaces × 4 bits, PQ 8 × 8.
        let bolt = Bolt::train(&ds.data, &BoltConfig::new(16)).unwrap();
        let pq = Pq::train(&ds.data, &PqConfig::new(8).with_bits(8)).unwrap();
        let r_bolt = run(&bolt);
        let r_pq = run(&pq);
        assert!(r_bolt > 0.2, "Bolt recall collapsed: {r_bolt}");
        assert!(r_pq >= r_bolt - 0.05, "PQ {r_pq} should beat Bolt {r_bolt} at equal budget");
    }

    #[test]
    fn quantized_distance_tracks_float_distance() {
        let ds = SyntheticSpec::deep_like().generate(400, 4, 6);
        let bolt = Bolt::train(&ds.data, &BoltConfig::new(8)).unwrap();
        // Compare quantized-scan distances against the float tables.
        let q = ds.queries.row(0);
        let res = bolt.search_quantized(q, 20);
        // Recompute the float ADC distance for the returned codes.
        let mut float_tables = Vec::new();
        for (&(lo, hi), cb) in bolt.ranges.iter().zip(bolt.codebooks.iter()) {
            float_tables.push(adc_table(&q[lo..hi], cb));
        }
        let bytes_per_vec = bolt.ranges.len() / 2;
        for nb in &res {
            let code = &bolt.packed
                [nb.index as usize * bytes_per_vec..(nb.index as usize + 1) * bytes_per_vec];
            let mut fd = 0.0f32;
            for (pair, &byte) in code.iter().enumerate() {
                fd += float_tables[2 * pair][(byte & 0x0F) as usize];
                fd += float_tables[2 * pair + 1][(byte >> 4) as usize];
            }
            let rel = (nb.distance - fd).abs() / fd.max(1e-3);
            assert!(rel < 0.25, "quantized {} vs float {fd}", nb.distance);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = SyntheticSpec::deep_like().generate(150, 0, 8).data;
        let a = Bolt::train(&data, &BoltConfig::new(8).with_seed(5)).unwrap();
        let b = Bolt::train(&data, &BoltConfig::new(8).with_seed(5)).unwrap();
        assert_eq!(a.packed, b.packed);
    }
}
