//! Optimized Product Quantization (Ge, He, Ke, Sun — CVPR 2013; also
//! Norouzi & Fleet's Cartesian k-means). The state-of-the-art quantization
//! baseline of the VAQ paper (§II-C).
//!
//! OPQ rotates the data before PQ so the subspaces are *balanced* in
//! importance, making uniformly sized dictionaries appropriate. Two
//! variants, both implemented here:
//!
//! * **Parametric** — assume Gaussian data: rotate onto the PCA basis, then
//!   permute principal components into subspaces with *eigenvalue
//!   allocation*: greedily place each eigenvalue into the non-full subspace
//!   with the smallest current eigenvalue log-product, balancing the
//!   per-subspace variance products. This is the variant the VAQ paper
//!   describes as "OPQ permutes PCs to achieve a more uniform balance of
//!   importance across subspaces".
//! * **Non-parametric** — alternate between (a) training PQ dictionaries in
//!   the rotated space and (b) re-solving the rotation as an orthogonal
//!   Procrustes problem against the reconstructed codes, `R = UVᵀ` from
//!   `SVD(XᵀY)`.

use crate::pq::{Pq, PqConfig};
use crate::util::Neighbor;
use crate::{AnnIndex, BaselineError};
use vaq_linalg::{procrustes, DMatrix, Matrix, Pca};

/// Which OPQ training variant to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpqVariant {
    /// PCA + eigenvalue allocation (fast, the paper's description of OPQ).
    Parametric,
    /// Alternating Procrustes / codebook iterations on top of the
    /// parametric initialization.
    NonParametric {
        /// Number of alternations (the OPQ paper uses tens; a handful is
        /// enough at these scales).
        iterations: usize,
    },
}

/// Configuration for [`Opq::train`].
#[derive(Debug, Clone)]
pub struct OpqConfig {
    /// Inner PQ configuration (subspaces, bits, seed).
    pub pq: PqConfig,
    /// Training variant.
    pub variant: OpqVariant,
}

impl OpqConfig {
    /// Parametric OPQ with the standard 8-bit subspaces.
    pub fn new(num_subspaces: usize) -> Self {
        OpqConfig { pq: PqConfig::new(num_subspaces), variant: OpqVariant::Parametric }
    }

    /// Overrides bits per subspace.
    pub fn with_bits(mut self, bits: usize) -> Self {
        self.pq.bits_per_subspace = bits;
        self
    }

    /// Switches to the non-parametric variant.
    pub fn non_parametric(mut self, iterations: usize) -> Self {
        self.variant = OpqVariant::NonParametric { iterations };
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.pq.seed = seed;
        self
    }
}

/// A trained OPQ index: a learned rotation followed by a PQ index in the
/// rotated space.
#[derive(Debug, Clone)]
pub struct Opq {
    /// Column means subtracted before rotating.
    mean: Vec<f32>,
    /// Rotation applied as `x_rot = (x − mean) · R`.
    rotation: Matrix,
    /// PQ index over the rotated database.
    pq: Pq,
    name: &'static str,
}

impl Opq {
    /// Learns the rotation and dictionaries on `data` and encodes it.
    pub fn train(data: &Matrix, cfg: &OpqConfig) -> Result<Opq, BaselineError> {
        if data.rows() == 0 {
            return Err(BaselineError::EmptyData);
        }
        let pca = Pca::fit(data).map_err(|e| BaselineError::BadConfig(e.to_string()))?;
        let m = cfg.pq.num_subspaces;
        if m == 0 || m > data.cols() {
            return Err(BaselineError::BadConfig(format!(
                "num_subspaces {m} out of range for dim {}",
                data.cols()
            )));
        }

        // Eigenvalue allocation permutation.
        let perm = eigenvalue_allocation(pca.eigenvalues(), m, data.cols());
        let mut rotation = pca.components().select_columns(&perm);
        let mean: Vec<f32> = pca.mean().to_vec();

        // Rotate the database.
        let rotate = |rot: &Matrix| -> Matrix {
            let mut centered = data.clone();
            for i in 0..centered.rows() {
                let row = centered.row_mut(i);
                for (v, &mu) in row.iter_mut().zip(mean.iter()) {
                    *v -= mu;
                }
            }
            centered.matmul(rot).expect("rotation shape")
        };
        let mut rotated = rotate(&rotation);

        if let OpqVariant::NonParametric { iterations } = cfg.variant {
            for _ in 0..iterations {
                // (a) Fit dictionaries in the current rotated space.
                let pq = Pq::train(&rotated, &cfg.pq)?;
                // (b) Reconstruct and re-solve the rotation.
                let mut recon = Matrix::zeros(rotated.rows(), rotated.cols());
                for i in 0..rotated.rows() {
                    let dec = pq.decode(pq.code(i));
                    recon.row_mut(i).copy_from_slice(&dec);
                }
                // R = procrustes(Xᵀ Y) where X is the centered original.
                let mut centered = data.clone();
                for i in 0..centered.rows() {
                    let row = centered.row_mut(i);
                    for (v, &mu) in row.iter_mut().zip(mean.iter()) {
                        *v -= mu;
                    }
                }
                let xty: DMatrix = centered.transpose().matmul(&recon).expect("shape").to_f64();
                match procrustes(&xty) {
                    Ok(r) => rotation = r.to_f32(),
                    Err(_) => break, // degenerate; keep the last rotation
                }
                rotated = rotate(&rotation);
            }
        }

        let pq = Pq::train(&rotated, &cfg.pq)?;
        let name = match cfg.variant {
            OpqVariant::Parametric => "OPQ",
            OpqVariant::NonParametric { .. } => "OPQ-NP",
        };
        Ok(Opq { mean, rotation, pq, name })
    }

    /// Rotates a query into the learned space.
    pub fn rotate_query(&self, query: &[f32]) -> Vec<f32> {
        let centered: Vec<f32> = query.iter().zip(self.mean.iter()).map(|(v, m)| v - m).collect();
        self.rotation.project_row(&centered).expect("rotation shape")
    }

    /// The inner PQ index (for inspection in tests/experiments).
    pub fn inner(&self) -> &Pq {
        &self.pq
    }

    /// Quantization error in the rotated space.
    pub fn quantization_error(&self, data: &Matrix) -> f64 {
        let mut centered = data.clone();
        for i in 0..centered.rows() {
            let row = centered.row_mut(i);
            for (v, &mu) in row.iter_mut().zip(self.mean.iter()) {
                *v -= mu;
            }
        }
        let rotated = centered.matmul(&self.rotation).expect("shape");
        self.pq.quantization_error(&rotated)
    }
}

impl AnnIndex for Opq {
    fn name(&self) -> &str {
        self.name
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let q = self.rotate_query(query);
        self.pq.search_adc(&q, k)
    }

    fn code_bits(&self) -> usize {
        self.pq.code_bits()
    }
}

/// Eigenvalue allocation (OPQ paper §4.1): distribute PCA dimensions into
/// `m` buckets of capacity `⌈d/m⌉` (uniform split sizes) so the per-bucket
/// eigenvalue *products* balance. Returns the column permutation: output
/// position → original PC index, bucket by bucket.
pub fn eigenvalue_allocation(eigenvalues: &[f64], m: usize, dim: usize) -> Vec<usize> {
    let ranges = crate::util::split_uniform(dim, m);
    let capacities: Vec<usize> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut log_products = vec![0.0f64; m];
    // Eigenvalues are sorted descending already (Pca guarantees it).
    for (pc, &ev) in eigenvalues.iter().enumerate().take(dim) {
        // Pick the non-full bucket with the smallest current log-product;
        // break ties toward the emptier bucket so equal-magnitude
        // eigenvalues spread out instead of piling into one subspace.
        let mut best = None;
        let mut best_key = (f64::INFINITY, usize::MAX);
        for b in 0..m {
            let key = (log_products[b], buckets[b].len());
            if buckets[b].len() < capacities[b] && key < best_key {
                best_key = key;
                best = Some(b);
            }
        }
        let b = best.expect("capacity equals dim");
        buckets[b].push(pc);
        log_products[b] += ev.max(1e-12).ln();
    }
    buckets.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    #[test]
    fn eigenvalue_allocation_is_a_permutation() {
        let evs: Vec<f64> = (0..16).map(|i| 100.0 / (i + 1) as f64).collect();
        let perm = eigenvalue_allocation(&evs, 4, 16);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn eigenvalue_allocation_balances_products() {
        // Strongly skewed spectrum: first bucket must not hoard the top PCs.
        let evs: Vec<f64> = (0..8).map(|i| (2.0f64).powi(-i)).collect();
        let perm = eigenvalue_allocation(&evs, 4, 8);
        let spread = |p: &[usize]| {
            let products: Vec<f64> =
                p.chunks(2).map(|c| c.iter().map(|&i| evs[i]).product()).collect();
            let max = products.iter().cloned().fold(f64::MIN, f64::max);
            let min = products.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        // Greedy balancing must dramatically shrink the product spread
        // compared to the naive contiguous split (which has ratio 2^12 on
        // this geometric spectrum). Perfect balance is not achievable.
        let contiguous: Vec<usize> = (0..8).collect();
        let s_greedy = spread(&perm);
        let s_naive = spread(&contiguous);
        assert!(s_greedy * 4.0 <= s_naive, "greedy spread {s_greedy} vs contiguous {s_naive}");
    }

    #[test]
    fn rejects_empty_and_bad_configs() {
        assert!(Opq::train(&Matrix::zeros(0, 8), &OpqConfig::new(2)).is_err());
        let data = SyntheticSpec::deep_like().generate(100, 0, 1).data;
        assert!(Opq::train(&data, &OpqConfig::new(0)).is_err());
        assert!(Opq::train(&data, &OpqConfig::new(1000)).is_err());
    }

    #[test]
    fn opq_beats_or_matches_pq_on_skewed_data() {
        // SALD-like has a steep spectrum; balancing helps PQ's uniform
        // dictionaries.
        let ds = SyntheticSpec::sald_like().generate(800, 30, 11);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let run = |idx: &dyn AnnIndex| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| idx.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect())
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let pq = crate::pq::Pq::train(&ds.data, &PqConfig::new(8).with_bits(4)).unwrap();
        let opq = Opq::train(&ds.data, &OpqConfig::new(8).with_bits(4)).unwrap();
        let r_pq = run(&pq);
        let r_opq = run(&opq);
        // OPQ is usually better here, but the paper itself shows cases where
        // it isn't (Fig. 1, SALD) — so only require it stays in the same
        // ballpark while the quantization error strictly improves.
        assert!(r_opq > r_pq - 0.1, "OPQ recall {r_opq} collapsed vs PQ {r_pq}");
    }

    #[test]
    fn rotation_is_orthonormal() {
        let data = SyntheticSpec::deep_like().generate(300, 0, 2).data;
        let opq = Opq::train(&data, &OpqConfig::new(8).with_bits(4)).unwrap();
        let rtr = opq.rotation.transpose().matmul(&opq.rotation).unwrap().to_f64();
        let eye = DMatrix::identity(data.cols());
        assert!(rtr.frobenius_distance(&eye) < 1e-3);
    }

    #[test]
    fn rotated_query_preserves_distances() {
        let data = SyntheticSpec::deep_like().generate(300, 2, 4).data;
        let opq = Opq::train(&data, &OpqConfig::new(8).with_bits(4)).unwrap();
        let a = data.row(0);
        let b = data.row(1);
        let ra = opq.rotate_query(a);
        let rb = opq.rotate_query(b);
        let before = vaq_linalg::euclidean(a, b);
        let after = vaq_linalg::euclidean(&ra, &rb);
        assert!((before - after).abs() < 1e-3 * before.max(1.0));
    }

    #[test]
    fn non_parametric_reduces_quantization_error() {
        let ds = SyntheticSpec::sift_like().generate(500, 0, 9);
        let par = Opq::train(&ds.data, &OpqConfig::new(8).with_bits(4)).unwrap();
        let nonpar =
            Opq::train(&ds.data, &OpqConfig::new(8).with_bits(4).non_parametric(4)).unwrap();
        let e_par = par.quantization_error(&ds.data);
        let e_np = nonpar.quantization_error(&ds.data);
        assert!(e_np <= e_par * 1.05, "non-parametric should not be much worse: {e_np} vs {e_par}");
    }

    #[test]
    fn names_distinguish_variants() {
        let data = SyntheticSpec::deep_like().generate(120, 0, 2).data;
        let par = Opq::train(&data, &OpqConfig::new(4).with_bits(3)).unwrap();
        let np = Opq::train(&data, &OpqConfig::new(4).with_bits(3).non_parametric(2)).unwrap();
        assert_eq!(par.name(), "OPQ");
        assert_eq!(np.name(), "OPQ-NP");
    }
}
