//! Shared pieces of every scanner: subspace splitting, top-k collection,
//! and ADC lookup-table construction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_linalg::{squared_euclidean, Matrix};

/// One retrieved neighbor: database row index and (approximate) distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the database.
    pub index: u32,
    /// Distance under the method's metric (squared Euclidean for ADC scans,
    /// Hamming for binary codes), smaller is closer.
    pub distance: f32,
}

impl Eq for Neighbor {}
impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the order total when a distance is NaN;
        // `unwrap_or(Equal)` would make NaN equal to everything and let a
        // poisoned entry hide inside the heap.
        self.distance.total_cmp(&other.distance).then_with(|| self.index.cmp(&other.index))
    }
}

/// Bounded max-heap keeping the `k` smallest-distance candidates seen.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// An empty collector for `k` results.
    pub fn new(k: usize) -> Self {
        TopK { k: k.max(1), heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Current worst (largest) retained distance; `INFINITY` until full.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map(|n| n.distance).unwrap_or(f32::INFINITY)
        }
    }

    /// Whether `k` candidates have been collected.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Offers a candidate; keeps it only if it beats the current threshold.
    #[inline]
    pub fn push(&mut self, index: u32, distance: f32) {
        if self.heap.len() < self.k {
            self.heap.push(Neighbor { index, distance });
        } else if let Some(top) = self.heap.peek() {
            if distance < top.distance {
                self.heap.pop();
                self.heap.push(Neighbor { index, distance });
            }
        }
    }

    /// Consumes the collector, returning neighbors sorted best-first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

/// Splits `dim` dimensions into `m` contiguous subspaces as `(start, end)`
/// half-open ranges. When `dim` is not divisible by `m`, the first
/// `dim % m` subspaces get one extra dimension (same convention as FAISS).
///
/// # Panics
/// Panics if `m == 0` or `m > dim`.
pub fn split_uniform(dim: usize, m: usize) -> Vec<(usize, usize)> {
    assert!(m > 0, "need at least one subspace");
    assert!(m <= dim, "more subspaces ({m}) than dimensions ({dim})");
    let base = dim / m;
    let extra = dim % m;
    let mut out = Vec::with_capacity(m);
    let mut start = 0;
    for i in 0..m {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Builds the ADC lookup table for one subspace: squared distances from the
/// query's sub-vector to every centroid of that subspace's dictionary.
pub fn adc_table(query_sub: &[f32], centroids: &Matrix) -> Vec<f32> {
    centroids.iter_rows().map(|c| squared_euclidean(c, query_sub)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.push(i as u32, *d);
        }
        let out = t.into_sorted();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].index, 1);
        assert_eq!(out[1].index, 3);
        assert_eq!(out[2].index, 4);
    }

    #[test]
    fn topk_threshold_tracks_worst() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(0, 10.0);
        assert_eq!(t.threshold(), f32::INFINITY); // not full yet
        t.push(1, 5.0);
        assert_eq!(t.threshold(), 10.0);
        t.push(2, 1.0);
        assert_eq!(t.threshold(), 5.0);
    }

    #[test]
    fn topk_deterministic_on_ties() {
        // Equal-distance candidates never evict already-kept ones; the
        // final ordering is by (distance, index).
        let mut t = TopK::new(2);
        t.push(9, 1.0);
        t.push(3, 1.0);
        t.push(7, 1.0);
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.index).collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    fn split_uniform_exact_division() {
        assert_eq!(split_uniform(8, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn split_uniform_remainder_goes_first() {
        assert_eq!(split_uniform(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
    }

    #[test]
    fn split_uniform_covers_everything_disjointly() {
        for dim in [7usize, 13, 96, 128, 257] {
            for m in [1usize, 2, 3, 5, 7] {
                if m > dim {
                    continue;
                }
                let s = split_uniform(dim, m);
                assert_eq!(s[0].0, 0);
                assert_eq!(s.last().unwrap().1, dim);
                for w in s.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn split_uniform_rejects_zero_m() {
        split_uniform(8, 0);
    }

    #[test]
    fn adc_table_matches_direct_distances() {
        let centroids = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        let t = adc_table(&[0.0, 0.0], &centroids);
        assert_eq!(t, vec![0.0, 25.0]);
    }
}
