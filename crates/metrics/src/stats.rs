//! Statistical tests from the paper's protocol (§IV "Statistical Analysis").
//!
//! "We use the Wilcoxon test with a 99% confidence level to evaluate pairs
//! of algorithms over multiple datasets and the Friedman test followed by
//! the post-hoc Nemenyi test with 95% confidence level for comparison of
//! multiple algorithms over multiple datasets."

use crate::ranking::rank_with_ties;
use crate::special::{chi_square_sf, normal_sf};

/// Result of the Wilcoxon signed-rank test.
#[derive(Debug, Clone)]
pub struct WilcoxonResult {
    /// Signed-rank statistic (sum of ranks of positive differences).
    pub w_plus: f64,
    /// Normal-approximation z score.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of non-zero differences used.
    pub n_effective: usize,
    /// How many datasets method A beat method B on (`a > b`).
    pub wins_a: usize,
    /// How many datasets method B beat method A on.
    pub wins_b: usize,
}

/// Two-sided Wilcoxon signed-rank test for paired samples `a` vs `b`
/// (e.g. per-dataset recall of two methods).
///
/// Uses the normal approximation with tie correction — the paper's studies
/// have N = 128 datasets, far beyond where the exact distribution matters.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let mut diffs: Vec<f64> =
        a.iter().zip(b.iter()).map(|(&x, &y)| x - y).filter(|d| d.abs() > 1e-12).collect();
    let wins_a = a.iter().zip(b.iter()).filter(|(x, y)| x > y).count();
    let wins_b = a.iter().zip(b.iter()).filter(|(x, y)| y > x).count();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            w_plus: 0.0,
            z: 0.0,
            p_value: 1.0,
            n_effective: 0,
            wins_a,
            wins_b,
        };
    }
    // Rank |d| with midranks.
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = rank_with_ties(&abs);
    let w_plus: f64 =
        diffs.iter().zip(ranks.iter()).filter(|(d, _)| **d > 0.0).map(|(_, &r)| r).sum();

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Tie correction on the variance.
    let mut sorted = abs.clone();
    sorted.sort_by(|x, y| x.total_cmp(y));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && (sorted[j] - sorted[i]).abs() < 1e-12 {
            j += 1;
        }
        let t = (j - i) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j;
    }
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    let z = if var > 0.0 { (w_plus - mean) / var.sqrt() } else { 0.0 };
    let p_value = (2.0 * normal_sf(z.abs())).min(1.0);
    diffs.clear();
    WilcoxonResult { w_plus, z, p_value, n_effective: n, wins_a, wins_b }
}

/// Result of the Friedman test over `k` methods × `n` datasets.
#[derive(Debug, Clone)]
pub struct FriedmanResult {
    /// Average rank of each method (1 = best) across datasets.
    pub average_ranks: Vec<f64>,
    /// Friedman χ² statistic.
    pub chi_square: f64,
    /// Degrees of freedom (`k − 1`).
    pub df: usize,
    /// p-value from the χ² approximation.
    pub p_value: f64,
}

/// Friedman test on a score table: `scores[method][dataset]`, where higher
/// scores are better (recall/MAP). Methods are ranked per dataset (rank 1 =
/// best) with midrank ties, then the rank sums are tested.
///
/// # Panics
/// Panics if methods have differing dataset counts or fewer than 2 methods /
/// 1 dataset are supplied.
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let k = scores.len();
    assert!(k >= 2, "need at least two methods");
    let n = scores[0].len();
    assert!(n >= 1, "need at least one dataset");
    assert!(scores.iter().all(|s| s.len() == n), "ragged score table");

    let mut rank_sums = vec![0.0f64; k];
    for d in 0..n {
        // Rank methods on dataset d: higher score → better → lower rank.
        // rank_with_ties ranks ascending, so negate.
        let col: Vec<f64> = (0..k).map(|m| -scores[m][d]).collect();
        let ranks = rank_with_ties(&col);
        for (m, &r) in ranks.iter().enumerate() {
            rank_sums[m] += r;
        }
    }
    let average_ranks: Vec<f64> = rank_sums.iter().map(|&s| s / n as f64).collect();

    let nf = n as f64;
    let kf = k as f64;
    let sum_r2: f64 = rank_sums.iter().map(|&r| r * r).sum();
    let chi_square = 12.0 / (nf * kf * (kf + 1.0)) * sum_r2 - 3.0 * nf * (kf + 1.0);
    let df = k - 1;
    let p_value = chi_square_sf(chi_square.max(0.0), df as f64);
    FriedmanResult { average_ranks, chi_square, df, p_value }
}

/// Percentile bootstrap confidence interval for the mean of per-query
/// scores (recall/MAP are means over queries; reporting an interval is the
/// honest way to compare runs on modest query workloads).
///
/// Deterministic: the resampling RNG is an inline splitmix so repeated
/// calls agree. Returns `(lower, upper)` at the given confidence
/// (e.g. 0.95).
pub fn bootstrap_mean_ci(samples: &[f64], confidence: f64, resamples: usize) -> (f64, f64) {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!((0.0..1.0).contains(&(1.0 - confidence)), "confidence must be in (0,1)");
    let n = samples.len();
    let mut means = Vec::with_capacity(resamples.max(1));
    let mut state = 0x9E3779B97F4A7C15u64 ^ (n as u64);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for _ in 0..resamples.max(1) {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += samples[(next() % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((means.len() as f64 * alpha) as usize).min(means.len() - 1);
    let hi_idx = ((means.len() as f64 * (1.0 - alpha)) as usize).min(means.len() - 1);
    (means[lo_idx], means[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_ci_contains_true_mean_and_shrinks() {
        let samples: Vec<f64> = (0..200).map(|i| 0.5 + 0.3 * ((i as f64 * 0.7).sin())).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&samples, 0.95, 500);
        assert!(lo <= mean && mean <= hi, "CI [{lo}, {hi}] misses mean {mean}");
        // A small sample gives a wider interval.
        let (lo_s, hi_s) = bootstrap_mean_ci(&samples[..10], 0.95, 500);
        assert!(hi_s - lo_s > hi - lo, "small-sample CI not wider");
        // Deterministic.
        assert_eq!(bootstrap_mean_ci(&samples, 0.95, 100), bootstrap_mean_ci(&samples, 0.95, 100));
    }

    #[test]
    fn bootstrap_ci_degenerate_single_sample() {
        let (lo, hi) = bootstrap_mean_ci(&[0.7], 0.95, 50);
        assert_eq!((lo, hi), (0.7, 0.7));
    }

    #[test]
    #[should_panic]
    fn bootstrap_ci_rejects_empty() {
        bootstrap_mean_ci(&[], 0.95, 10);
    }

    #[test]
    fn wilcoxon_identical_samples_not_significant() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n_effective, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        // a beats b by a clear margin on 30 paired samples.
        let b: Vec<f64> = (0..30).map(|i| 0.5 + 0.001 * i as f64).collect();
        let a: Vec<f64> = b.iter().map(|v| v + 0.05).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.wins_a, 30);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert!(r.z > 0.0);
    }

    #[test]
    fn wilcoxon_symmetric() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let ab = wilcoxon_signed_rank(&a, &b);
        let ba = wilcoxon_signed_rank(&b, &a);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        assert!((ab.z + ba.z).abs() < 1e-12);
        assert_eq!(ab.wins_a, ba.wins_b);
    }

    #[test]
    fn wilcoxon_mixed_differences_not_significant() {
        // Alternating winner with equal magnitudes → no significance.
        let a: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn friedman_ranks_clear_ordering() {
        // Method 0 always best, method 2 always worst over 20 datasets.
        let n = 20;
        let scores = vec![
            (0..n).map(|i| 0.9 + 0.001 * i as f64).collect::<Vec<_>>(),
            (0..n).map(|i| 0.8 + 0.001 * i as f64).collect::<Vec<_>>(),
            (0..n).map(|i| 0.7 + 0.001 * i as f64).collect::<Vec<_>>(),
        ];
        let r = friedman_test(&scores);
        assert!((r.average_ranks[0] - 1.0).abs() < 1e-12);
        assert!((r.average_ranks[1] - 2.0).abs() < 1e-12);
        assert!((r.average_ranks[2] - 3.0).abs() < 1e-12);
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert_eq!(r.df, 2);
    }

    #[test]
    fn friedman_no_difference_high_p() {
        // Rotating winner: every method wins equally often.
        let scores = vec![
            vec![3.0, 1.0, 2.0, 3.0, 1.0, 2.0],
            vec![2.0, 3.0, 1.0, 2.0, 3.0, 1.0],
            vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0],
        ];
        let r = friedman_test(&scores);
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        for ar in &r.average_ranks {
            assert!((ar - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn friedman_handles_ties_with_midranks() {
        let scores = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let r = friedman_test(&scores);
        assert!((r.average_ranks[0] - 1.5).abs() < 1e-12);
        assert!((r.average_ranks[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn friedman_rejects_single_method() {
        friedman_test(&[vec![1.0]]);
    }

    #[test]
    #[should_panic]
    fn wilcoxon_rejects_mismatched_lengths() {
        wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }

    // NaN regression tests: the internal sorts use `total_cmp`, so a NaN
    // score (e.g. recall of a failed run) must not panic mid-test.

    #[test]
    fn wilcoxon_tolerates_nan_score() {
        let a = vec![0.9, f64::NAN, 0.8, 0.7];
        let b = vec![0.5, 0.6, 0.5, 0.6];
        let r = wilcoxon_signed_rank(&a, &b);
        // The NaN pair still counts as an effective difference but must not
        // blow up the tie-correction sort; the statistic stays finite-free
        // of panics even if its value is NaN-contaminated.
        assert_eq!(r.wins_a, 3);
        assert_eq!(r.wins_b, 0);
    }

    #[test]
    fn bootstrap_ci_tolerates_nan_sample() {
        // The percentile sort must not panic; with total_cmp NaN means sort
        // after every finite mean.
        let (lo, _hi) = bootstrap_mean_ci(&[0.5, 0.6, f64::NAN, 0.7], 0.95, 64);
        assert!(lo.is_nan() || lo.is_finite());
    }

    #[test]
    fn friedman_tolerates_nan_score() {
        // One dataset has a NaN score for one method: ranking must not
        // panic, and the other methods still get finite average ranks.
        let scores = vec![vec![0.9, 0.9], vec![0.8, f64::NAN], vec![0.7, 0.7]];
        let r = friedman_test(&scores);
        assert!(r.average_ranks[0].is_finite());
        assert_eq!(r.df, 2);
    }
}
