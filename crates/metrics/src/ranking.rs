//! Rank utilities, the Nemenyi critical difference, and speedup@recall.

/// Ranks values ascending with midrank tie handling: the smallest value gets
/// rank 1; equal values share the average of the ranks they span.
pub fn rank_with_ties(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && (values[order[j]] - values[order[i]]).abs() < 1e-12 {
            j += 1;
        }
        // Midrank of positions i..j (1-based ranks i+1 ..= j).
        let mid = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = mid;
        }
        i = j;
    }
    ranks
}

/// Average rank of each method over datasets: `scores[method][dataset]`,
/// higher scores are better, rank 1 = best.
pub fn average_ranks(scores: &[Vec<f64>]) -> Vec<f64> {
    let k = scores.len();
    if k == 0 {
        return Vec::new();
    }
    let n = scores[0].len();
    let mut sums = vec![0.0f64; k];
    for d in 0..n {
        let col: Vec<f64> = (0..k).map(|m| -scores[m][d]).collect();
        for (m, r) in rank_with_ties(&col).into_iter().enumerate() {
            sums[m] += r;
        }
    }
    sums.into_iter().map(|s| s / n as f64).collect()
}

/// Studentized range quantiles `q_{0.05,∞,k} / √2` for the Nemenyi test,
/// k = 2..=10 (Demšar 2006, Table 5a).
const NEMENYI_Q05: [f64; 9] = [1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164];

/// Nemenyi critical difference at α = 0.05 for `k` methods over `n`
/// datasets: two methods differ significantly when their average ranks
/// differ by more than `CD = q_α √(k(k+1)/6n)`.
///
/// # Panics
/// Panics for `k < 2` or `k > 10` (extend the table if needed) or `n == 0`.
pub fn nemenyi_critical_difference(k: usize, n: usize) -> f64 {
    assert!((2..=10).contains(&k), "Nemenyi table covers 2..=10 methods, got {k}");
    assert!(n > 0, "need at least one dataset");
    let q = NEMENYI_Q05[k - 2];
    q * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

/// Groups of mutually non-significant methods under the Nemenyi CD — the
/// "wiggly lines" of the paper's Figure 10. Methods are given by their
/// average ranks; returns maximal index groups (sorted by rank) whose rank
/// spread is below the CD.
pub fn nemenyi_groups(avg_ranks: &[f64], cd: f64) -> Vec<Vec<usize>> {
    let k = avg_ranks.len();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| avg_ranks[i].total_cmp(&avg_ranks[j]));
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for start in 0..k {
        let mut end = start;
        while end + 1 < k && avg_ranks[order[end + 1]] - avg_ranks[order[start]] <= cd {
            end += 1;
        }
        if end > start {
            let group: Vec<usize> = order[start..=end].to_vec();
            // Only keep maximal groups.
            if !groups.iter().any(|g| group.iter().all(|m| g.contains(m))) {
                groups.push(group);
            }
        }
    }
    groups
}

/// A `(recall, seconds)` operating point of one method.
pub type OperatingPoint = (f64, f64);

/// Speedup of method A over method B at a target recall, interpolating each
/// method's recall→time curve (Figures 8, 11, 12 report speedup@recall).
///
/// Returns `None` when either method cannot reach `target_recall`.
pub fn speedup_at_recall(
    a: &[OperatingPoint],
    b: &[OperatingPoint],
    target_recall: f64,
) -> Option<f64> {
    let ta = time_at_recall(a, target_recall)?;
    let tb = time_at_recall(b, target_recall)?;
    if ta <= 0.0 {
        return None;
    }
    Some(tb / ta)
}

/// Interpolated time for a method to reach `target` recall. Points need not
/// be sorted. Uses the *fastest* configuration achieving at least the
/// target, with linear interpolation between the straddling points of the
/// recall-sorted curve.
pub fn time_at_recall(points: &[OperatingPoint], target: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let mut pts = points.to_vec();
    pts.sort_by(|x, y| x.0.total_cmp(&y.0));
    // Fastest point at or above the target.
    let above: Vec<&OperatingPoint> = pts.iter().filter(|p| p.0 >= target).collect();
    if above.is_empty() {
        return None;
    }
    let best_above = above.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    // Interpolate from the closest point below, if any (may be faster).
    let below = pts.iter().rev().find(|p| p.0 < target);
    match below {
        None => Some(best_above),
        Some(&(r0, t0)) => {
            let &&(r1, t1) = above.iter().min_by(|x, y| x.0.total_cmp(&y.0))?;
            if r1 - r0 < 1e-12 {
                Some(best_above)
            } else {
                let frac = (target - r0) / (r1 - r0);
                Some((t0 + frac * (t1 - t0)).min(best_above))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_simple_ascending() {
        assert_eq!(rank_with_ties(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn rank_midranks_for_ties() {
        // [5, 1, 5]: 1 → rank 1, the two 5s share (2+3)/2 = 2.5.
        assert_eq!(rank_with_ties(&[5.0, 1.0, 5.0]), vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn rank_all_equal() {
        assert_eq!(rank_with_ties(&[2.0, 2.0, 2.0, 2.0]), vec![2.5; 4]);
    }

    #[test]
    fn average_ranks_higher_is_better() {
        let scores = vec![vec![0.9, 0.9], vec![0.5, 0.5]];
        let ar = average_ranks(&scores);
        assert_eq!(ar, vec![1.0, 2.0]);
    }

    #[test]
    fn nemenyi_cd_matches_demsar_example() {
        // Demšar 2006: k=4, N=14 → CD ≈ 1.25 at α=0.05 (q=2.569).
        let cd = nemenyi_critical_difference(4, 14);
        assert!((cd - 2.569 * (20.0f64 / 84.0).sqrt()).abs() < 1e-9);
        assert!((cd - 1.2536).abs() < 0.01, "cd = {cd}");
    }

    #[test]
    fn nemenyi_cd_shrinks_with_more_datasets() {
        assert!(nemenyi_critical_difference(5, 200) < nemenyi_critical_difference(5, 20));
    }

    #[test]
    #[should_panic]
    fn nemenyi_rejects_out_of_table_k() {
        nemenyi_critical_difference(11, 10);
    }

    #[test]
    fn nemenyi_groups_connect_close_methods() {
        // Ranks: 1.0, 1.3, 3.0 with CD 0.5 → {0,1} grouped, 2 alone.
        let groups = nemenyi_groups(&[1.0, 1.3, 3.0], 0.5);
        assert_eq!(groups, vec![vec![0, 1]]);
    }

    #[test]
    fn nemenyi_groups_empty_when_all_distinct() {
        let groups = nemenyi_groups(&[1.0, 2.0, 3.0], 0.5);
        assert!(groups.is_empty());
    }

    #[test]
    fn time_at_recall_picks_fastest_sufficient_point() {
        let pts = vec![(0.8, 1.0), (0.9, 2.0), (0.95, 10.0)];
        // Target 0.9: the (0.9, 2.0) point qualifies.
        assert_eq!(time_at_recall(&pts, 0.9), Some(2.0));
        // Target 0.99: unreachable.
        assert_eq!(time_at_recall(&pts, 0.99), None);
        // Target 0.85: interpolate between (0.8,1) and (0.9,2) → 1.5.
        assert!((time_at_recall(&pts, 0.85).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_at_recall_ratio() {
        let fast = vec![(0.9, 1.0)];
        let slow = vec![(0.9, 5.0)];
        assert!((speedup_at_recall(&fast, &slow, 0.9).unwrap() - 5.0).abs() < 1e-12);
        assert!((speedup_at_recall(&slow, &fast, 0.9).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn speedup_none_when_unreachable() {
        let a = vec![(0.5, 1.0)];
        let b = vec![(0.9, 1.0)];
        assert_eq!(speedup_at_recall(&a, &b, 0.8), None);
    }

    // NaN regression tests: sorts use `total_cmp`, so a NaN distance must
    // never panic (it previously did via `partial_cmp(..).unwrap()`).

    #[test]
    fn rank_with_ties_tolerates_nan() {
        let ranks = rank_with_ties(&[3.0, f64::NAN, 1.0]);
        // total_cmp orders NaN after every finite value: 1.0 → 1, 3.0 → 2.
        assert_eq!(ranks[2], 1.0);
        assert_eq!(ranks[0], 2.0);
        assert_eq!(ranks[1], 3.0);
    }

    #[test]
    fn time_at_recall_tolerates_nan_point() {
        let pts = vec![(0.8, 1.0), (f64::NAN, 9.0), (0.9, 2.0)];
        // NaN recall sorts past the target filter; finite points still work.
        assert_eq!(time_at_recall(&pts, 0.9), Some(2.0));
    }

    #[test]
    fn nemenyi_groups_tolerate_nan_rank() {
        // Must not panic; the NaN method sorts last and never groups.
        let groups = nemenyi_groups(&[1.0, 1.2, f64::NAN], 0.5);
        assert_eq!(groups, vec![vec![0, 1]]);
    }
}
