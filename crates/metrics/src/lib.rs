//! Evaluation measures and statistical machinery for the VAQ reproduction.
//!
//! Mirrors §IV of the paper:
//!
//! * [`accuracy`] — `Recall(workload)` and `MAP(workload)` exactly as the
//!   paper defines them (Recall ignores ranking; MAP rewards placing true
//!   neighbors early).
//! * [`stats`] — the Wilcoxon signed-rank test (pairwise comparisons at 99%
//!   confidence) and the Friedman test followed by the post-hoc Nemenyi
//!   test (multiple methods over multiple datasets at 95%), the exact
//!   protocol of §IV "Statistical Analysis" / Figure 10.
//! * [`ranking`] — average ranks with midrank tie handling, and
//!   speedup@recall interpolation used by Figures 8 and 11.
//! * [`special`] — the special functions (erf, regularized incomplete
//!   gamma) the tests need for p-values, implemented from scratch.
//! * [`timing`] — a tiny stopwatch for CPU-time style measurements.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod ranking;
pub mod special;
pub mod stats;
pub mod timing;

pub use accuracy::{average_precision, map_at_k, mean_reciprocal_rank, precision_at, recall_at_k};
pub use ranking::{average_ranks, nemenyi_critical_difference, speedup_at_recall};
pub use stats::{
    bootstrap_mean_ci, friedman_test, wilcoxon_signed_rank, FriedmanResult, WilcoxonResult,
};
pub use timing::Stopwatch;
