//! Minimal timing helper for the experiment harness.
//!
//! The paper reports CPU time; `std::time::Instant` (wall clock) is the
//! portable stand-in. Experiments run single-threaded query loops, so wall
//! clock ≈ CPU time for the measured sections.

use std::time::{Duration, Instant};

/// A restartable stopwatch accumulating elapsed time across laps.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Option<Instant>,
    accumulated: Duration,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Self {
        Stopwatch { started: None, accumulated: Duration::ZERO }
    }

    /// A stopwatch already running.
    pub fn started() -> Self {
        Stopwatch { started: Some(Instant::now()), accumulated: Duration::ZERO }
    }

    /// Starts (or restarts) the current lap.
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Stops the current lap, folding it into the accumulated total.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.accumulated += s.elapsed();
        }
    }

    /// Total accumulated time (including a running lap).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(s) => self.accumulated + s.elapsed(),
            None => self.accumulated,
        }
    }

    /// Total accumulated seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Times a closure, returning its output and the elapsed seconds.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let t0 = Instant::now();
        let out = f();
        (out, t0.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_laps() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        let after_first = sw.elapsed();
        assert!(after_first >= Duration::from_millis(4));
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.elapsed() > after_first);
    }

    #[test]
    fn stopped_watch_is_stable() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.stop();
        let a = sw.elapsed();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(sw.elapsed(), a);
    }

    #[test]
    fn time_closure_returns_output() {
        let (out, secs) = Stopwatch::time(|| 21 * 2);
        assert_eq!(out, 42);
        assert!(secs >= 0.0);
    }
}
