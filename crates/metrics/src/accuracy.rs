//! Recall and Mean Average Precision, per the paper's definitions (§IV).
//!
//! For a workload `S_Q` of `N_Q` queries with `k` requested neighbors:
//!
//! ```text
//! Recall  = ( Σ_i  #true neighbors returned by Q_i / k ) / N_Q
//! MAP     =   Σ_i  AP(S_Qi) / N_Q
//! AP(S_Qi)= ( Σ_{r=1..k} P(S_Qi, r) × rel(r) ) / k
//! ```
//!
//! where `P(S_Qi, r)` is the fraction of true neighbors among the first `r`
//! returned elements and `rel(r)` is 1 iff the element at position `r` is
//! one of the `k` exact neighbors.

use std::collections::HashSet;

/// Recall of one query: `|retrieved ∩ truth| / k` with `k = truth.len()`.
pub fn recall_single(retrieved: &[u32], truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let truth_set: HashSet<u32> = truth.iter().copied().collect();
    let hits = retrieved.iter().filter(|r| truth_set.contains(r)).count();
    hits as f64 / truth.len() as f64
}

/// Average precision of one query (the paper's `AP(S_Qi)`).
///
/// `retrieved` must be in ranked order (best first).
pub fn average_precision(retrieved: &[u32], truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let truth_set: HashSet<u32> = truth.iter().copied().collect();
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (r, id) in retrieved.iter().enumerate() {
        if truth_set.contains(id) {
            hits += 1;
            sum += hits as f64 / (r + 1) as f64;
        }
    }
    sum / truth.len() as f64
}

/// Workload recall: mean single-query recall over all `(retrieved, truth)`
/// pairs, truncating both lists to `k`.
///
/// # Panics
/// Panics if the two workloads have different lengths.
pub fn recall_at_k(retrieved: &[Vec<u32>], truth: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(retrieved.len(), truth.len(), "workload size mismatch");
    if retrieved.is_empty() {
        return 0.0;
    }
    let total: f64 = retrieved
        .iter()
        .zip(truth.iter())
        .map(|(r, t)| {
            let r = &r[..r.len().min(k)];
            let t = &t[..t.len().min(k)];
            recall_single(r, t)
        })
        .sum();
    total / retrieved.len() as f64
}

/// Precision at cutoff `r` of one ranked list: fraction of the first `r`
/// returned elements that are true neighbors.
pub fn precision_at(retrieved: &[u32], truth: &[u32], r: usize) -> f64 {
    if r == 0 {
        return 0.0;
    }
    let truth_set: HashSet<u32> = truth.iter().copied().collect();
    let prefix = &retrieved[..retrieved.len().min(r)];
    prefix.iter().filter(|id| truth_set.contains(id)).count() as f64 / r as f64
}

/// Mean reciprocal rank over a workload: `1/rank` of the first true
/// neighbor in each ranked list, averaged (0 when none is found).
pub fn mean_reciprocal_rank(retrieved: &[Vec<u32>], truth: &[Vec<u32>]) -> f64 {
    assert_eq!(retrieved.len(), truth.len(), "workload size mismatch");
    if retrieved.is_empty() {
        return 0.0;
    }
    let total: f64 = retrieved
        .iter()
        .zip(truth.iter())
        .map(|(r, t)| {
            let t: HashSet<u32> = t.iter().copied().collect();
            r.iter().position(|id| t.contains(id)).map(|p| 1.0 / (p + 1) as f64).unwrap_or(0.0)
        })
        .sum();
    total / retrieved.len() as f64
}

/// Workload MAP: mean average precision over all queries at cutoff `k`.
///
/// # Panics
/// Panics if the two workloads have different lengths.
pub fn map_at_k(retrieved: &[Vec<u32>], truth: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(retrieved.len(), truth.len(), "workload size mismatch");
    if retrieved.is_empty() {
        return 0.0;
    }
    let total: f64 = retrieved
        .iter()
        .zip(truth.iter())
        .map(|(r, t)| {
            let r = &r[..r.len().min(k)];
            let t = &t[..t.len().min(k)];
            average_precision(r, t)
        })
        .sum();
    total / retrieved.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_retrieval_scores_one() {
        let truth = vec![1u32, 2, 3, 4];
        assert_eq!(recall_single(&truth, &truth), 1.0);
        assert_eq!(average_precision(&truth, &truth), 1.0);
    }

    #[test]
    fn empty_retrieval_scores_zero() {
        let truth = vec![1u32, 2, 3];
        assert_eq!(recall_single(&[], &truth), 0.0);
        assert_eq!(average_precision(&[], &truth), 0.0);
    }

    #[test]
    fn recall_counts_set_overlap_regardless_of_order() {
        let truth = vec![1u32, 2, 3, 4];
        assert_eq!(recall_single(&[4, 3, 9, 1], &truth), 0.75);
        assert_eq!(recall_single(&[1, 3, 9, 4], &truth), 0.75);
    }

    #[test]
    fn ap_rewards_early_hits() {
        let truth = vec![1u32, 2];
        // Hit at rank 1, miss, hit at rank 3: AP = (1/1 + 2/3)/2.
        let early = average_precision(&[1, 9, 2], &truth);
        assert!((early - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        // Same set but hits late: AP = (1/2 + 2/3)/2 — lower.
        let late = average_precision(&[9, 1, 2], &truth);
        assert!(late < early);
    }

    #[test]
    fn ap_position_sensitive_recall_not() {
        let truth = vec![5u32, 6, 7, 8];
        let a = vec![5u32, 6, 0, 0];
        let b = vec![0u32, 0, 5, 6];
        assert_eq!(recall_single(&a, &truth), recall_single(&b, &truth));
        assert!(average_precision(&a, &truth) > average_precision(&b, &truth));
    }

    #[test]
    fn workload_metrics_average_over_queries() {
        let truth = vec![vec![0u32, 1], vec![2u32, 3]];
        let retrieved = vec![vec![0u32, 1], vec![9u32, 9]];
        assert_eq!(recall_at_k(&retrieved, &truth, 2), 0.5);
        assert_eq!(map_at_k(&retrieved, &truth, 2), 0.5);
    }

    #[test]
    fn k_truncation_applies_to_both_sides() {
        let truth = vec![vec![0u32, 1, 2, 3]];
        let retrieved = vec![vec![0u32, 9, 9, 1]];
        // At k=2: truth {0,1}, retrieved [0,9] → recall 0.5.
        assert_eq!(recall_at_k(&retrieved, &truth, 2), 0.5);
        // At k=4: 2 of 4 → 0.5 as well here.
        assert_eq!(recall_at_k(&retrieved, &truth, 4), 0.5);
    }

    #[test]
    fn map_bounded_by_recall() {
        // AP ≤ recall for any ranking (each hit contributes ≤ 1/k).
        let truth = vec![vec![0u32, 1, 2, 3, 4]];
        let retrieved = vec![vec![7u32, 0, 8, 2, 4]];
        assert!(map_at_k(&retrieved, &truth, 5) <= recall_at_k(&retrieved, &truth, 5) + 1e-12);
    }

    #[test]
    fn precision_at_counts_prefix_hits() {
        let truth = vec![1u32, 2, 3];
        assert_eq!(precision_at(&[1, 9, 2, 9], &truth, 2), 0.5);
        assert_eq!(precision_at(&[1, 2], &truth, 4), 0.5); // short list, r=4
        assert_eq!(precision_at(&[9, 9], &truth, 2), 0.0);
        assert_eq!(precision_at(&[1], &truth, 0), 0.0);
    }

    #[test]
    fn mrr_rewards_early_first_hit() {
        let truth = vec![vec![5u32], vec![5u32], vec![5u32]];
        let retrieved = vec![vec![5u32, 0], vec![0u32, 5], vec![0u32, 1]];
        // 1/1, 1/2, 0 → mean = 0.5.
        assert!((mean_reciprocal_rank(&retrieved, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mrr_empty_workload_zero() {
        assert_eq!(mean_reciprocal_rank(&[], &[]), 0.0);
    }

    #[test]
    fn empty_workload_is_zero() {
        assert_eq!(recall_at_k(&[], &[], 10), 0.0);
        assert_eq!(map_at_k(&[], &[], 10), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_workloads_panic() {
        recall_at_k(&[vec![1]], &[], 1);
    }
}
