//! Special functions needed for p-values, implemented from scratch.
//!
//! * [`erf`] — Abramowitz & Stegun 7.1.26 rational approximation
//!   (|error| ≤ 1.5e-7, ample for hypothesis testing).
//! * [`normal_sf`] — standard normal survival function via `erf`.
//! * [`chi_square_sf`] — survival function of the χ² distribution through
//!   the regularized upper incomplete gamma function, computed with the
//!   series / continued-fraction split from Numerical Recipes.

/// Error function, Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal survival function `P(Z > z)`.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * (1.0 - erf(z / std::f64::consts::SQRT_2))
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = C[0];
    let t = x + G + 0.5;
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)` by series expansion.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by continued fraction.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized upper incomplete gamma function `Q(a, x) = Γ(a,x)/Γ(a)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Survival function of the χ² distribution with `df` degrees of freedom.
pub fn chi_square_sf(x: f64, df: f64) -> f64 {
    gamma_q(df / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 coefficients leave ~1e-9 residue at the origin.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn normal_sf_known_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_sf(1.959964) - 0.025).abs() < 2e-4);
        assert!((normal_sf(2.575829) - 0.005).abs() < 2e-4);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            assert!((ln_gamma(n as f64 + 1.0) - f.ln()).abs() < 1e-9, "n={n}");
        }
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // χ²(df=1): P(X > 3.841) ≈ 0.05.
        assert!((chi_square_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // χ²(df=5): P(X > 11.070) ≈ 0.05.
        assert!((chi_square_sf(11.070, 5.0) - 0.05).abs() < 1e-3);
        // χ²(df=10): P(X > 18.307) ≈ 0.05.
        assert!((chi_square_sf(18.307, 10.0) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn gamma_q_boundaries() {
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!(gamma_q(2.0, 100.0) < 1e-30);
        assert!(gamma_q(-1.0, 1.0).is_nan());
    }

    #[test]
    fn chi_square_sf_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..40 {
            let v = chi_square_sf(i as f64 * 0.5, 4.0);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
