//! Property tests for the tree indexes: exact-mode correctness and
//! lower-bound soundness on random series collections.

use proptest::prelude::*;
use vaq_baselines::AnnIndex;
use vaq_dataset::exact_knn;
use vaq_index::dstree::{DsTree, DsTreeConfig};
use vaq_index::exact::ExactScan;
use vaq_index::isax::{IsaxConfig, IsaxIndex};
use vaq_index::TraversalParams;
use vaq_linalg::Matrix;

/// Random z-normalized series collection.
fn series_collection() -> impl Strategy<Value = Matrix> {
    (16usize..=48, 40usize..=120).prop_flat_map(|(len, n)| {
        proptest::collection::vec(-5.0f32..5.0, n * len).prop_map(move |data| {
            let mut m = Matrix::from_vec(n, len, data);
            vaq_dataset::z_normalize(&mut m);
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn isax_exact_mode_is_exact(data in series_collection()) {
        let mut cfg = IsaxConfig::new();
        cfg.word_len = 4;
        cfg.leaf_capacity = 8;
        let idx = IsaxIndex::build(data.clone(), &cfg).unwrap();
        // Query with perturbed database members.
        let queries = data.select_rows(&[0, data.rows() / 2, data.rows() - 1]);
        let truth = exact_knn(&data, &queries, 5);
        for q in 0..queries.rows() {
            let got: Vec<u32> = idx
                .search(queries.row(q), 5, TraversalParams::exact())
                .iter()
                .map(|n| n.index)
                .collect();
            prop_assert_eq!(&got, &truth[q]);
        }
    }

    #[test]
    fn dstree_exact_mode_is_exact(data in series_collection()) {
        let mut cfg = DsTreeConfig::new();
        cfg.leaf_capacity = 8;
        let idx = DsTree::build(data.clone(), &cfg).unwrap();
        let queries = data.select_rows(&[1, data.rows() / 3]);
        let truth = exact_knn(&data, &queries, 5);
        for q in 0..queries.rows() {
            let got: Vec<u32> = idx
                .search(queries.row(q), 5, TraversalParams::exact())
                .iter()
                .map(|n| n.index)
                .collect();
            prop_assert_eq!(&got, &truth[q]);
        }
    }

    #[test]
    fn ng_mode_results_are_subset_quality(data in series_collection()) {
        // NG answers must never contain a *wrong* distance: every returned
        // (index, distance) pair matches the true distance of that series.
        let idx = DsTree::build(data.clone(), &DsTreeConfig::new()).unwrap();
        let q = data.row(0);
        for res in idx.search(q, 5, TraversalParams::ng(2)) {
            let true_d = vaq_linalg::squared_euclidean(data.row(res.index as usize), q);
            prop_assert!((res.distance - true_d).abs() < 1e-3 * true_d.max(1.0));
        }
    }

    #[test]
    fn exact_scan_early_abandon_invariant(data in series_collection()) {
        let scan = ExactScan::new(data.clone());
        let truth = exact_knn(&data, &data.select_rows(&[0]), 7);
        let got: Vec<u32> = scan.search(data.row(0), 7).iter().map(|n| n.index).collect();
        prop_assert_eq!(&got, &truth[0]);
    }
}
