//! iSAX2+ (Camerra, Shieh, Palpanas, Rakthanmanon, Keogh — KAIS 2014), one
//! of the two scalable series indexes the paper includes in Figure 11.
//!
//! Series are summarized by PAA (piecewise aggregate approximation) and
//! quantized into SAX words whose per-segment cardinality can grow: a node
//! splits by promoting one segment to one more bit, producing two children
//! (the iSAX 2.0 binary split). Because the Gaussian breakpoints for
//! cardinality `2^b` are a subset of those for `2^{b+1}` (quantiles at
//! `i/2^b = 2i/2^{b+1}` nest), a coarse symbol is exactly the bit-prefix of
//! the finer symbol, which is what makes the variable-cardinality tree
//! coherent.
//!
//! Simplification vs the full iSAX2+ system: bulk-loading buffers and the
//! disk layout are out of scope for an in-memory reproduction; the split
//! rule (round-robin over the least-refined segment) and the PAA MINDIST
//! lower bound are the published ones. Searches run in the paper's three
//! modes via [`TraversalParams`]: exact, NG (visit-L-leaves), epsilon.

use crate::{IndexError, TraversalParams};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_baselines::{Neighbor, TopK};
use vaq_linalg::{squared_euclidean, Matrix};

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9) — used to derive SAX breakpoints.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of [0,1]: {p}");
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// SAX breakpoints for cardinality `c`: the `c − 1` standard-normal
/// quantiles at `i/c`.
pub fn sax_breakpoints(c: usize) -> Vec<f64> {
    (1..c).map(|i| inverse_normal_cdf(i as f64 / c as f64)).collect()
}

/// One SAX symbol at a variable cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sym {
    /// Symbol value in `0..2^bits`.
    value: u16,
    /// Cardinality bits (0 = "matches everything").
    bits: u8,
}

/// Configuration for [`IsaxIndex::build`].
#[derive(Debug, Clone)]
pub struct IsaxConfig {
    /// PAA word length (segments per series; paper-standard 8–16).
    pub word_len: usize,
    /// Maximum cardinality bits per segment (8 → 256 symbols).
    pub max_bits: u8,
    /// Series per leaf before splitting.
    pub leaf_capacity: usize,
}

impl IsaxConfig {
    /// Standard configuration.
    pub fn new() -> Self {
        IsaxConfig { word_len: 8, max_bits: 8, leaf_capacity: 64 }
    }
}

impl Default for IsaxConfig {
    fn default() -> Self {
        Self::new()
    }
}

struct Node {
    word: Vec<Sym>,
    /// Leaf members (empty for internal nodes).
    members: Vec<u32>,
    /// `(left, right, split_segment)` for internal nodes.
    children: Option<(u32, u32, usize)>,
}

/// The in-memory iSAX2+ tree.
pub struct IsaxIndex {
    cfg: IsaxConfig,
    data: Matrix,
    /// PAA of every series, `n × word_len`.
    paa: Matrix,
    nodes: Vec<Node>,
    /// Precomputed breakpoints per bit level: `breaks[b]` has `2^b − 1`
    /// entries.
    breaks: Vec<Vec<f64>>,
}

impl IsaxIndex {
    /// Builds the tree over the rows of `data` (series should be
    /// z-normalized, as SAX breakpoints assume a standard normal value
    /// distribution).
    pub fn build(data: Matrix, cfg: &IsaxConfig) -> Result<IsaxIndex, IndexError> {
        if data.rows() == 0 {
            return Err(IndexError::EmptyData);
        }
        if cfg.word_len == 0 || cfg.word_len > data.cols() {
            return Err(IndexError::BadConfig(format!(
                "word_len {} out of range for series length {}",
                cfg.word_len,
                data.cols()
            )));
        }
        if cfg.max_bits == 0 || cfg.max_bits > 10 {
            return Err(IndexError::BadConfig("max_bits must be in 1..=10".into()));
        }
        let paa = compute_paa(&data, cfg.word_len);
        let breaks: Vec<Vec<f64>> =
            (0..=cfg.max_bits).map(|b| sax_breakpoints(1usize << b)).collect();
        let root = Node {
            word: vec![Sym { value: 0, bits: 0 }; cfg.word_len],
            members: Vec::new(),
            children: None,
        };
        let mut index = IsaxIndex { cfg: cfg.clone(), data, paa, nodes: vec![root], breaks };
        for i in 0..index.data.rows() {
            index.insert(i as u32);
        }
        Ok(index)
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Number of tree nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Symbol of a PAA value at the given bit level.
    fn symbol(&self, value: f32, bits: u8) -> u16 {
        let bps = &self.breaks[bits as usize];
        bps.partition_point(|&b| (b as f32) <= value) as u16
    }

    fn insert(&mut self, id: u32) {
        let mut cur = 0usize;
        loop {
            if let Some((l, r, seg)) = self.nodes[cur].children {
                let bits = self.nodes[cur].word[seg].bits + 1;
                let sym = self.symbol(self.paa.get(id as usize, seg), bits);
                cur = if sym & 1 == 0 { l as usize } else { r as usize };
                // Defensive: the child must carry the matching symbol; the
                // construction guarantees left = even bit, right = odd bit.
                continue;
            }
            self.nodes[cur].members.push(id);
            if self.nodes[cur].members.len() > self.cfg.leaf_capacity && self.try_split(cur) {
                // Members were redistributed; continue from this node to
                // place nothing further (insert already completed).
            }
            return;
        }
    }

    /// Splits leaf `cur` on its least-refined segment. Returns `false` when
    /// every segment is already at `max_bits`.
    fn try_split(&mut self, cur: usize) -> bool {
        let seg = {
            let word = &self.nodes[cur].word;
            let min_bits = word.iter().map(|s| s.bits).min().unwrap();
            if min_bits >= self.cfg.max_bits {
                return false;
            }
            word.iter().position(|s| s.bits == min_bits).unwrap()
        };
        let parent_word = self.nodes[cur].word.clone();
        let bits = parent_word[seg].bits + 1;
        let make_child = |low_bit: u16| -> Node {
            let mut word = parent_word.clone();
            word[seg] = Sym { value: parent_word[seg].value * 2 + low_bit, bits };
            Node { word, members: Vec::new(), children: None }
        };
        let left = self.nodes.len() as u32;
        self.nodes.push(make_child(0));
        let right = self.nodes.len() as u32;
        self.nodes.push(make_child(1));

        let members = std::mem::take(&mut self.nodes[cur].members);
        for id in members {
            let sym = self.symbol(self.paa.get(id as usize, seg), bits);
            let child = if sym & 1 == 0 { left } else { right };
            self.nodes[child as usize].members.push(id);
        }
        self.nodes[cur].children = Some((left, right, seg));
        true
    }

    /// Squared MINDIST lower bound from a query's PAA to a node's SAX
    /// region.
    fn lower_bound_sq(&self, qpaa: &[f32], node: &Node) -> f32 {
        let n = self.data.cols() as f32;
        let w = self.cfg.word_len as f32;
        let mut acc = 0.0f32;
        for (s, sym) in node.word.iter().enumerate() {
            if sym.bits == 0 {
                continue;
            }
            let bps = &self.breaks[sym.bits as usize];
            let lo =
                if sym.value == 0 { f32::NEG_INFINITY } else { bps[sym.value as usize - 1] as f32 };
            let hi = if (sym.value as usize) < bps.len() {
                bps[sym.value as usize] as f32
            } else {
                f32::INFINITY
            };
            let q = qpaa[s];
            let d = if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            };
            acc += d * d;
        }
        (n / w) * acc
    }

    /// k-NN search in any of the paper's three traversal modes.
    pub fn search(&self, query: &[f32], k: usize, params: TraversalParams) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.data.cols(), "query length mismatch");
        let qpaa = paa_of(query, self.cfg.word_len);
        let mut top = TopK::new(k);
        let eps_factor = match params.epsilon {
            Some(e) => 1.0 / ((1.0 + e) * (1.0 + e)),
            None => 1.0,
        };

        #[derive(PartialEq)]
        struct Item(f32, u32);
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item(self.lower_bound_sq(&qpaa, &self.nodes[0]), 0));
        let mut leaves_visited = 0usize;

        while let Some(Item(lb, id)) = heap.pop() {
            if top.is_full() && lb >= top.threshold() * eps_factor {
                break; // heap is lb-ordered: nothing better remains
            }
            let node = &self.nodes[id as usize];
            match node.children {
                Some((l, r, _)) => {
                    for c in [l, r] {
                        let clb = self.lower_bound_sq(&qpaa, &self.nodes[c as usize]);
                        if !top.is_full() || clb < top.threshold() * eps_factor {
                            heap.push(Item(clb, c));
                        }
                    }
                }
                None => {
                    for &m in &node.members {
                        let d = squared_euclidean(self.data.row(m as usize), query);
                        top.push(m, d);
                    }
                    leaves_visited += 1;
                    if let Some(max) = params.max_leaves {
                        if leaves_visited >= max {
                            break;
                        }
                    }
                }
            }
        }
        top.into_sorted()
    }
}

/// PAA of every row: per-segment means.
fn compute_paa(data: &Matrix, w: usize) -> Matrix {
    let mut out = Matrix::zeros(data.rows(), w);
    for i in 0..data.rows() {
        let p = paa_of(data.row(i), w);
        out.row_mut(i).copy_from_slice(&p);
    }
    out
}

/// PAA of one series.
fn paa_of(series: &[f32], w: usize) -> Vec<f32> {
    let n = series.len();
    let mut out = Vec::with_capacity(w);
    for s in 0..w {
        let lo = s * n / w;
        let hi = ((s + 1) * n / w).max(lo + 1);
        let sum: f32 = series[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, ucr::UcrFamily};
    use vaq_metrics::recall_at_k;

    fn dataset() -> vaq_dataset::Dataset {
        UcrFamily::Cbf.generate(128, 600, 20, 3)
    }

    #[test]
    fn inverse_normal_cdf_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.8413) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn breakpoints_nest_across_cardinalities() {
        // Every breakpoint of card 2^b appears among card 2^{b+1}'s.
        for b in 1..6usize {
            let coarse = sax_breakpoints(1 << b);
            let fine = sax_breakpoints(1 << (b + 1));
            for (i, &c) in coarse.iter().enumerate() {
                assert!((fine[2 * i + 1] - c).abs() < 1e-12, "b={b} i={i}");
            }
        }
    }

    #[test]
    fn paa_of_constant_series_is_constant() {
        let p = paa_of(&[2.0; 32], 8);
        assert!(p.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn build_rejects_bad_configs() {
        let ds = dataset();
        assert!(IsaxIndex::build(Matrix::zeros(0, 16), &IsaxConfig::new()).is_err());
        let mut cfg = IsaxConfig::new();
        cfg.word_len = 0;
        assert!(IsaxIndex::build(ds.data.clone(), &cfg).is_err());
        cfg.word_len = 1000;
        assert!(IsaxIndex::build(ds.data.clone(), &cfg).is_err());
    }

    #[test]
    fn tree_splits_beyond_leaf_capacity() {
        let ds = dataset();
        let idx = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        assert!(idx.num_nodes() > 1, "no splits happened");
        // All leaves within capacity unless max_bits saturated everywhere.
        for node in &idx.nodes {
            if node.children.is_none() {
                let saturated = node.word.iter().all(|s| s.bits >= idx.cfg.max_bits);
                assert!(
                    node.members.len() <= idx.cfg.leaf_capacity || saturated,
                    "oversized leaf: {}",
                    node.members.len()
                );
            }
        }
    }

    #[test]
    fn leaves_partition_all_series() {
        let ds = dataset();
        let idx = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        let mut seen = vec![false; ds.data.rows()];
        for node in &idx.nodes {
            if node.children.is_none() {
                for &m in &node.members {
                    assert!(!seen[m as usize], "series {m} in two leaves");
                    seen[m as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exact_mode_matches_brute_force() {
        let ds = dataset();
        let idx = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        for q in 0..5 {
            let got: Vec<u32> = idx
                .search(ds.queries.row(q), 10, TraversalParams::exact())
                .iter()
                .map(|n| n.index)
                .collect();
            assert_eq!(got, truth[q], "query {q}");
        }
    }

    #[test]
    fn lower_bound_is_actually_a_lower_bound() {
        let ds = dataset();
        let idx = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        let q = ds.queries.row(0);
        let qpaa = paa_of(q, idx.cfg.word_len);
        for node in &idx.nodes {
            if node.children.is_none() {
                let lb = idx.lower_bound_sq(&qpaa, node);
                for &m in &node.members {
                    let d = squared_euclidean(ds.data.row(m as usize), q);
                    assert!(lb <= d + 1e-3 * d.max(1.0), "LB {lb} exceeds true distance {d}");
                }
            }
        }
    }

    #[test]
    fn ng_mode_fast_but_approximate() {
        let ds = dataset();
        let idx = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let run = |params: TraversalParams| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    idx.search(ds.queries.row(q), 10, params).iter().map(|n| n.index).collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let one_leaf = run(TraversalParams::ng(1));
        let many = run(TraversalParams::ng(50));
        assert!(many >= one_leaf, "more leaves reduced recall: {many} < {one_leaf}");
        assert!(one_leaf > 0.0);
    }

    #[test]
    fn epsilon_mode_respects_guarantee() {
        let ds = dataset();
        let idx = IsaxIndex::build(ds.data.clone(), &IsaxConfig::new()).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 1);
        for q in 0..8 {
            let got = idx.search(ds.queries.row(q), 1, TraversalParams::epsilon(1.0));
            let exact_d = squared_euclidean(ds.data.row(truth[q][0] as usize), ds.queries.row(q));
            // Squared guarantee: d ≤ (1+ε)² · d*.
            assert!(
                got[0].distance <= exact_d * 4.0 + 1e-3,
                "epsilon guarantee violated: {} vs exact {exact_d}",
                got[0].distance
            );
        }
    }
}
