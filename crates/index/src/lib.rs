//! Indexing methods the VAQ paper compares against in §V-E
//! (Figures 11 and 12), plus the exact scan used for ground truth:
//!
//! * [`exact::ExactScan`] — brute-force scan with early abandoning; the
//!   accuracy ceiling and the reference for speedup factors.
//! * [`hnsw::Hnsw`] — Hierarchical Navigable Small World graphs (Malkov &
//!   Yashunin 2018), "one of the best indexing methods" per the studies the
//!   paper cites, with the high indexing cost the paper measures. Works
//!   over raw vectors or over PQ-encoded data (the Figure 12 setup) via the
//!   [`hnsw::VectorStore`] abstraction.
//! * [`imi::Imi`] — the Inverted Multi-Index (Babenko & Lempitsky 2014):
//!   a product-decomposed coarse quantizer whose cell grid is traversed
//!   with the multi-sequence algorithm; candidates are re-ranked with PQ
//!   codes. The paper's IMI+OPQ baseline: faster than scanning, lower
//!   recall.
//! * [`isax::IsaxIndex`] — iSAX2+ (Camerra et al. 2014): SAX-word tree with
//!   variable cardinality splits and PAA lower-bound guided search, in NG
//!   (visit-a-few-leaves) and epsilon (bounded-error) modes.
//! * [`dstree::DsTree`] — DSTree (Wang et al. 2013): an EAPCA-synopsis tree
//!   with mean/stddev split policies and lower-bound pruned traversal, same
//!   two approximate modes.

#![forbid(unsafe_code)]

pub mod dstree;
pub mod exact;
pub mod hnsw;
pub mod imi;
pub mod isax;
pub mod rerank;

pub use dstree::DsTree;
pub use exact::ExactScan;
pub use hnsw::Hnsw;
pub use imi::Imi;
pub use isax::IsaxIndex;
pub use rerank::{rerank, search_with_rerank, vaq_search_with_rerank};

use std::fmt;

/// How a tree index (iSAX2+/DSTree) traverses lower-bound ordered nodes —
/// the knobs the paper's Figure 11 sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalParams {
    /// Stop after visiting this many leaves ("NG" — no-guarantee — mode in
    /// the paper's terminology). `None` = unbounded.
    pub max_leaves: Option<usize>,
    /// Relative-error guarantee ε: prune a node only when its lower bound
    /// exceeds `bsf / (1 + ε)`, so every returned distance is within
    /// `(1 + ε)` of the exact answer ("Epsilon" mode). `None` = exact
    /// pruning.
    pub epsilon: Option<f32>,
}

impl TraversalParams {
    /// Exact search: full lower-bound pruning, no early stop.
    pub fn exact() -> Self {
        TraversalParams { max_leaves: None, epsilon: None }
    }

    /// NG mode: visit the `l` most promising leaves and stop.
    pub fn ng(l: usize) -> Self {
        TraversalParams { max_leaves: Some(l), epsilon: None }
    }

    /// Epsilon mode with the given relative error bound.
    pub fn epsilon(e: f32) -> Self {
        TraversalParams { max_leaves: None, epsilon: Some(e) }
    }
}

/// Errors produced by the index builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The dataset was empty.
    EmptyData,
    /// The requested configuration is inconsistent (detail in the message).
    BadConfig(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::EmptyData => write!(f, "dataset is empty"),
            IndexError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}
