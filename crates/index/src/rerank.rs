//! Candidate re-ranking with original vectors.
//!
//! The paper's index comparison (§V-E, Figure 11) retrieves 100–1000
//! approximate neighbors and "re-rank\[s\] the neighbors using the original
//! data to evaluate different recall levels" — the standard two-stage
//! serving pattern where compressed codes produce a candidate pool and the
//! raw vectors settle the final order.

use vaq_baselines::{Neighbor, TopK};
use vaq_core::{QueryEngine, SearchStats, Vaq};
use vaq_linalg::{squared_euclidean, Matrix};

/// Re-ranks `candidates` (database row ids) by exact distance to `query`
/// over the raw `data`, returning the best `k` in exact order.
pub fn rerank(data: &Matrix, query: &[f32], candidates: &[u32], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for &id in candidates {
        let d = squared_euclidean(data.row(id as usize), query);
        top.push(id, d);
    }
    top.into_sorted()
}

/// Convenience: runs an approximate search closure asking for
/// `pool_factor × k` candidates, then re-ranks to the exact best `k`.
pub fn search_with_rerank(
    data: &Matrix,
    query: &[f32],
    k: usize,
    pool_factor: usize,
    search: impl Fn(&[f32], usize) -> Vec<u32>,
) -> Vec<Neighbor> {
    let pool = search(query, k * pool_factor.max(1));
    rerank(data, query, &pool, k)
}

/// Two-stage VAQ serving through the shared query engine: the pruned ADC
/// scan produces a `pool_factor × k` candidate pool (reusing `engine`'s
/// table arena across calls, so steady-state queries allocate no tables),
/// and the raw vectors settle the final order. Returns the exact top `k`
/// together with the compressed-domain scan statistics.
pub fn vaq_search_with_rerank(
    vaq: &Vaq,
    data: &Matrix,
    engine: &mut QueryEngine,
    query: &[f32],
    k: usize,
    pool_factor: usize,
) -> Result<(Vec<Neighbor>, SearchStats), vaq_core::VaqError> {
    let (pool, stats) = vaq.search_in(engine, query, k * pool_factor.max(1))?;
    let ids: Vec<u32> = pool.iter().map(|n| n.index).collect();
    Ok((rerank(data, query, &ids, k), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    #[test]
    fn rerank_orders_by_exact_distance() {
        let ds = SyntheticSpec::deep_like().generate(200, 1, 1);
        let q = ds.queries.row(0);
        // Shuffle candidate order deliberately.
        let candidates: Vec<u32> = (0..200u32).rev().collect();
        let out = rerank(&ds.data, q, &candidates, 10);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let got: Vec<u32> = out.iter().map(|n| n.index).collect();
        assert_eq!(got, truth[0]);
    }

    #[test]
    fn rerank_restricted_to_candidates() {
        let ds = SyntheticSpec::deep_like().generate(100, 1, 2);
        let q = ds.queries.row(0);
        let candidates = vec![3u32, 7, 11];
        let out = rerank(&ds.data, q, &candidates, 10);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|n| candidates.contains(&n.index)));
    }

    #[test]
    fn reranked_pool_lifts_recall() {
        // A deliberately weak approximate search (coarse PQ) improves when
        // its larger candidate pool is re-ranked with the raw data.
        use vaq_baselines::pq::{Pq, PqConfig};
        use vaq_baselines::AnnIndex;
        let ds = SyntheticSpec::sift_like().generate(1500, 25, 3);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let pq = Pq::train(&ds.data, &PqConfig::new(8).with_bits(4)).unwrap();
        let plain: Vec<Vec<u32>> = (0..ds.queries.rows())
            .map(|qi| pq.search(ds.queries.row(qi), 10).iter().map(|n| n.index).collect())
            .collect();
        let reranked: Vec<Vec<u32>> = (0..ds.queries.rows())
            .map(|qi| {
                search_with_rerank(&ds.data, ds.queries.row(qi), 10, 10, |q, kk| {
                    pq.search(q, kk).iter().map(|n| n.index).collect()
                })
                .iter()
                .map(|n| n.index)
                .collect()
            })
            .collect();
        let r_plain = recall_at_k(&plain, &truth, 10);
        let r_rerank = recall_at_k(&reranked, &truth, 10);
        assert!(r_rerank >= r_plain, "re-ranking reduced recall: {r_rerank} < {r_plain}");
        assert!(r_rerank > 0.6, "re-ranked recall too low: {r_rerank}");
    }

    #[test]
    fn vaq_rerank_reuses_engine_tables_and_lifts_recall() {
        use vaq_core::VaqConfig;
        let ds = SyntheticSpec::sift_like().generate(1200, 20, 5);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let vaq = Vaq::train(&ds.data, &VaqConfig::new(64, 8)).unwrap();
        let mut engine = vaq.engine();
        let baseline = engine.arena().reallocations();
        let mut plain = Vec::new();
        let mut reranked = Vec::new();
        for qi in 0..ds.queries.rows() {
            let q = ds.queries.row(qi);
            plain.push(vaq.search(q, 10).unwrap().iter().map(|n| n.index).collect::<Vec<u32>>());
            let (hits, stats) =
                vaq_search_with_rerank(&vaq, &ds.data, &mut engine, q, 10, 10).unwrap();
            assert!(stats.lookups > 0);
            reranked.push(hits.iter().map(|n| n.index).collect::<Vec<u32>>());
        }
        // The shared engine refills its arena in place: no per-query growth.
        assert_eq!(engine.arena().reallocations(), baseline);
        let r_plain = recall_at_k(&plain, &truth, 10);
        let r_rerank = recall_at_k(&reranked, &truth, 10);
        assert!(r_rerank >= r_plain, "re-ranking reduced recall: {r_rerank} < {r_plain}");
    }

    #[test]
    fn empty_candidates_empty_result() {
        let ds = SyntheticSpec::deep_like().generate(50, 1, 4);
        assert!(rerank(&ds.data, ds.queries.row(0), &[], 5).is_empty());
    }
}
