//! Exact nearest-neighbor scan with early abandoning.
//!
//! The reference every approximate method is scored against. Early
//! abandoning (stop accumulating a squared distance once it exceeds the
//! current k-th best) keeps it honest as a *fast* exact baseline — the same
//! trick classic series-matching systems (UCR suite) use.

use vaq_baselines::{AnnIndex, Neighbor, TopK};
use vaq_linalg::Matrix;

/// Brute-force exact scan over raw vectors.
#[derive(Debug, Clone)]
pub struct ExactScan {
    data: Matrix,
}

impl ExactScan {
    /// Wraps the dataset (kept by value: the scan needs the raw vectors).
    pub fn new(data: Matrix) -> Self {
        ExactScan { data }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Early-abandoned squared distance: returns `None` when the distance
    /// provably exceeds `threshold`.
    #[inline]
    fn bounded_distance(a: &[f32], b: &[f32], threshold: f32) -> Option<f32> {
        let mut acc = 0.0f32;
        // Chunked to keep the comparison out of the innermost operations.
        for (ca, cb) in a.chunks(8).zip(b.chunks(8)) {
            for (x, y) in ca.iter().zip(cb.iter()) {
                let d = x - y;
                acc += d * d;
            }
            if acc >= threshold {
                return None;
            }
        }
        Some(acc)
    }
}

impl AnnIndex for ExactScan {
    fn name(&self) -> &str {
        "Exact"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut top = TopK::new(k);
        for (i, row) in self.data.iter_rows().enumerate() {
            let threshold = top.threshold();
            if let Some(d) = Self::bounded_distance(row, query, threshold) {
                top.push(i as u32, d);
            }
        }
        top.into_sorted()
    }

    fn code_bits(&self) -> usize {
        self.data.cols() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};

    #[test]
    fn matches_reference_ground_truth() {
        let ds = SyntheticSpec::sift_like().generate(400, 10, 1);
        let scan = ExactScan::new(ds.data.clone());
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        for q in 0..ds.queries.rows() {
            let got: Vec<u32> =
                scan.search(ds.queries.row(q), 10).iter().map(|n| n.index).collect();
            assert_eq!(got, truth[q], "query {q}");
        }
    }

    #[test]
    fn early_abandoning_does_not_change_results() {
        // bounded_distance with INFINITY threshold is the plain distance.
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [0.0f32; 9];
        let full = ExactScan::bounded_distance(&a, &b, f32::INFINITY).unwrap();
        let expect: f32 = a.iter().map(|v| v * v).sum();
        assert!((full - expect).abs() < 1e-4);
        // A tight threshold abandons.
        assert_eq!(ExactScan::bounded_distance(&a, &b, 1.0), None);
    }

    #[test]
    fn self_query_is_first() {
        let ds = SyntheticSpec::deep_like().generate(200, 0, 3);
        let scan = ExactScan::new(ds.data.clone());
        for i in (0..200).step_by(23) {
            let res = scan.search(ds.data.row(i), 1);
            assert_eq!(res[0].index, i as u32);
            assert!(res[0].distance < 1e-6);
        }
    }

    #[test]
    fn k_capped_at_n() {
        let ds = SyntheticSpec::deep_like().generate(5, 0, 4);
        let scan = ExactScan::new(ds.data.clone());
        assert_eq!(scan.search(ds.data.row(0), 50).len(), 5);
    }
}
