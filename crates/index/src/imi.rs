//! The Inverted Multi-Index (Babenko & Lempitsky, TPAMI 2014) — the
//! paper's "state-of-the-art index for quantization methods", evaluated as
//! IMI+OPQ in Figures 11 (§V-E).
//!
//! IMI product-decomposes the *coarse* quantizer: the dimensions split into
//! two halves, each with its own `K`-centroid codebook, giving a `K×K` grid
//! of cells at the cost of training `2K` centroids. A query visits cells in
//! increasing `d₁(q,uᵢ) + d₂(q,vⱼ)` order via the **multi-sequence
//! algorithm** until it has gathered a candidate quota, then re-ranks the
//! candidates with OPQ/PQ ADC distances. The paper's observation — IMI
//! accelerates OPQ but *reduces* recall versus the exhaustive scan — falls
//! out of the candidate quota.

use crate::IndexError;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use vaq_baselines::opq::{Opq, OpqConfig};
use vaq_baselines::{AnnIndex, Neighbor};
use vaq_core::QueryEngine;
use vaq_kmeans::{nearest_centroid, KMeans, KMeansConfig};
use vaq_linalg::{squared_euclidean, Matrix};

/// Configuration for [`Imi::build`].
#[derive(Debug, Clone)]
pub struct ImiConfig {
    /// Bits of each half's coarse codebook (`K = 2^bits` centroids/half).
    pub coarse_bits: usize,
    /// Fine quantizer (OPQ) configuration for candidate re-ranking.
    pub opq: OpqConfig,
    /// Default number of candidates gathered per query.
    pub candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ImiConfig {
    /// A standard setup: `2^6` coarse centroids per half, 8-bit OPQ codes.
    pub fn new(num_subspaces: usize) -> Self {
        ImiConfig {
            coarse_bits: 6,
            opq: OpqConfig::new(num_subspaces),
            candidates: 1000,
            seed: 0x5eed,
        }
    }
}

/// A built inverted multi-index.
pub struct Imi {
    /// Column where the second half begins.
    split: usize,
    /// Coarse codebooks for the two halves.
    coarse: [Matrix; 2],
    /// `K×K` inverted lists, row-major by `(c1, c2)`.
    cells: Vec<Vec<u32>>,
    /// Fine quantizer used for re-ranking.
    opq: Opq,
    /// Default candidate quota.
    candidates: usize,
}

impl Imi {
    /// Trains the coarse codebooks and the fine quantizer, then fills the
    /// inverted lists.
    pub fn build(data: &Matrix, cfg: &ImiConfig) -> Result<Imi, IndexError> {
        if data.rows() == 0 {
            return Err(IndexError::EmptyData);
        }
        if cfg.coarse_bits == 0 || cfg.coarse_bits > 12 {
            return Err(IndexError::BadConfig(format!(
                "coarse_bits {} out of 1..=12",
                cfg.coarse_bits
            )));
        }
        if data.cols() < 2 {
            return Err(IndexError::BadConfig("need at least 2 dimensions".into()));
        }
        let k = 1usize << cfg.coarse_bits;
        let split = data.cols() / 2;

        // Train per-half coarse codebooks.
        let halves = [submatrix(data, 0, split), submatrix(data, split, data.cols())];
        let mut coarse = Vec::with_capacity(2);
        for (h, half) in halves.iter().enumerate() {
            let km =
                KMeansConfig::new(k).with_seed(cfg.seed.wrapping_add(h as u64)).with_max_iters(20);
            let model = KMeans::fit(half, &km).map_err(|e| IndexError::BadConfig(e.to_string()))?;
            coarse.push(model.centroids);
        }
        let coarse: [Matrix; 2] = [coarse.remove(0), coarse.remove(0)];

        // Assign every vector to its cell.
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); coarse[0].rows() * coarse[1].rows()];
        for i in 0..data.rows() {
            let row = data.row(i);
            let c1 = nearest_centroid(&coarse[0], &row[..split]).0;
            let c2 = nearest_centroid(&coarse[1], &row[split..]).0;
            cells[c1 * coarse[1].rows() + c2].push(i as u32);
        }

        let opq = Opq::train(data, &cfg.opq).map_err(|e| IndexError::BadConfig(e.to_string()))?;

        Ok(Imi { split, coarse, cells, opq, candidates: cfg.candidates })
    }

    /// Number of non-empty cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }

    /// Visits cells in increasing summed coarse distance until at least
    /// `quota` candidates are gathered; returns their database indices.
    pub fn gather_candidates(&self, query: &[f32], quota: usize) -> Vec<u32> {
        let k1 = self.coarse[0].rows();
        let k2 = self.coarse[1].rows();
        let d1: Vec<f32> = self.coarse[0]
            .iter_rows()
            .map(|c| squared_euclidean(c, &query[..self.split]))
            .collect();
        let d2: Vec<f32> = self.coarse[1]
            .iter_rows()
            .map(|c| squared_euclidean(c, &query[self.split..]))
            .collect();
        let mut ord1: Vec<usize> = (0..k1).collect();
        ord1.sort_by(|&a, &b| d1[a].total_cmp(&d1[b]));
        let mut ord2: Vec<usize> = (0..k2).collect();
        ord2.sort_by(|&a, &b| d2[a].total_cmp(&d2[b]));

        // Multi-sequence traversal over the (i, j) grid of sorted ranks.
        #[derive(PartialEq)]
        struct Cell(f32, usize, usize);
        impl Eq for Cell {}
        impl PartialOrd for Cell {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cell {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.total_cmp(&self.0).then((other.1, other.2).cmp(&(self.1, self.2)))
            }
        }
        let mut heap = BinaryHeap::new();
        let mut pushed: HashSet<(usize, usize)> = HashSet::new();
        heap.push(Cell(d1[ord1[0]] + d2[ord2[0]], 0, 0));
        pushed.insert((0, 0));

        let mut out = Vec::with_capacity(quota);
        while let Some(Cell(_, i, j)) = heap.pop() {
            let cell = &self.cells[ord1[i] * k2 + ord2[j]];
            out.extend_from_slice(cell);
            if out.len() >= quota {
                break;
            }
            if i + 1 < k1 && pushed.insert((i + 1, j)) {
                heap.push(Cell(d1[ord1[i + 1]] + d2[ord2[j]], i + 1, j));
            }
            if j + 1 < k2 && pushed.insert((i, j + 1)) {
                heap.push(Cell(d1[ord1[i]] + d2[ord2[j + 1]], i, j + 1));
            }
        }
        out
    }

    /// Search with an explicit candidate quota: gather cells, then re-rank
    /// the candidate ids through the shared ADC engine (early-abandoned,
    /// exact w.r.t. the ADC ranking; squared distances, PQ convention).
    pub fn search_with_candidates(&self, query: &[f32], k: usize, quota: usize) -> Vec<Neighbor> {
        let ids = self.gather_candidates(query, quota);
        let rotated = self.opq.rotate_query(query);
        let view = self.opq.inner().view();
        let mut engine = QueryEngine::for_view(&view);
        let (hits, _) = engine.search_ids_squared(&view, &rotated, ids.iter().copied(), k);
        hits.into_iter().map(|n| Neighbor { index: n.index, distance: n.distance }).collect()
    }
}

impl AnnIndex for Imi {
    fn name(&self) -> &str {
        "IMI+OPQ"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_with_candidates(query, k, self.candidates)
    }

    fn code_bits(&self) -> usize {
        self.opq.code_bits()
    }
}

/// Copies a contiguous column range into its own matrix.
fn submatrix(data: &Matrix, lo: usize, hi: usize) -> Matrix {
    let mut out = Matrix::zeros(data.rows(), hi - lo);
    for i in 0..data.rows() {
        out.row_mut(i).copy_from_slice(&data.row(i)[lo..hi]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    fn small_cfg() -> ImiConfig {
        let mut cfg = ImiConfig::new(8);
        cfg.coarse_bits = 4;
        cfg.opq = OpqConfig::new(8).with_bits(6);
        cfg.candidates = 200;
        cfg
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Imi::build(&Matrix::zeros(0, 8), &small_cfg()).is_err());
        let ds = SyntheticSpec::deep_like().generate(100, 0, 1);
        let mut cfg = small_cfg();
        cfg.coarse_bits = 0;
        assert!(Imi::build(&ds.data, &cfg).is_err());
    }

    #[test]
    fn cells_partition_database() {
        let ds = SyntheticSpec::sift_like().generate(500, 0, 2);
        let imi = Imi::build(&ds.data, &small_cfg()).unwrap();
        let total: usize = imi.cells.iter().map(|c| c.len()).sum();
        assert_eq!(total, 500);
        assert!(imi.occupied_cells() > 1);
    }

    #[test]
    fn candidates_respect_quota_ordering() {
        // Growing the quota must extend (prefix-preserve) the candidate
        // list: multi-sequence order is deterministic.
        let ds = SyntheticSpec::sift_like().generate(600, 5, 3);
        let imi = Imi::build(&ds.data, &small_cfg()).unwrap();
        let q = ds.queries.row(0);
        let small = imi.gather_candidates(q, 50);
        let large = imi.gather_candidates(q, 300);
        assert!(large.len() >= small.len());
        assert_eq!(&large[..small.len()], small.as_slice());
    }

    #[test]
    fn more_candidates_means_higher_recall() {
        let ds = SyntheticSpec::sift_like().generate(1500, 25, 4);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let imi = Imi::build(&ds.data, &small_cfg()).unwrap();
        let run = |quota: usize| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    imi.search_with_candidates(ds.queries.row(q), 10, quota)
                        .iter()
                        .map(|n| n.index)
                        .collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let low = run(50);
        let high = run(1000);
        assert!(high >= low, "quota 1000 recall {high} < quota 50 recall {low}");
        assert!(high > 0.3, "IMI recall too low even with many candidates: {high}");
    }

    #[test]
    fn index_reduces_recall_vs_exhaustive_opq() {
        // The paper's §V-E observation.
        let ds = SyntheticSpec::sift_like().generate(1500, 25, 5);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let imi = Imi::build(&ds.data, &small_cfg()).unwrap();
        let opq = Opq::train(&ds.data, &OpqConfig::new(8).with_bits(6)).unwrap();
        let run = |f: &dyn Fn(&[f32]) -> Vec<u32>| -> f64 {
            let retrieved: Vec<Vec<u32>> =
                (0..ds.queries.rows()).map(|q| f(ds.queries.row(q))).collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let r_imi =
            run(&|q| imi.search_with_candidates(q, 10, 100).iter().map(|n| n.index).collect());
        let r_opq = run(&|q| opq.search(q, 10).iter().map(|n| n.index).collect());
        assert!(
            r_opq >= r_imi - 0.02,
            "exhaustive OPQ {r_opq} should be at least IMI-with-few-candidates {r_imi}"
        );
    }

    #[test]
    fn candidate_scan_touches_fraction_of_database() {
        let ds = SyntheticSpec::sift_like().generate(2000, 3, 6);
        let imi = Imi::build(&ds.data, &small_cfg()).unwrap();
        let ids = imi.gather_candidates(ds.queries.row(0), 100);
        assert!(ids.len() < 2000 / 2, "candidate gathering scanned {} of 2000", ids.len());
    }
}
