//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, TPAMI
//! 2018) — the strongest graph index in the studies the VAQ paper cites,
//! evaluated in Figure 12 *over PQ-encoded data*.
//!
//! Standard construction: each element draws a geometric level; greedy
//! descent through the upper layers, beam search (`ef_construction`) on the
//! insertion layers, neighbor selection by distance, bidirectional links
//! trimmed back to `M` (`M0` on layer 0). Search descends greedily to
//! layer 0, then beam-searches with `ef_search`.
//!
//! Distances are abstracted behind [`VectorStore`], so the same graph code
//! runs over raw vectors ([`RawStore`]) or PQ codes ([`PqStore`], ADC for
//! query→node and symmetric code distances for node→node) — the Figure 12
//! configuration.

use crate::IndexError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use vaq_baselines::pq::Pq;
use vaq_baselines::{AnnIndex as _, Neighbor};
use vaq_linalg::{squared_euclidean, Matrix};

/// Distance oracle for graph construction and search.
pub trait VectorStore {
    /// Number of stored elements.
    fn len(&self) -> usize;
    /// `true` when no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Squared distance from a raw query vector to element `i`.
    fn query_distance(&self, query: &[f32], i: usize) -> f32;
    /// Squared distance between elements `i` and `j`.
    fn pair_distance(&self, i: usize, j: usize) -> f32;
}

/// Raw-vector store.
#[derive(Debug, Clone)]
pub struct RawStore {
    data: Matrix,
}

impl RawStore {
    /// Wraps a dataset.
    pub fn new(data: Matrix) -> Self {
        RawStore { data }
    }
}

impl VectorStore for RawStore {
    fn len(&self) -> usize {
        self.data.rows()
    }
    fn query_distance(&self, query: &[f32], i: usize) -> f32 {
        squared_euclidean(query, self.data.row(i))
    }
    fn pair_distance(&self, i: usize, j: usize) -> f32 {
        squared_euclidean(self.data.row(i), self.data.row(j))
    }
}

/// PQ-encoded store: query→node via ADC tables computed per query is not
/// possible inside the trait (no per-query state), so the query side
/// decodes lazily; node→node uses reconstructions too. This matches
/// "HNSW over PQ-encoded data": the graph never touches raw vectors.
#[derive(Debug, Clone)]
pub struct PqStore {
    /// Decoded (reconstructed) vectors — the quantized view of the data.
    recon: Matrix,
    /// Bits per code, for budget accounting.
    code_bits: usize,
}

impl PqStore {
    /// Builds the store from a trained PQ index by decoding every code
    /// once (trading memory for speed, as HNSW itself does).
    pub fn from_pq(pq: &Pq) -> Self {
        let n = pq.len();
        let dim = pq.ranges().last().map(|r| r.1).unwrap_or(0);
        let mut recon = Matrix::zeros(n, dim);
        for i in 0..n {
            let dec = pq.decode(pq.code(i));
            recon.row_mut(i).copy_from_slice(&dec);
        }
        PqStore { recon, code_bits: pq.code_bits() }
    }

    /// Bits per encoded vector.
    pub fn code_bits(&self) -> usize {
        self.code_bits
    }
}

impl VectorStore for PqStore {
    fn len(&self) -> usize {
        self.recon.rows()
    }
    fn query_distance(&self, query: &[f32], i: usize) -> f32 {
        squared_euclidean(query, self.recon.row(i))
    }
    fn pair_distance(&self, i: usize, j: usize) -> f32 {
        squared_euclidean(self.recon.row(i), self.recon.row(j))
    }
}

/// Configuration for [`Hnsw::build`].
#[derive(Debug, Clone)]
pub struct HnswConfig {
    /// Max connections per node on layers ≥ 1 (`M`); layer 0 allows `2M`.
    pub m: usize,
    /// Beam width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Default beam width during search (`efSearch`).
    pub ef_search: usize,
    /// RNG seed for level draws.
    pub seed: u64,
}

impl HnswConfig {
    /// A mid-range configuration (paper sweeps M ∈ [8, 32]).
    pub fn new(m: usize) -> Self {
        HnswConfig { m, ef_construction: 100, ef_search: 32, seed: 0x5eed }
    }
}

/// Max-heap entry for candidate frontiers (furthest on top).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Far(f32, u32);
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Min-heap entry (closest on top) via reversed ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Near(f32, u32);
impl Eq for Near {}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

/// The HNSW graph over a [`VectorStore`].
pub struct Hnsw<S: VectorStore> {
    store: S,
    /// `layers[l][node]` = adjacency list of `node` on layer `l`; nodes
    /// absent from a layer have an empty list.
    layers: Vec<Vec<Vec<u32>>>,
    /// Top layer of each node.
    node_level: Vec<usize>,
    entry: u32,
    max_level: usize,
    cfg: HnswConfig,
}

impl<S: VectorStore> Hnsw<S> {
    /// Builds the graph by inserting every element of the store.
    pub fn build(store: S, cfg: &HnswConfig) -> Result<Self, IndexError> {
        if store.is_empty() {
            return Err(IndexError::EmptyData);
        }
        if cfg.m < 2 {
            return Err(IndexError::BadConfig("M must be at least 2".into()));
        }
        let n = store.len();
        let ml = 1.0 / (cfg.m as f64).ln();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut node_level = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            node_level.push(((-u.ln() * ml).floor() as usize).min(24));
        }
        let top = node_level.iter().copied().max().unwrap_or(0);
        let layers: Vec<Vec<Vec<u32>>> = (0..=top).map(|_| vec![Vec::new(); n]).collect();

        // The first node is the initial entry point; its level defines the
        // current max, growing as higher-level nodes are inserted.
        let mut hnsw = Hnsw {
            store,
            layers,
            node_level: node_level.clone(),
            entry: 0,
            max_level: node_level[0],
            cfg: cfg.clone(),
        };
        for i in 1..n {
            hnsw.insert(i as u32);
        }
        Ok(hnsw)
    }

    fn insert(&mut self, id: u32) {
        let level = self.node_level[id as usize];
        let mut ep = self.entry;
        // Greedy descent through layers above the node's level.
        for l in ((level + 1)..=self.max_level).rev() {
            ep = self.greedy_closest_at(id, ep, l);
        }
        // Beam insertion on layers min(level, max_level)..0.
        for l in (0..=level.min(self.max_level)).rev() {
            let candidates = self.search_layer_by_id(id, ep, self.cfg.ef_construction, l);
            let m_max = if l == 0 { self.cfg.m * 2 } else { self.cfg.m };
            let selected: Vec<u32> =
                candidates.iter().take(self.cfg.m).map(|&Near(_, c)| c).collect();
            for &nb in &selected {
                self.layers[l][id as usize].push(nb);
                self.layers[l][nb as usize].push(id);
                if self.layers[l][nb as usize].len() > m_max {
                    self.shrink(nb, l, m_max);
                }
            }
            if let Some(&Near(_, best)) = candidates.first() {
                ep = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// Keeps only the `m_max` closest neighbors of `node` on layer `l`.
    fn shrink(&mut self, node: u32, l: usize, m_max: usize) {
        let mut list = std::mem::take(&mut self.layers[l][node as usize]);
        list.sort_by(|&a, &b| {
            self.store
                .pair_distance(node as usize, a as usize)
                .total_cmp(&self.store.pair_distance(node as usize, b as usize))
        });
        list.dedup();
        list.truncate(m_max);
        self.layers[l][node as usize] = list;
    }

    /// Greedy single-step descent for an *indexed* element.
    fn greedy_closest_at(&self, id: u32, mut ep: u32, l: usize) -> u32 {
        let mut best = self.store.pair_distance(id as usize, ep as usize);
        loop {
            let mut improved = false;
            for &nb in &self.layers[l][ep as usize] {
                let d = self.store.pair_distance(id as usize, nb as usize);
                if d < best {
                    best = d;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer for an indexed element (construction path).
    fn search_layer_by_id(&self, id: u32, ep: u32, ef: usize, l: usize) -> Vec<Near> {
        self.search_layer_impl(|x| self.store.pair_distance(id as usize, x as usize), ep, ef, l)
    }

    /// Beam search on one layer for an external query.
    fn search_layer_query(&self, query: &[f32], ep: u32, ef: usize, l: usize) -> Vec<Near> {
        self.search_layer_impl(|x| self.store.query_distance(query, x as usize), ep, ef, l)
    }

    fn search_layer_impl(
        &self,
        dist: impl Fn(u32) -> f32,
        ep: u32,
        ef: usize,
        l: usize,
    ) -> Vec<Near> {
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(ep);
        let d0 = dist(ep);
        let mut frontier: BinaryHeap<Near> = BinaryHeap::new(); // closest first
        frontier.push(Near(d0, ep));
        let mut results: BinaryHeap<Far> = BinaryHeap::new(); // furthest on top
        results.push(Far(d0, ep));

        while let Some(Near(d, c)) = frontier.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            for &nb in &self.layers[l][c as usize] {
                if !visited.insert(nb) {
                    continue;
                }
                let dn = dist(nb);
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || dn < worst {
                    frontier.push(Near(dn, nb));
                    results.push(Far(dn, nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Near> =
            results.into_vec().into_iter().map(|Far(d, i)| Near(d, i)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// k-NN search with the given beam width (`ef_search`; the config's
    /// default is used by [`Hnsw::search`]).
    pub fn search_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            // Greedy descent for the query.
            let mut best = self.store.query_distance(query, ep as usize);
            loop {
                let mut improved = false;
                for &nb in &self.layers[l][ep as usize] {
                    let d = self.store.query_distance(query, nb as usize);
                    if d < best {
                        best = d;
                        ep = nb;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        let found = self.search_layer_query(query, ep, ef.max(k), 0);
        found.into_iter().take(k).map(|Near(d, i)| Neighbor { index: i, distance: d }).collect()
    }

    /// k-NN search with the configured default `ef_search`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_ef(query, k, self.cfg.ef_search)
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total number of edges on layer 0 (diagnostics).
    pub fn layer0_edges(&self) -> usize {
        self.layers[0].iter().map(|adj| adj.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_baselines::pq::PqConfig;
    use vaq_dataset::{exact_knn, SyntheticSpec};
    use vaq_metrics::recall_at_k;

    #[test]
    fn rejects_bad_configs() {
        let ds = SyntheticSpec::deep_like().generate(50, 0, 1);
        assert!(Hnsw::build(RawStore::new(Matrix::zeros(0, 4)), &HnswConfig::new(8)).is_err());
        assert!(Hnsw::build(RawStore::new(ds.data.clone()), &HnswConfig::new(1)).is_err());
    }

    #[test]
    fn high_recall_on_raw_vectors() {
        let ds = SyntheticSpec::sift_like().generate(1200, 30, 2);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let hnsw = Hnsw::build(RawStore::new(ds.data.clone()), &HnswConfig::new(16)).unwrap();
        let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
            .map(|q| hnsw.search_ef(ds.queries.row(q), 10, 64).iter().map(|n| n.index).collect())
            .collect();
        let r = recall_at_k(&retrieved, &truth, 10);
        assert!(r > 0.8, "HNSW recall too low: {r}");
    }

    #[test]
    fn larger_ef_never_reduces_recall_much() {
        let ds = SyntheticSpec::deep_like().generate(800, 20, 3);
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let hnsw = Hnsw::build(RawStore::new(ds.data.clone()), &HnswConfig::new(12)).unwrap();
        let recall_with_ef = |ef: usize| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    hnsw.search_ef(ds.queries.row(q), 10, ef).iter().map(|n| n.index).collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let low = recall_with_ef(10);
        let high = recall_with_ef(100);
        assert!(high >= low - 0.02, "ef=100 recall {high} < ef=10 recall {low}");
    }

    #[test]
    fn self_query_finds_itself() {
        let ds = SyntheticSpec::deep_like().generate(300, 0, 5);
        let hnsw = Hnsw::build(RawStore::new(ds.data.clone()), &HnswConfig::new(8)).unwrap();
        let mut hits = 0;
        for i in (0..300).step_by(29) {
            let res = hnsw.search_ef(ds.data.row(i), 1, 32);
            if res.first().map(|n| n.index) == Some(i as u32) {
                hits += 1;
            }
        }
        let total = (0..300).step_by(29).count();
        assert!(hits * 10 >= total * 8, "{hits}/{total}");
    }

    #[test]
    fn works_over_pq_store() {
        // The Figure 12 setup: graph over PQ reconstructions.
        let ds = SyntheticSpec::sift_like().generate(800, 15, 7);
        let pq = Pq::train(&ds.data, &PqConfig::new(16).with_bits(8)).unwrap();
        let store = PqStore::from_pq(&pq);
        assert_eq!(store.code_bits(), 128);
        let hnsw = Hnsw::build(store, &HnswConfig::new(12)).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
            .map(|q| hnsw.search_ef(ds.queries.row(q), 10, 64).iter().map(|n| n.index).collect())
            .collect();
        let r = recall_at_k(&retrieved, &truth, 10);
        // Bounded by PQ quantization, but far above chance (10/800).
        assert!(r > 0.4, "HNSW-over-PQ recall too low: {r}");
    }

    #[test]
    fn edges_bounded_by_two_m() {
        let ds = SyntheticSpec::deep_like().generate(500, 0, 9);
        let cfg = HnswConfig::new(8);
        let hnsw = Hnsw::build(RawStore::new(ds.data.clone()), &cfg).unwrap();
        for adj in &hnsw.layers[0] {
            assert!(adj.len() <= cfg.m * 2 + cfg.m, "layer-0 degree {} too big", adj.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = SyntheticSpec::deep_like().generate(200, 3, 11);
        let a = Hnsw::build(RawStore::new(ds.data.clone()), &HnswConfig::new(8)).unwrap();
        let b = Hnsw::build(RawStore::new(ds.data.clone()), &HnswConfig::new(8)).unwrap();
        for q in 0..3 {
            let ra: Vec<u32> = a.search(ds.queries.row(q), 5).iter().map(|n| n.index).collect();
            let rb: Vec<u32> = b.search(ds.queries.row(q), 5).iter().map(|n| n.index).collect();
            assert_eq!(ra, rb);
        }
    }
}
