//! DSTree (Wang, Wang, Pei, Wang, Huang — VLDB 2013): the data-adaptive
//! segmentation tree the paper includes in Figure 11.
//!
//! Each node summarizes its series with an **EAPCA synopsis**: per segment,
//! the min/max of the member means and standard deviations. Splits are
//! data-adaptive twice over: the split *segment* is chosen to maximize the
//! synopsis range (the published QoS-style heuristic reduces to this for
//! mean splits), and every third level performs a **vertical split** that
//! refines the chosen segment into two before splitting — the feature that
//! distinguishes DSTree from fixed-segmentation indexes. The node lower
//! bound is the published EAPCA bound: per segment, the squared distance
//! from the query's segment mean/std to the node's `[min,max]` envelopes,
//! weighted by segment length.
//!
//! Simplifications vs the full system: in-memory only (no disk pages), and
//! the split threshold is the midpoint of the synopsis range rather than
//! the full QoS optimization — the traversal behaviour (lower-bound
//! ordered, NG / epsilon / exact modes via [`TraversalParams`]) matches the
//! published search algorithm.

use crate::{IndexError, TraversalParams};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_baselines::{Neighbor, TopK};
use vaq_linalg::{squared_euclidean, Matrix};

/// Configuration for [`DsTree::build`].
#[derive(Debug, Clone)]
pub struct DsTreeConfig {
    /// Initial number of segments at the root.
    pub init_segments: usize,
    /// Series per leaf before splitting.
    pub leaf_capacity: usize,
    /// Every `vertical_every`-th depth performs a vertical (segmentation-
    /// refining) split; `0` disables vertical splits.
    pub vertical_every: usize,
}

impl DsTreeConfig {
    /// Standard configuration.
    pub fn new() -> Self {
        DsTreeConfig { init_segments: 4, leaf_capacity: 64, vertical_every: 3 }
    }
}

impl Default for DsTreeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-segment synopsis envelope.
#[derive(Debug, Clone, Copy)]
struct SegStats {
    min_mean: f32,
    max_mean: f32,
    min_std: f32,
    max_std: f32,
}

#[derive(Debug, Clone)]
struct Node {
    /// Segment end offsets (exclusive); start of segment `s` is
    /// `bounds[s-1]` (or 0).
    bounds: Vec<usize>,
    syn: Vec<SegStats>,
    members: Vec<u32>,
    children: Option<(u32, u32)>,
}

/// The in-memory DSTree.
pub struct DsTree {
    data: Matrix,
    nodes: Vec<Node>,
    cfg: DsTreeConfig,
}

impl DsTree {
    /// Builds the tree over the rows of `data`.
    pub fn build(data: Matrix, cfg: &DsTreeConfig) -> Result<DsTree, IndexError> {
        if data.rows() == 0 {
            return Err(IndexError::EmptyData);
        }
        if cfg.init_segments == 0 || cfg.init_segments > data.cols() {
            return Err(IndexError::BadConfig(format!(
                "init_segments {} out of range for length {}",
                cfg.init_segments,
                data.cols()
            )));
        }
        if cfg.leaf_capacity == 0 {
            return Err(IndexError::BadConfig("leaf_capacity must be positive".into()));
        }
        let n = data.cols();
        let bounds: Vec<usize> =
            (1..=cfg.init_segments).map(|s| s * n / cfg.init_segments).collect();
        let all: Vec<u32> = (0..data.rows() as u32).collect();
        let mut tree = DsTree { data, nodes: Vec::new(), cfg: cfg.clone() };
        let root = tree.make_node(bounds, all);
        tree.nodes.push(root);
        tree.split_recursive(0, 0);
        Ok(tree)
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Number of tree nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn make_node(&self, bounds: Vec<usize>, members: Vec<u32>) -> Node {
        let syn = self.synopsis(&bounds, &members);
        Node { bounds, syn, members, children: None }
    }

    fn synopsis(&self, bounds: &[usize], members: &[u32]) -> Vec<SegStats> {
        let mut syn = vec![
            SegStats {
                min_mean: f32::INFINITY,
                max_mean: f32::NEG_INFINITY,
                min_std: f32::INFINITY,
                max_std: f32::NEG_INFINITY,
            };
            bounds.len()
        ];
        for &id in members {
            let row = self.data.row(id as usize);
            let mut lo = 0;
            for (s, &hi) in bounds.iter().enumerate() {
                let (mean, std) = mean_std(&row[lo..hi]);
                let st = &mut syn[s];
                st.min_mean = st.min_mean.min(mean);
                st.max_mean = st.max_mean.max(mean);
                st.min_std = st.min_std.min(std);
                st.max_std = st.max_std.max(std);
                lo = hi;
            }
        }
        syn
    }

    fn split_recursive(&mut self, node: usize, depth: usize) {
        if self.nodes[node].members.len() <= self.cfg.leaf_capacity || depth > 40 {
            return;
        }
        // Choose the segment with the widest mean envelope (fall back to
        // std envelope when means are degenerate).
        let (seg, use_std) = {
            let syn = &self.nodes[node].syn;
            let by_mean = syn
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    (a.1.max_mean - a.1.min_mean).total_cmp(&(b.1.max_mean - b.1.min_mean))
                })
                .map(|(i, s)| (i, s.max_mean - s.min_mean))
                .unwrap();
            let by_std = syn
                .iter()
                .enumerate()
                .max_by(|a, b| (a.1.max_std - a.1.min_std).total_cmp(&(b.1.max_std - b.1.min_std)))
                .map(|(i, s)| (i, s.max_std - s.min_std))
                .unwrap();
            if by_mean.1 >= by_std.1 {
                (by_mean.0, false)
            } else {
                (by_std.0, true)
            }
        };

        // Optionally refine the chosen segment first (vertical split).
        let mut bounds = self.nodes[node].bounds.clone();
        if self.cfg.vertical_every > 0
            && depth % self.cfg.vertical_every == self.cfg.vertical_every - 1
        {
            let lo = if seg == 0 { 0 } else { bounds[seg - 1] };
            let hi = bounds[seg];
            if hi - lo >= 2 {
                bounds.insert(seg, lo + (hi - lo) / 2);
            }
        }

        // Horizontal split: route members by their segment statistic
        // against the midpoint threshold.
        let lo = if seg == 0 { 0 } else { self.nodes[node].bounds[seg - 1] };
        let hi = self.nodes[node].bounds[seg];
        let st = self.nodes[node].syn[seg];
        let threshold = if use_std {
            (st.min_std + st.max_std) / 2.0
        } else {
            (st.min_mean + st.max_mean) / 2.0
        };
        let members = self.nodes[node].members.clone();
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        for &id in &members {
            let seg_vals = &self.data.row(id as usize)[lo..hi];
            let (mean, std) = mean_std(seg_vals);
            let v = if use_std { std } else { mean };
            if v <= threshold {
                left_ids.push(id);
            } else {
                right_ids.push(id);
            }
        }
        if left_ids.is_empty() || right_ids.is_empty() {
            return; // degenerate envelope; stay a leaf
        }
        let left = self.make_node(bounds.clone(), left_ids);
        let right = self.make_node(bounds, right_ids);
        let l = self.nodes.len() as u32;
        self.nodes.push(left);
        let r = self.nodes.len() as u32;
        self.nodes.push(right);
        self.nodes[node].children = Some((l, r));
        self.nodes[node].members.clear();
        self.split_recursive(l as usize, depth + 1);
        self.split_recursive(r as usize, depth + 1);
    }

    /// Squared EAPCA lower bound from a query to a node's envelopes.
    fn lower_bound_sq(&self, query: &[f32], node: &Node) -> f32 {
        let mut acc = 0.0f32;
        let mut lo = 0;
        for (s, &hi) in node.bounds.iter().enumerate() {
            let (qm, qs) = mean_std(&query[lo..hi]);
            let st = node.syn[s];
            let dm = if qm < st.min_mean {
                st.min_mean - qm
            } else if qm > st.max_mean {
                qm - st.max_mean
            } else {
                0.0
            };
            let dsd = if qs < st.min_std {
                st.min_std - qs
            } else if qs > st.max_std {
                qs - st.max_std
            } else {
                0.0
            };
            acc += (hi - lo) as f32 * (dm * dm + dsd * dsd);
            lo = hi;
        }
        acc
    }

    /// k-NN search in exact / NG / epsilon mode.
    pub fn search(&self, query: &[f32], k: usize, params: TraversalParams) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.data.cols(), "query length mismatch");
        let mut top = TopK::new(k);
        let eps_factor = match params.epsilon {
            Some(e) => 1.0 / ((1.0 + e) * (1.0 + e)),
            None => 1.0,
        };

        #[derive(PartialEq)]
        struct Item(f32, u32);
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item(self.lower_bound_sq(query, &self.nodes[0]), 0));
        let mut leaves_visited = 0usize;

        while let Some(Item(lb, id)) = heap.pop() {
            if top.is_full() && lb >= top.threshold() * eps_factor {
                break;
            }
            let node = &self.nodes[id as usize];
            match node.children {
                Some((l, r)) => {
                    for c in [l, r] {
                        let clb = self.lower_bound_sq(query, &self.nodes[c as usize]);
                        if !top.is_full() || clb < top.threshold() * eps_factor {
                            heap.push(Item(clb, c));
                        }
                    }
                }
                None => {
                    for &m in &node.members {
                        let d = squared_euclidean(self.data.row(m as usize), query);
                        top.push(m, d);
                    }
                    leaves_visited += 1;
                    if let Some(max) = params.max_leaves {
                        if leaves_visited >= max {
                            break;
                        }
                    }
                }
            }
        }
        top.into_sorted()
    }
}

/// Mean and (population) standard deviation of a slice.
#[inline]
fn mean_std(v: &[f32]) -> (f32, f32) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let n = v.len() as f32;
    let mean = v.iter().sum::<f32>() / n;
    let var = v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    (mean, var.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_dataset::{exact_knn, ucr::UcrFamily};
    use vaq_metrics::recall_at_k;

    fn dataset() -> vaq_dataset::Dataset {
        UcrFamily::TwoPatterns.generate(128, 600, 20, 7)
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!((s - 1.0).abs() < 1e-6);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn build_rejects_bad_configs() {
        assert!(DsTree::build(Matrix::zeros(0, 16), &DsTreeConfig::new()).is_err());
        let ds = dataset();
        let mut cfg = DsTreeConfig::new();
        cfg.init_segments = 0;
        assert!(DsTree::build(ds.data.clone(), &cfg).is_err());
        cfg.init_segments = 4;
        cfg.leaf_capacity = 0;
        assert!(DsTree::build(ds.data.clone(), &cfg).is_err());
    }

    #[test]
    fn tree_splits_and_partitions() {
        let ds = dataset();
        let tree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        assert!(tree.num_nodes() > 1);
        let mut seen = vec![false; ds.data.rows()];
        for node in &tree.nodes {
            if node.children.is_none() {
                for &m in &node.members {
                    assert!(!seen[m as usize]);
                    seen[m as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vertical_splits_refine_segmentation() {
        let ds = dataset();
        let tree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        let root_segments = tree.nodes[0].bounds.len();
        let max_leaf_segments = tree
            .nodes
            .iter()
            .filter(|n| n.children.is_none())
            .map(|n| n.bounds.len())
            .max()
            .unwrap();
        assert!(
            max_leaf_segments > root_segments,
            "no vertical refinement happened: {max_leaf_segments} vs {root_segments}"
        );
    }

    #[test]
    fn exact_mode_matches_brute_force() {
        let ds = dataset();
        let tree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        for q in 0..5 {
            let got: Vec<u32> = tree
                .search(ds.queries.row(q), 10, TraversalParams::exact())
                .iter()
                .map(|n| n.index)
                .collect();
            assert_eq!(got, truth[q], "query {q}");
        }
    }

    #[test]
    fn lower_bound_is_sound() {
        let ds = dataset();
        let tree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        let q = ds.queries.row(0);
        for node in &tree.nodes {
            if node.children.is_none() {
                let lb = tree.lower_bound_sq(q, node);
                for &m in &node.members {
                    let d = squared_euclidean(ds.data.row(m as usize), q);
                    assert!(lb <= d + 1e-2 * d.max(1.0), "LB {lb} > distance {d}");
                }
            }
        }
    }

    #[test]
    fn ng_mode_recall_grows_with_leaves() {
        let ds = dataset();
        let tree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 10);
        let run = |params: TraversalParams| -> f64 {
            let retrieved: Vec<Vec<u32>> = (0..ds.queries.rows())
                .map(|q| {
                    tree.search(ds.queries.row(q), 10, params).iter().map(|n| n.index).collect()
                })
                .collect();
            recall_at_k(&retrieved, &truth, 10)
        };
        let few = run(TraversalParams::ng(1));
        let many = run(TraversalParams::ng(60));
        assert!(many >= few);
        assert!(many > 0.5, "NG-60 recall too low: {many}");
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let ds = dataset();
        let tree = DsTree::build(ds.data.clone(), &DsTreeConfig::new()).unwrap();
        let truth = exact_knn(&ds.data, &ds.queries, 1);
        for q in 0..8 {
            let got = tree.search(ds.queries.row(q), 1, TraversalParams::epsilon(0.5));
            let exact_d = squared_euclidean(ds.data.row(truth[q][0] as usize), ds.queries.row(q));
            assert!(
                got[0].distance <= exact_d * 2.25 + 1e-3,
                "epsilon guarantee violated: {} vs {exact_d}",
                got[0].distance
            );
        }
    }
}
