//! Durability suite (ISSUE 8): corruption-injection over the `VAQ3`
//! checksummed manifest and the write-ahead log, plus commit-protocol
//! checks.
//!
//! The contract under test:
//!
//! * any single-byte mutation or truncation of a `VAQ3` manifest is
//!   *detected* — the CRC32C framing turns silent corruption into a typed
//!   error (a CRC detects every burst up to its width, so no 8-bit flip
//!   can slip through);
//! * a damaged WAL recovers to a **prefix-consistent** state: the live-id
//!   set after recovery equals the state after some acknowledged prefix
//!   of the logged ops — never a partial op, never an unacknowledged one;
//! * an interrupted atomic commit leaves the previous manifest fully
//!   readable (old-or-new, never torn);
//! * nothing in any of the above panics.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
#[cfg(feature = "faults")]
use vaq_core::Vaq;
use vaq_core::{SearchStrategy, SegmentPolicy, SegmentedVaq, VaqConfig};
use vaq_linalg::Matrix;

/// Serializes every test in this binary: with the `faults` feature on,
/// the injection registry is process-global, and an armed `persist.*`
/// site would fail the *other* tests' real saves and recoveries.
static IO_LOCK: Mutex<()> = Mutex::new(());

fn io_guard() -> MutexGuard<'static, ()> {
    IO_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn toy_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(d);
        for j in 0..d {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            row.push(v * 2.0 / (1.0 + j as f32 * 0.3));
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

fn slice(data: &Matrix, lo: usize, hi: usize) -> Matrix {
    Matrix::from_rows(&(lo..hi).map(|i| data.row(i).to_vec()).collect::<Vec<_>>())
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vaq-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `<manifest>.wal`, mirroring the library's pairing convention.
fn wal_path(manifest: &Path) -> PathBuf {
    let mut os = manifest.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// A durable index checkpointed once and then mutated through the WAL,
/// captured as raw on-disk bytes plus every acknowledged live-id state.
struct DurableFixture {
    manifest: Vec<u8>,
    wal: Vec<u8>,
    /// Live-id set after the checkpoint and after each subsequent
    /// acknowledged op, in log order. A recovery from any damaged-WAL
    /// prefix must land on exactly one of these (advisory seal/compact
    /// markers between ops do not change the live set, so dropping them
    /// also lands on a recorded state).
    states: Vec<Vec<u32>>,
}

fn durable_fixture() -> &'static DurableFixture {
    static FX: OnceLock<DurableFixture> = OnceLock::new();
    FX.get_or_init(|| {
        let dir = fresh_dir("fixture");
        let path = dir.join("index.vaq");
        let data = toy_data(120, 10, 11);
        let seg = SegmentedVaq::train(
            &slice(&data, 0, 60),
            &VaqConfig::new(24, 4).with_ti_clusters(8),
            SegmentPolicy::default().with_seal_threshold(16).with_ti_clusters(4).sequential(),
        )
        .unwrap();
        seg.make_durable(&path).unwrap();
        let mut states = vec![seg.live_ids()];
        let mut cursor = 60;
        for _batch in 0..3 {
            // One `Add` record per batch (prefixes cannot split it), one
            // `Delete` record per victim; state recorded at each boundary.
            let ids = seg.add(&slice(&data, cursor, cursor + 6)).unwrap();
            cursor += 6;
            states.push(seg.live_ids());
            assert!(seg.try_delete(ids[1]).unwrap());
            states.push(seg.live_ids());
        }
        // Cross a seal boundary so advisory markers land in the log too.
        seg.flush();
        assert!(seg.try_delete(2).unwrap());
        states.push(seg.live_ids());
        let fx = DurableFixture {
            manifest: std::fs::read(&path).unwrap(),
            wal: std::fs::read(wal_path(&path)).unwrap(),
            states,
        };
        let _ = std::fs::remove_dir_all(&dir);
        fx
    })
}

/// Writes the (possibly damaged) manifest + WAL pair and recovers.
fn recover(name: &str, manifest: &[u8], wal: &[u8]) -> Result<SegmentedVaq, vaq_core::VaqError> {
    let dir = fresh_dir(name);
    let path = dir.join("index.vaq");
    std::fs::write(&path, manifest).unwrap();
    std::fs::write(wal_path(&path), wal).unwrap();
    let out = SegmentedVaq::open_durable(&path);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Any single-byte mutation of a `VAQ3` manifest is rejected with a
    /// typed error: the header and every extent carry a CRC32C, and a CRC
    /// detects all bursts up to its width — an 8-bit flip cannot pass.
    #[test]
    fn vaq3_byte_mutations_are_always_detected(pos_seed in 0usize..1_000_000, delta in 1u8..=255) {
        let _g = io_guard();
        let fx = durable_fixture();
        let mut bytes = fx.manifest.clone();
        let pos = pos_seed % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        prop_assert!(SegmentedVaq::from_bytes(&bytes).is_err(), "mutation at {pos} not detected");
        prop_assert!(recover("vaq3-mut", &bytes, &fx.wal).is_err());
    }

    /// Every strict prefix of a `VAQ3` manifest is rejected with a typed
    /// error (truncation lands mid-header, mid-extent, or drops extents —
    /// all of which the length/CRC framing catches).
    #[test]
    fn vaq3_truncations_always_error(cut_seed in 0usize..1_000_000) {
        let _g = io_guard();
        let fx = durable_fixture();
        let cut = cut_seed % fx.manifest.len();
        prop_assert!(SegmentedVaq::from_bytes(&fx.manifest[..cut]).is_err());
    }

    /// Truncating the WAL at *any* byte boundary recovers to a
    /// prefix-consistent state: the final torn record is dropped (the op
    /// it logged never acknowledged) and the live-id set equals the state
    /// after some acknowledged prefix of the ops.
    #[test]
    fn wal_truncation_recovers_an_acknowledged_prefix(cut_seed in 0usize..1_000_000) {
        let _g = io_guard();
        let fx = durable_fixture();
        let cut = cut_seed % (fx.wal.len() + 1);
        let rec = recover("wal-cut", &fx.manifest, &fx.wal[..cut]).expect("prefix must recover");
        let ids = rec.live_ids();
        prop_assert!(
            fx.states.contains(&ids),
            "cut at {cut} recovered a live set matching no acknowledged state: {ids:?}"
        );
    }

    /// A single flipped bit anywhere in the WAL either truncates a torn
    /// tail (prefix-consistent recovery, as above) or is reported as typed
    /// corruption — never a panic, never an unacknowledged state.
    #[test]
    fn wal_bit_flips_recover_or_error(pos_seed in 0usize..1_000_000, bit in 0u8..8) {
        let _g = io_guard();
        let fx = durable_fixture();
        let mut wal = fx.wal.clone();
        let pos = pos_seed % wal.len();
        wal[pos] ^= 1 << bit;
        // Typed corruption is one allowed outcome; the other is a clean
        // recovery, which must land on an acknowledged state.
        if let Ok(rec) = recover("wal-flip", &fx.manifest, &wal) {
            let ids = rec.live_ids();
            prop_assert!(
                fx.states.contains(&ids),
                "flip at {pos} recovered a live set matching no acknowledged state: {ids:?}"
            );
        }
    }
}

/// The WAL round trip without any damage: an index that is mutated after
/// its last checkpoint and then abandoned (no clean shutdown exists in
/// this design — the manifest is stale by construction) recovers to the
/// exact live state by replaying the log suffix.
#[test]
fn open_durable_replays_to_the_live_state() {
    let _g = io_guard();
    let dir = fresh_dir("replay");
    let path = dir.join("index.vaq");
    let data = toy_data(100, 10, 21);
    let seg = SegmentedVaq::train(
        &slice(&data, 0, 50),
        &VaqConfig::new(24, 4).with_ti_clusters(8),
        SegmentPolicy::default().with_seal_threshold(16).with_ti_clusters(4).sequential(),
    )
    .unwrap();
    seg.make_durable(&path).unwrap();
    let ids = seg.add(&slice(&data, 50, 80)).unwrap();
    assert!(seg.try_delete(ids[3]).unwrap());
    seg.update(ids[5], data.row(99)).unwrap();
    seg.flush();

    let rec = SegmentedVaq::open_durable(&path).unwrap();
    assert_eq!(rec.live_ids(), seg.live_ids());
    for qi in 90..100 {
        let a = seg.search_with(data.row(qi), 7, SearchStrategy::FullScan).unwrap().0;
        let b = rec.search_with(data.row(qi), 7, SearchStrategy::FullScan).unwrap().0;
        let mut a: Vec<(u32, u32)> = a.iter().map(|h| (h.distance.to_bits(), h.index)).collect();
        let mut b: Vec<(u32, u32)> = b.iter().map(|h| (h.distance.to_bits(), h.index)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "query {qi} diverges after replay");
    }
    // The recovered index is durable in its own right: checkpointing it
    // absorbs the replayed suffix and restarts the log.
    rec.checkpoint().unwrap();
    let again = SegmentedVaq::open_durable(&path).unwrap();
    assert_eq!(again.live_ids(), seg.live_ids());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `VAQ4` out-of-core fixture: one index saved in the page-aligned
/// extent layout, opened both ways. The directory is kept alive for the
/// whole process — the mapped instance borrows its bytes from the file.
struct MappedFixture {
    data: Matrix,
    file: Vec<u8>,
    mapped: SegmentedVaq,
    owned: SegmentedVaq,
}

fn mapped_fixture() -> &'static MappedFixture {
    static FX: OnceLock<MappedFixture> = OnceLock::new();
    FX.get_or_init(|| {
        let dir = fresh_dir("vaq4-fixture");
        let path = dir.join("index.vaq4");
        let data = toy_data(220, 10, 41);
        let seg = SegmentedVaq::train(
            &slice(&data, 0, 120),
            &VaqConfig::new(24, 4).with_ti_clusters(8),
            SegmentPolicy::default().with_seal_threshold(32).with_ti_clusters(4).sequential(),
        )
        .unwrap();
        seg.add(&slice(&data, 120, 200)).unwrap();
        seg.delete(5); // sealed row → non-empty tombstone extent
        seg.delete(190); // buffered row
        seg.save_mapped(&path).unwrap();
        MappedFixture {
            data,
            file: std::fs::read(&path).unwrap(),
            mapped: SegmentedVaq::open_mapped(&path).unwrap(),
            owned: SegmentedVaq::load(&path).unwrap(),
        }
    })
}

fn strategy_from(pick: u8) -> SearchStrategy {
    match pick % 5 {
        0 => SearchStrategy::FullScan,
        1 => SearchStrategy::EarlyAbandon,
        2 => SearchStrategy::TiEa { visit_frac: 1.0 },
        3 => SearchStrategy::TiEa { visit_frac: 0.35 },
        _ => SearchStrategy::Quantized,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// `Mapped` and `Owned` storage are interchangeable: for any query,
    /// `k`, and strategy, the neighbor lists *and* the work counters come
    /// out identical — the mapped scan paths read the same bytes the
    /// owned paths copied out.
    #[test]
    fn vaq4_mapped_and_owned_answers_are_identical(
        qi in 0usize..220,
        k in 1usize..=12,
        pick in 0u8..10,
    ) {
        let _g = io_guard();
        let fx = mapped_fixture();
        let strat = strategy_from(pick);
        let q = fx.data.row(qi);
        let (mn, ms) = fx.mapped.search_with(q, k, strat).unwrap();
        let (on, os) = fx.owned.search_with(q, k, strat).unwrap();
        prop_assert_eq!(&mn, &on, "query {} k {} {:?}: neighbors diverge", qi, k, strat);
        prop_assert_eq!(ms, os, "query {} k {} {:?}: stats diverge", qi, k, strat);
    }

    /// Any single-byte mutation of a `VAQ4` extent file is either
    /// rejected with a typed error (owned parse up front; mapped open or
    /// first search, via lazy verification) or — when the flip lands in
    /// the unchecksummed inter-extent alignment padding — changes no
    /// answer. Never a panic, never a silently wrong result.
    #[test]
    fn vaq4_byte_mutations_reject_or_leave_answers_unchanged(
        pos_seed in 0usize..1_000_000,
        delta in 1u8..=255,
    ) {
        let _g = io_guard();
        let fx = mapped_fixture();
        let mut bytes = fx.file.clone();
        let pos = pos_seed % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let q = fx.data.row(3);
        let clean = fx.owned.search_with(q, 7, SearchStrategy::Quantized).unwrap().0;

        if let Ok(back) = SegmentedVaq::from_bytes(&bytes) {
            let got = back.search_with(q, 7, SearchStrategy::Quantized).unwrap().0;
            prop_assert_eq!(got, clean.clone(), "owned parse at {} mis-answers", pos);
        }
        let dir = fresh_dir("vaq4-mut");
        let path = dir.join("index.vaq4");
        std::fs::write(&path, &bytes).unwrap();
        let searched = SegmentedVaq::open_mapped(&path)
            .and_then(|m| m.search_with(q, 7, SearchStrategy::Quantized));
        if let Ok((got, _)) = searched {
            prop_assert_eq!(got, clean, "mapped open at {} mis-answers", pos);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every strict prefix of a `VAQ4` file is rejected — the extent
    /// table requires the last extent to end exactly at the file end, so
    /// no truncation can look complete.
    #[test]
    fn vaq4_truncations_always_error(cut_seed in 0usize..1_000_000) {
        let _g = io_guard();
        let fx = mapped_fixture();
        let cut = cut_seed % fx.file.len();
        prop_assert!(SegmentedVaq::from_bytes(&fx.file[..cut]).is_err(), "owned at {}", cut);
        let dir = fresh_dir("vaq4-cut");
        let path = dir.join("index.vaq4");
        std::fs::write(&path, &fx.file[..cut]).unwrap();
        prop_assert!(SegmentedVaq::open_mapped(&path).is_err(), "mapped at {}", cut);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An aborted atomic commit must leave the previously committed manifest
/// byte-for-byte intact: the staging file may hold torn debris, but the
/// rename never happened.
#[cfg(feature = "faults")]
#[test]
fn interrupted_save_preserves_the_old_index() {
    use vaq_core::faults::{arm, disarm_all, Trigger};

    let _g = io_guard();
    let dir = fresh_dir("aborted-commit");
    let path = dir.join("index.vaq");
    let data = toy_data(80, 10, 31);
    let old = Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(8)).unwrap();
    old.save(&path).unwrap();
    let committed = std::fs::read(&path).unwrap();

    let newer = Vaq::train(&slice(&data, 0, 60), &VaqConfig::new(24, 4)).unwrap();
    // Kill the commit at each protocol step in turn: mid staging write,
    // at the staging fsync, and at the rename.
    for (site, trigger) in [
        ("persist.commit", Trigger::NthHit(1)),
        ("persist.fsync", Trigger::NthHit(1)),
        ("persist.commit", Trigger::NthHit(2)),
    ] {
        disarm_all();
        arm(site, trigger);
        let err = newer.save(&path).unwrap_err();
        assert!(matches!(err, vaq_core::VaqError::Io { .. }), "{site}: {err}");
        disarm_all();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            committed,
            "{site}: aborted commit disturbed the committed manifest"
        );
        let back = Vaq::load(&path).unwrap();
        assert_eq!(back.to_bytes(), old.to_bytes(), "{site}: old index no longer loads");
    }
    // With injection gone the same save lands, old-to-new atomically.
    newer.save(&path).unwrap();
    assert_eq!(Vaq::load(&path).unwrap().to_bytes(), newer.to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}
