//! Concurrency and linearizability suite for the segmented index
//! (ISSUE 6, satellite 4).
//!
//! Three angles on the same contract — a [`SegmentedVaq`] behaves like a
//! single flat index no matter how its data is physically arranged or how
//! many threads touch it:
//!
//! 1. **Sequential linearizability (property-based):** random interleaved
//!    add/delete/search logs applied to a segmented index (tiny seal
//!    threshold, aggressive compaction) and to an *unsealed oracle* (same
//!    trained model, seal threshold it can never reach, so every row stays
//!    in the exactly-scanned write buffer). Every search must return
//!    bitwise-identical results: sealing, tombstones, and compaction are
//!    pure re-arrangements.
//! 2. **Snapshot atomicity under real concurrency:** one writer and three
//!    readers (≥ 4 threads). Every concurrent query answer must equal the
//!    answer after *some* prefix of the writer's op log — readers can see
//!    stale snapshots but never torn ones.
//! 3. **Multi-writer convergence:** four writers add and delete
//!    concurrently; the final state must account for exactly the surviving
//!    rows, pass the full structural audit, and serve consistent queries.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use vaq_core::{Audit, Neighbor, SearchStrategy, SegmentPolicy, SegmentedVaq, Vaq, VaqConfig};
use vaq_linalg::Matrix;

const DIM: usize = 10;
const BASE_ROWS: usize = 120;

/// Deterministic splitmix-style generator so op logs replay exactly.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n.max(1)
    }

    fn row(&mut self) -> Vec<f32> {
        (0..DIM).map(|_| ((self.next() >> 40) as f32 / (1u32 << 23) as f32) - 1.0).collect()
    }

    fn batch(&mut self, rows: usize) -> Matrix {
        Matrix::from_rows(&(0..rows).map(|_| self.row()).collect::<Vec<_>>())
    }
}

/// One model trained once and cloned into every test — training dominates,
/// and sharing it makes subject and oracle encode rows identically.
fn base_vaq() -> &'static Vaq {
    static V: OnceLock<Vaq> = OnceLock::new();
    V.get_or_init(|| {
        let mut rng = Lcg::new(42);
        let data = rng.batch(BASE_ROWS);
        Vaq::train(&data, &VaqConfig::new(20, 4).with_ti_clusters(12)).unwrap()
    })
}

/// The subject: seals every few rows and compacts aggressively, so short
/// op logs cross many seal/merge/purge boundaries.
fn churny_subject(background: bool) -> SegmentedVaq {
    let policy = SegmentPolicy::default()
        .with_seal_threshold(12)
        .with_compact_min_segments(3)
        .with_tombstone_purge_frac(0.3)
        .with_ti_clusters(6);
    let policy = if background { policy } else { policy.sequential() };
    SegmentedVaq::from_vaq(base_vaq().clone(), policy)
}

/// The oracle: a seal threshold no test can reach, so every added row
/// stays in the write buffer and is scanned exactly. Same trained model,
/// so ADC sums are bitwise identical to the subject's.
fn unsealed_oracle() -> SegmentedVaq {
    SegmentedVaq::from_vaq(
        base_vaq().clone(),
        SegmentPolicy::default().with_seal_threshold(1 << 20).sequential(),
    )
}

/// Canonical form for set-membership checks on query answers (f32 compared
/// by bit pattern; distances on both sides come from the same arithmetic).
fn canon(hits: &[Neighbor]) -> Vec<(u32, u32)> {
    hits.iter().map(|h| (h.index, h.distance.to_bits())).collect()
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random op logs: the segmented subject and the unsealed oracle agree
    /// on id assignment, delete outcomes, every intermediate search, and
    /// the final live set — across seal, merge, and purge boundaries.
    #[test]
    fn random_op_logs_match_the_unsealed_oracle(seed in 0u64..1_000_000) {
        let subject = churny_subject(false);
        let oracle = unsealed_oracle();
        let mut rng = Lcg::new(seed);
        let mut live: Vec<u32> = subject.live_ids();

        for _ in 0..24 {
            match rng.below(4) {
                // Adds are twice as likely as the other ops so logs grow.
                0 | 1 => {
                    let rows = 1 + rng.below(4);
                    let m = rng.batch(rows);
                    let a = subject.add(&m).unwrap();
                    let b = oracle.add(&m).unwrap();
                    prop_assert_eq!(&a, &b, "id assignment diverged");
                    live.extend(a);
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.swap_remove(rng.below(live.len()));
                        prop_assert!(subject.delete(id));
                        prop_assert!(oracle.delete(id));
                        // Double delete is a no-op on both sides.
                        prop_assert_eq!(subject.delete(id), oracle.delete(id));
                    }
                }
                _ => {
                    let q = rng.row();
                    let k = 1 + rng.below(8);
                    let a = subject.search_with(&q, k, SearchStrategy::FullScan).unwrap().0;
                    let b = oracle.search_with(&q, k, SearchStrategy::FullScan).unwrap().0;
                    prop_assert_eq!(a, b, "mid-log search diverged");
                }
            }
        }

        subject.flush();
        prop_assert!(subject.audit().is_ok());
        prop_assert!(oracle.audit().is_ok());
        prop_assert_eq!(subject.len(), oracle.len());
        prop_assert_eq!(subject.live_ids(), oracle.live_ids());

        let q = rng.row();
        let exact = subject.search_with(&q, 10, SearchStrategy::FullScan).unwrap().0;
        let oracle_exact = oracle.search_with(&q, 10, SearchStrategy::FullScan).unwrap().0;
        prop_assert_eq!(&exact, &oracle_exact, "final search diverged");
        // The pruned path visits everything at visit_frac 1.0, so it must
        // rank the same ids as the exact scan.
        let pruned = subject
            .search_with(&q, 10, SearchStrategy::TiEa { visit_frac: 1.0 })
            .unwrap()
            .0;
        prop_assert_eq!(
            pruned.iter().map(|h| h.index).collect::<Vec<_>>(),
            exact.iter().map(|h| h.index).collect::<Vec<_>>()
        );
    }
}

/// Sets a flag on drop so reader loops terminate even if the writer
/// thread panics mid-log.
struct SetOnDrop<'a>(&'a AtomicBool);

impl Drop for SetOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// One writer, three readers (four threads): every concurrently observed
/// query answer equals the answer after some prefix of the writer's op
/// log. Readers may lag behind the writer, but a torn snapshot — a
/// half-applied batch, a half-sealed buffer, a half-merged segment pair —
/// would produce an answer outside the prefix set and fail here.
#[test]
fn concurrent_reads_match_some_write_prefix() {
    const OPS: usize = 60;
    let query: Vec<f32> = Lcg::new(9001).row();
    let k = 8;

    // Deterministic op log, with ids precomputed: a single writer assigns
    // ids sequentially, so the oracle replay below sees the same ones.
    enum Op {
        Add(Matrix),
        Delete(u32),
    }
    let mut rng = Lcg::new(7);
    let mut ops = Vec::with_capacity(OPS);
    let mut next_id = BASE_ROWS as u32;
    let mut live: Vec<u32> = (0..BASE_ROWS as u32).collect();
    for _ in 0..OPS {
        if rng.below(3) < 2 || live.is_empty() {
            let rows = 2 + rng.below(4);
            ops.push(Op::Add(rng.batch(rows)));
            live.extend(next_id..next_id + rows as u32);
            next_id += rows as u32;
        } else {
            let id = live.swap_remove(rng.below(live.len()));
            ops.push(Op::Delete(id));
        }
    }

    // Replay the log on the unsealed oracle, recording the exact answer
    // after every prefix (including the empty one).
    let oracle = unsealed_oracle();
    let mut allowed: HashSet<Vec<(u32, u32)>> = HashSet::new();
    allowed.insert(canon(&oracle.search_with(&query, k, SearchStrategy::FullScan).unwrap().0));
    for op in &ops {
        match op {
            Op::Add(m) => {
                oracle.add(m).unwrap();
            }
            Op::Delete(id) => {
                assert!(oracle.delete(*id));
            }
        }
        allowed.insert(canon(&oracle.search_with(&query, k, SearchStrategy::FullScan).unwrap().0));
    }
    let final_answer = canon(&oracle.search_with(&query, k, SearchStrategy::FullScan).unwrap().0);

    // Run the same log against the churny subject with background
    // maintenance on, while three readers hammer the query path.
    let subject = churny_subject(true);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for reader in 0..3 {
            let subject = &subject;
            let done = &done;
            let query = &query;
            let allowed = &allowed;
            scope.spawn(move || {
                // Two readers exercise the cached-searcher revalidation
                // path, one takes a fresh snapshot per query.
                let mut searcher = subject.searcher();
                let mut seen = 0usize;
                loop {
                    let hits = if reader == 0 {
                        subject.search_with(query, k, SearchStrategy::FullScan).unwrap().0
                    } else {
                        searcher.search_with(query, k, SearchStrategy::FullScan).unwrap().0
                    };
                    let got = canon(&hits);
                    assert!(
                        allowed.contains(&got),
                        "reader {reader} saw an answer matching no write prefix: {got:?}"
                    );
                    seen += 1;
                    if done.load(Ordering::Acquire) && seen >= 3 {
                        return;
                    }
                }
            });
        }
        let _flag = SetOnDrop(&done);
        for op in &ops {
            match op {
                Op::Add(m) => {
                    subject.add(m).unwrap();
                }
                Op::Delete(id) => {
                    assert!(subject.delete(*id));
                }
            }
        }
        subject.flush();
    });

    subject.flush();
    assert!(subject.audit().is_ok(), "{}", subject.audit());
    assert_eq!(
        canon(&subject.search_with(&query, k, SearchStrategy::FullScan).unwrap().0),
        final_answer,
        "final state diverged from the sequential replay"
    );
    assert_eq!(subject.len(), oracle.len());
    assert_eq!(subject.live_ids(), oracle.live_ids());
}

/// Four concurrent writers: ids never collide, every surviving row is
/// findable, every deleted row is gone, and the merged final state passes
/// the full structural audit.
#[test]
fn parallel_writers_converge_to_a_consistent_state() {
    const WRITERS: usize = 4;
    let subject = churny_subject(true);

    let results: Vec<(Vec<u32>, Vec<u32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let subject = &subject;
                scope.spawn(move || {
                    let mut rng = Lcg::new(0xC0FFEE + w as u64);
                    let mut mine = Vec::new();
                    for _ in 0..12 {
                        let rows = 1 + rng.below(3);
                        let ids = subject.add(&rng.batch(rows)).unwrap();
                        mine.extend(ids);
                    }
                    // Drop every third of this writer's own rows.
                    let mut kept = Vec::new();
                    let mut deleted = Vec::new();
                    for (i, id) in mine.into_iter().enumerate() {
                        if i % 3 == 2 {
                            assert!(subject.delete(id), "delete of own id {id} failed");
                            deleted.push(id);
                        } else {
                            kept.push(id);
                        }
                    }
                    (kept, deleted)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    subject.flush();
    assert!(subject.audit().is_ok(), "{}", subject.audit());

    // Ids are globally unique across writers.
    let mut all_ids: Vec<u32> =
        results.iter().flat_map(|(k, d)| k.iter().chain(d).copied()).collect();
    let total = all_ids.len();
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(all_ids.len(), total, "writers received overlapping ids");

    let kept: Vec<u32> = results.iter().flat_map(|(k, _)| k.iter().copied()).collect();
    let deleted: Vec<u32> = results.iter().flat_map(|(_, d)| d.iter().copied()).collect();
    assert_eq!(subject.len(), BASE_ROWS + kept.len());
    for &id in &kept {
        assert!(subject.contains(id), "surviving id {id} is missing");
    }
    for &id in &deleted {
        assert!(!subject.contains(id), "deleted id {id} is still live");
    }
    let mut expected: Vec<u32> = (0..BASE_ROWS as u32).chain(kept.iter().copied()).collect();
    expected.sort_unstable();
    assert_eq!(subject.live_ids(), expected);

    // The final state serves queries over exactly the live set.
    let q = Lcg::new(31337).row();
    let hits = subject.search_with(&q, 10, SearchStrategy::FullScan).unwrap().0;
    assert_eq!(hits.len(), 10);
    let live: HashSet<u32> = expected.into_iter().collect();
    let unique: HashSet<u32> = hits.iter().map(|h| h.index).collect();
    assert_eq!(unique.len(), 10, "duplicate ids in a query answer");
    assert!(hits.iter().all(|h| live.contains(&h.index)), "query surfaced a dead or unknown id");
}
