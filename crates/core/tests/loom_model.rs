//! Exhaustive model checking of the `SegmentedVaq` snapshot protocol.
//!
//! Build the workspace with `RUSTFLAGS="--cfg loom"` and this file's
//! `#[cfg(loom)]` tests drive the scenarios under the vendored `loom`
//! checker: every thread interleaving (preemption-bounded) and, for the
//! version counter, every store an atomic load may legally observe. The
//! `vaq_core::sync` facade (lint rule VAQ008) is what guarantees the
//! primitives these scenarios exercise are the same ones production
//! code uses.
//!
//!     RUSTFLAGS="--cfg loom" cargo test -p vaq-core --test loom_model --release
//!
//! Without `--cfg loom` only the plain-thread smoke test runs, keeping a
//! writer-vs-reader seal race in the default `cargo test -q` tier.

use std::sync::OnceLock;
use vaq_core::{SegmentPolicy, SegmentedVaq, Vaq, VaqConfig};
use vaq_linalg::Matrix;

const DIM: usize = 4;
const BASE_ROWS: usize = 16;

/// Deterministic toy vectors (splitmix64-driven, no RNG dependency).
fn toy_rows(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 24) as f32
    };
    (0..n).map(|_| (0..DIM).map(|_| next()).collect()).collect()
}

/// One trained model per process: training is deterministic and pure
/// computation, so it stays *outside* the model closure — each loom
/// iteration clones the trained [`Vaq`] instead of re-training.
fn trained() -> &'static Vaq {
    static CELL: OnceLock<Vaq> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = Matrix::from_rows(&toy_rows(BASE_ROWS, 7));
        let mut cfg = VaqConfig::new(8, 2);
        cfg.ti_clusters = 0; // exact scan: smallest model, fewest sync ops
        Vaq::train(&data, &cfg).expect("toy training")
    })
}

fn fresh(policy: SegmentPolicy) -> SegmentedVaq {
    SegmentedVaq::from_vaq(trained().clone(), policy.with_ti_clusters(0))
}

fn assert_distinct(ids: &[u32]) {
    let mut seen = ids.to_vec();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), ids.len(), "duplicate ids in one result set");
}

// ---------------------------------------------------------------------------
// Default-tier smoke test: the same seal race, on real OS threads.
// ---------------------------------------------------------------------------

/// 1 writer + 1 reader racing a buffer seal. On the default (std) build
/// this is a plain concurrency smoke test; under `--cfg loom` the
/// exhaustive variants below take over the heavy lifting and this runs
/// inside the checker's passthrough mode.
#[test]
fn smoke_seal_race_writer_vs_reader() {
    let index = fresh(SegmentPolicy::default().with_seal_threshold(2).sequential());
    let writer = {
        let index = index.clone();
        std::thread::spawn(move || {
            for chunk in 0..4 {
                let rows = toy_rows(2, 100 + chunk);
                index.add(&Matrix::from_rows(&rows)).expect("add");
            }
        })
    };
    let mut searcher = index.searcher();
    let query = toy_rows(1, 3)[0].clone();
    for _ in 0..16 {
        let hits = searcher.search(&query, 8).expect("search");
        assert_eq!(hits.len(), 8);
        assert_distinct(&hits.iter().map(|h| h.index).collect::<Vec<_>>());
    }
    writer.join().expect("writer");
    index.flush();
    let hits = index.search(&query, BASE_ROWS + 8).expect("final search");
    assert_eq!(hits.len(), BASE_ROWS + 8, "all rows searchable after seal");
}

// ---------------------------------------------------------------------------
// Exhaustive scenarios (model-checked builds only).
// ---------------------------------------------------------------------------

#[cfg(loom)]
mod exhaustive {
    use super::*;

    /// Seal-while-search: a writer appends past the seal threshold
    /// (inline seal) while a reader keeps searching through a cached
    /// searcher. Under every interleaving the reader sees a coherent
    /// snapshot: full result sets, no duplicate ids, no panics; after
    /// the writer is joined the new rows are visible.
    #[test]
    fn seal_while_search() {
        let query = toy_rows(1, 3)[0].clone();
        loom::model(move || {
            let index = fresh(SegmentPolicy::default().with_seal_threshold(2).sequential());
            let writer = {
                let index = index.clone();
                let rows = toy_rows(2, 11);
                vaq_core::sync::thread::spawn(move || {
                    index.add(&Matrix::from_rows(&rows)).expect("add");
                })
            };
            let mut searcher = index.searcher();
            let hits = searcher.search(&query, 4).expect("racing search");
            assert_eq!(hits.len(), 4);
            assert_distinct(&hits.iter().map(|h| h.index).collect::<Vec<_>>());
            writer.join().expect("writer");
            let hits = index.search(&query, BASE_ROWS + 2).expect("post-join search");
            assert_eq!(hits.len(), BASE_ROWS + 2, "sealed rows must be visible after join");
        });
    }

    /// A cached searcher may lag behind the newest snapshot but must
    /// never regress to an older one: the live count it observes is
    /// non-decreasing while only appends run.
    #[test]
    fn snapshots_never_regress() {
        loom::model(|| {
            let index = fresh(SegmentPolicy::default().with_seal_threshold(64).sequential());
            let writer = {
                let index = index.clone();
                let rows = toy_rows(1, 21);
                vaq_core::sync::thread::spawn(move || {
                    index.add(&Matrix::from_rows(&rows)).expect("first add");
                    let rows = toy_rows(1, 22);
                    index.add(&Matrix::from_rows(&rows)).expect("second add");
                })
            };
            let mut searcher = index.searcher();
            searcher.refresh();
            let a = searcher.snapshot().live_len();
            searcher.refresh();
            let b = searcher.snapshot().live_len();
            assert!(b >= a, "snapshot regressed: {a} -> {b}");
            writer.join().expect("writer");
            searcher.refresh();
            let c = searcher.snapshot().live_len();
            assert_eq!(c, BASE_ROWS + 2, "join edge must publish both adds");
        });
    }

    /// Tombstone visibility: while a delete races a search, the reader
    /// sees either the pre- or post-delete snapshot (never a torn one);
    /// once the deleter is joined, the id is gone on every schedule.
    #[test]
    fn tombstone_visibility() {
        let query = toy_rows(1, 3)[0].clone();
        loom::model(move || {
            let index = fresh(SegmentPolicy::default().sequential());
            let deleter = {
                let index = index.clone();
                vaq_core::sync::thread::spawn(move || {
                    assert!(index.delete(0), "id 0 starts live");
                })
            };
            let hits = index.search(&query, BASE_ROWS).expect("racing search");
            assert!(
                hits.len() == BASE_ROWS || hits.len() == BASE_ROWS - 1,
                "torn snapshot: {} of {BASE_ROWS} rows",
                hits.len()
            );
            deleter.join().expect("deleter");
            assert!(!index.contains(0), "delete must be visible after join");
            let hits = index.search(&query, BASE_ROWS).expect("post-join search");
            assert_eq!(hits.len(), BASE_ROWS - 1);
            assert!(hits.iter().all(|h| h.index != 0), "tombstoned id resurfaced");
        });
    }

    /// Compaction-vs-delete: compaction gathers live rows, builds the
    /// merged segment *outside* the writer lock, then re-checks core
    /// pointer identity and re-applies tombstones from the current
    /// snapshot at install. A delete racing into the segments being
    /// merged (id 16 lives in the 1-row segment the compaction picks
    /// up) must survive on every schedule — the classic lost-update
    /// this re-application exists to prevent.
    #[test]
    fn compact_preserves_racing_delete() {
        loom::model(|| {
            let index = fresh(
                SegmentPolicy::default()
                    .with_seal_threshold(1)
                    .with_compact_min_segments(2)
                    .sequential(),
            );
            // Deterministic setup (single thread, no branching): two
            // 1-row adds each seal, leaving 3 segments — compactable.
            index.add(&Matrix::from_rows(&toy_rows(1, 31))).expect("setup add");
            index.add(&Matrix::from_rows(&toy_rows(1, 32))).expect("setup add");
            let compactor = {
                let index = index.clone();
                vaq_core::sync::thread::spawn(move || index.flush())
            };
            let deleted = index.delete(16);
            assert!(deleted, "id 16 starts live");
            compactor.join().expect("compactor");
            index.flush();
            assert!(!index.contains(16), "compaction resurrected a racing delete");
            assert_eq!(index.len(), BASE_ROWS + 2 - 1);
        });
    }

    /// Compact-vs-compact: two flushes racing for the same eligible
    /// compaction. The maintenance flag under the writer mutex must let
    /// exactly one run the pass while the other waits (yield-spin) —
    /// never two concurrent rebuilds, never a deadlock, no lost rows.
    #[test]
    fn concurrent_flushes_are_exclusive() {
        loom::model(|| {
            let index = fresh(
                SegmentPolicy::default()
                    .with_seal_threshold(1)
                    .with_compact_min_segments(2)
                    .sequential(),
            );
            index.add(&Matrix::from_rows(&toy_rows(1, 51))).expect("setup add");
            index.add(&Matrix::from_rows(&toy_rows(1, 52))).expect("setup add");
            let other = {
                let index = index.clone();
                vaq_core::sync::thread::spawn(move || index.flush())
            };
            index.flush();
            other.join().expect("flusher");
            assert_eq!(index.len(), BASE_ROWS + 2, "flush race lost rows");
            let segments = index.snapshot().num_segments();
            assert!(segments <= 2, "compaction did not run: {segments} segments");
        });
    }

    /// Buffer backpressure: with a background maintenance thread in
    /// flight, a writer that overruns the backpressure cap joins it
    /// instead of growing the buffer without bound. Exhaustively, the
    /// add/seal/join handshake must never deadlock or lose rows.
    #[test]
    fn backpressure_handshake() {
        let query = toy_rows(1, 3)[0].clone();
        loom::model(move || {
            // background=true: the seal runs on a loom-spawned thread.
            let index = fresh(SegmentPolicy::default().with_seal_threshold(1));
            index.add(&Matrix::from_rows(&toy_rows(1, 41))).expect("first add");
            index.add(&Matrix::from_rows(&toy_rows(1, 42))).expect("backpressured add");
            index.flush();
            let hits = index.search(&query, BASE_ROWS + 2).expect("post-flush search");
            assert_eq!(hits.len(), BASE_ROWS + 2, "backpressure lost rows");
        });
    }

    /// Seeded regression: the install/refresh idiom with its publish
    /// deliberately weakened to `Relaxed`. The checker must find the
    /// schedule where a reader observes the bumped version but stale
    /// data — proof that the suite would catch the real `install()`
    /// losing its `Release`. The correctly-ordered twin must pass.
    #[test]
    fn weakened_relaxed_publish_is_caught() {
        use loom::sync::atomic::{AtomicU64, Ordering};
        use loom::sync::Arc;

        fn publish_protocol(publish_order: Ordering) {
            let data = Arc::new(AtomicU64::new(0));
            let version = Arc::new(AtomicU64::new(0));
            let (d2, v2) = (Arc::clone(&data), Arc::clone(&version));
            let writer = loom::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed); // the snapshot install
                v2.fetch_add(1, publish_order); // the version bump
            });
            // The searcher-refresh side: version observed => data visible.
            if version.load(Ordering::Acquire) > 0 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale snapshot");
            }
            writer.join().unwrap();
        }

        let weakened = std::panic::catch_unwind(|| {
            loom::model(|| publish_protocol(Ordering::Relaxed));
        });
        assert!(weakened.is_err(), "checker failed to catch the weakened Relaxed publish");
        loom::model(|| publish_protocol(Ordering::Release));
    }
}
