//! Robustness suite (ISSUE 3): structured fuzzing of the persisted index
//! format, a degenerate-dataset matrix pushed through the full training
//! pipeline, and — when the `faults` feature is on — injected-fault
//! recovery checks for every registered site.
//!
//! The contract under test is uniform: every entry point returns a clean
//! result or a typed [`VaqError`]; nothing panics, and nothing silently
//! returns a wrong answer.

use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};
use vaq_core::{
    Audit, IngressPolicy, SearchStrategy, SegmentPolicy, SegmentedVaq, Vaq, VaqConfig, VaqError,
};
use vaq_linalg::Matrix;

/// The degradation log is process-global; tests that drain or assert on it
/// must not interleave.
static DEG_LOCK: Mutex<()> = Mutex::new(());

fn toy_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(d);
        for j in 0..d {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 40) as f32 / (1u32 << 23) as f32) - 1.0;
            row.push(v * 2.0 / (1.0 + j as f32 * 0.3));
        }
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

/// One trained index serialized once and shared by every fuzz case —
/// training dominates, mutation is cheap.
fn trained_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let data = toy_data(300, 12, 9);
        Vaq::train(&data, &VaqConfig::new(24, 4).with_ti_clusters(12)).unwrap().to_bytes()
    })
}

/// A segmented (`VAQ2`) manifest — multiple sealed segments, a live write
/// buffer, and tombstones in both — serialized once for the fuzz cases
/// below, mirroring [`trained_bytes`] for the monolithic format.
fn segmented_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let data = toy_data(300, 12, 9);
        let slice = |lo: usize, hi: usize| {
            Matrix::from_rows(&(lo..hi).map(|i| data.row(i).to_vec()).collect::<Vec<_>>())
        };
        let policy =
            SegmentPolicy::default().with_seal_threshold(40).with_ti_clusters(6).sequential();
        let seg = SegmentedVaq::train(
            &slice(0, 200),
            &VaqConfig::new(24, 4).with_ti_clusters(12),
            policy,
        )
        .unwrap();
        seg.add(&slice(200, 275)).unwrap(); // over threshold: sealed inline
        seg.add(&slice(275, 300)).unwrap(); // 25 rows stay in the buffer
        assert!(seg.delete(3)); // tombstone in a sealed segment
        assert!(seg.delete(280)); // tombstone in the write buffer
        seg.to_bytes()
    })
}

fn fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Any single-byte mutation of a serialized index either round-trips
    /// to a structurally sound index or fails with a typed error. It must
    /// never panic and never yield an index that fails its own audit.
    #[test]
    fn byte_mutations_never_panic(pos_seed in 0usize..1_000_000, delta in 1u8..=255) {
        let mut bytes = trained_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        if let Ok(vaq) = Vaq::from_bytes(&bytes) {
            // Mutations that survive parsing (e.g. a flipped mantissa bit
            // in a dictionary entry) must still satisfy every invariant —
            // `from_bytes` audits before returning.
            prop_assert!(vaq.audit().is_ok());
            let q = vec![0.25f32; 12];
            prop_assert_eq!(vaq.search(&q, 5).unwrap().len(), 5);
        }
    }

    /// Every strict prefix of the file is rejected with a typed error.
    #[test]
    fn truncations_always_error(cut_seed in 0usize..1_000_000) {
        let bytes = trained_bytes();
        let cut = cut_seed % bytes.len(); // strictly shorter than the file
        prop_assert!(Vaq::from_bytes(&bytes[..cut]).is_err());
    }

    /// Splicing two random windows of the file (a torn write) never panics.
    #[test]
    fn spliced_windows_never_panic(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let bytes = trained_bytes();
        let (a, b) = (a % bytes.len(), b % bytes.len());
        let (lo, hi) = (a.min(b), a.max(b));
        let mut spliced = bytes[..lo].to_vec();
        spliced.extend_from_slice(&bytes[hi..]);
        let _ = Vaq::from_bytes(&spliced); // Ok or Err both fine; panics are not
    }

    /// The segmented (`VAQ2`) manifest holds the same line: any single-byte
    /// mutation either parses to an index that passes the full structural
    /// audit (VAQ101–VAQ111) or is rejected with a typed error.
    #[test]
    fn vaq2_byte_mutations_never_panic(pos_seed in 0usize..1_000_000, delta in 1u8..=255) {
        let mut bytes = segmented_bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        if let Ok(seg) = SegmentedVaq::from_bytes(&bytes) {
            prop_assert!(seg.audit().is_ok());
            let q = vec![0.25f32; 12];
            prop_assert_eq!(seg.search(&q, 5).map(|hits| hits.len()), Ok(5));
        }
    }

    /// Every strict prefix of a segmented manifest is rejected: the format
    /// is purely sequential, so a torn tail always cuts a field short.
    #[test]
    fn vaq2_truncations_always_error(cut_seed in 0usize..1_000_000) {
        let bytes = segmented_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(SegmentedVaq::from_bytes(&bytes[..cut]).is_err());
    }

    /// Torn-write splices of the segmented manifest never panic.
    #[test]
    fn vaq2_spliced_windows_never_panic(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let bytes = segmented_bytes();
        let (a, b) = (a % bytes.len(), b % bytes.len());
        let (lo, hi) = (a.min(b), a.max(b));
        let mut spliced = bytes[..lo].to_vec();
        spliced.extend_from_slice(&bytes[hi..]);
        let _ = SegmentedVaq::from_bytes(&spliced);
    }
}

/// Pushes one degenerate dataset through training and, when training
/// accepts it, through audit + both search paths. Panics fail the test;
/// typed errors are an accepted outcome.
fn degenerate_case(name: &str, data: &Matrix, cfg: &VaqConfig) {
    match Vaq::train(data, cfg) {
        Ok(vaq) => {
            let report = vaq.audit();
            assert!(report.is_ok(), "{name}: trained index failed audit:\n{report}");
            let q = vec![0.1f32; data.cols()];
            let k = 3.min(data.rows());
            let full = vaq.search_with(&q, k, SearchStrategy::FullScan).unwrap().0;
            let tiea = vaq.search_with(&q, k, SearchStrategy::TiEa { visit_frac: 1.0 }).unwrap().0;
            assert_eq!(full.len(), k, "{name}: short result list");
            assert_eq!(
                full.iter().map(|h| h.index).collect::<Vec<_>>(),
                tiea.iter().map(|h| h.index).collect::<Vec<_>>(),
                "{name}: TiEa disagrees with FullScan"
            );
            // Round-trip the survivor too.
            let back = Vaq::from_bytes(&vaq.to_bytes()).expect(name);
            assert_eq!(
                back.search(&q, k).unwrap(),
                vaq.search(&q, k).unwrap(),
                "{name}: round-trip changed results"
            );
        }
        Err(e) => {
            // Typed rejection is fine; exercise Display and source() so a
            // malformed message would surface here.
            let _ = e.to_string();
            let _ = std::error::Error::source(&e);
        }
    }
}

#[test]
fn degenerate_all_zero_data() {
    let data = Matrix::from_rows(&vec![vec![0.0f32; 8]; 64]);
    degenerate_case("all-zero", &data, &VaqConfig::new(16, 4).with_ti_clusters(8));
}

#[test]
fn degenerate_single_point() {
    let data = toy_data(1, 8, 3);
    degenerate_case("single-point", &data, &VaqConfig::new(16, 4).with_ti_clusters(4));
}

#[test]
fn degenerate_fewer_points_than_dictionary_entries() {
    // Budget 24 over 4 subspaces wants dictionaries far larger than n = 5.
    let data = toy_data(5, 8, 11);
    degenerate_case("n<k", &data, &VaqConfig::new(24, 4).with_ti_clusters(2));
}

#[test]
fn degenerate_duplicate_rows() {
    let row: Vec<f32> = (0..8).map(|j| 0.7 - j as f32 * 0.1).collect();
    let data = Matrix::from_rows(&vec![row; 80]);
    degenerate_case("duplicates", &data, &VaqConfig::new(16, 4).with_ti_clusters(8));
}

#[test]
fn degenerate_fewer_dims_than_subspaces() {
    let data = toy_data(60, 3, 5);
    degenerate_case("d<m", &data, &VaqConfig::new(32, 8).with_ti_clusters(8));
}

#[test]
fn degenerate_empty_matrix() {
    let data = Matrix::from_rows(&Vec::<Vec<f32>>::new());
    assert!(matches!(
        Vaq::train(&data, &VaqConfig::new(16, 4)),
        Err(VaqError::EmptyData) | Err(VaqError::BadConfig(_))
    ));
}

#[test]
fn ingress_reject_reports_exact_cell() {
    let mut rows = vec![vec![0.5f32; 6]; 20];
    rows[7][3] = f32::NAN;
    let data = Matrix::from_rows(&rows);
    match Vaq::train(&data, &VaqConfig::new(12, 3)) {
        Err(VaqError::NonFinite { row, col }) => {
            assert_eq!((row, col), (7, 3));
        }
        other => panic!("expected NonFinite {{ 7, 3 }}, got {other:?}"),
    }
}

#[test]
fn ingress_sanitize_trains_through_non_finite_values() {
    let mut rows: Vec<Vec<f32>> =
        (0..80).map(|i| (0..6).map(|j| ((i * 7 + j) % 13) as f32 * 0.1 - 0.6).collect()).collect();
    rows[2][1] = f32::INFINITY;
    rows[40][5] = f32::NAN;
    let data = Matrix::from_rows(&rows);
    let cfg = VaqConfig::new(12, 3).with_ti_clusters(6).with_ingress(IngressPolicy::Sanitize);
    let _g = DEG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    vaq_core::faults::take_degradations();
    let vaq = Vaq::train(&data, &cfg).expect("sanitize should admit the dataset");
    assert!(vaq.audit().is_ok());
    assert!(
        vaq_core::faults::take_degradations().iter().any(|d| d.starts_with("ingress.validate")),
        "sanitization must be recorded in the degradation log"
    );
}

#[test]
fn error_sources_chain_to_the_failing_crate() {
    // d < subspaces bottoms out in a typed error whose Display is stable,
    // and solver/kmeans/linalg wrappers expose source().
    let e = VaqError::Solve(vaq_milp::SolveError::Infeasible);
    assert!(std::error::Error::source(&e).is_some());
    let e = VaqError::KMeans(vaq_kmeans::KMeansError::EmptyData);
    assert!(std::error::Error::source(&e).is_some());
}

/// Injected-fault recovery: only meaningful with the runtime compiled in.
#[cfg(feature = "faults")]
mod injected {
    use super::*;
    use vaq_core::faults::{arm, disarm_all, take_degradations, Trigger, SITES};

    fn with_armed<T>(site: &'static str, f: impl FnOnce() -> T) -> (T, Vec<&'static str>) {
        let _g = DEG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        take_degradations();
        arm(site, Trigger::Always);
        let out = f();
        disarm_all();
        (out, take_degradations())
    }

    fn data() -> Matrix {
        toy_data(200, 10, 21)
    }

    #[test]
    fn varpca_fault_falls_back_to_axis_aligned_projection() {
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        let (result, notes) = with_armed("varpca.fit", || Vaq::train(&data(), &cfg));
        let vaq = result.expect("varpca failure must degrade, not abort");
        assert!(vaq.audit().is_ok());
        assert!(notes.iter().any(|n| n.starts_with("varpca.fit")), "{notes:?}");
        // The axis-aligned fallback is a permutation: queries still work.
        assert_eq!(vaq.search(data().row(0), 5).unwrap().len(), 5);
    }

    #[test]
    fn milp_fault_falls_back_to_greedy_allocation() {
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        let (result, notes) = with_armed("allocation.milp", || Vaq::train(&data(), &cfg));
        let vaq = result.expect("solver failure must degrade, not abort");
        assert!(notes.iter().any(|n| n.contains("greedy")), "{notes:?}");
        // The greedy allocation still satisfies C1–C3.
        assert_eq!(vaq.bits().iter().sum::<usize>(), 20);
        assert!(vaq.bits().iter().all(|&b| (1..=16).contains(&b)));
        assert!(vaq.audit().is_ok());
    }

    #[test]
    fn ti_fault_degrades_to_ea_only_queries() {
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        let (result, notes) = with_armed("ti.build", || Vaq::train(&data(), &cfg));
        let vaq = result.expect("ti failure must degrade, not abort");
        assert!(vaq.ti().is_none());
        assert!(notes.iter().any(|n| n.starts_with("ti.build")), "{notes:?}");
        // TiEa requests silently degrade to EA and stay exact.
        let d = data();
        let a = vaq.search_with(d.row(3), 5, SearchStrategy::TiEa { visit_frac: 0.2 }).unwrap().0;
        let b = vaq.search_with(d.row(3), 5, SearchStrategy::EarlyAbandon).unwrap().0;
        assert_eq!(a, b);
    }

    #[test]
    fn hard_sites_surface_typed_injected_errors() {
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        for site in ["ingress.validate", "dictionary.train"] {
            let (result, _) = with_armed(site, || Vaq::train(&data(), &cfg));
            match result {
                Err(VaqError::Injected { site: got }) => assert_eq!(got, site),
                other => panic!("{site}: expected Injected, got {other:?}"),
            }
        }
    }

    #[test]
    fn persist_fault_is_a_typed_error() {
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        let bytes = Vaq::train(&data(), &cfg).unwrap().to_bytes();
        let (result, _) = with_armed("persist.from_bytes", || Vaq::from_bytes(&bytes));
        assert!(matches!(result, Err(VaqError::Injected { site: "persist.from_bytes" })));
    }

    #[test]
    fn engine_faults_degrade_without_changing_answers() {
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        let d = data();
        let vaq = Vaq::train(&d, &cfg).unwrap();
        let clean =
            vaq.search_with(d.row(1), 5, SearchStrategy::TiEa { visit_frac: 1.0 }).unwrap().0;
        for site in ["engine.prepare", "engine.search"] {
            let (got, notes) = with_armed(site, || {
                vaq.search_with(d.row(1), 5, SearchStrategy::TiEa { visit_frac: 1.0 }).unwrap().0
            });
            assert_eq!(got, clean, "{site} changed query answers");
            assert!(!notes.is_empty(), "{site} should log its degradation");
        }
        // The quantized SIMD path is a pure accelerator: bypassing it must
        // fall back to the EA scan with byte-identical results.
        let clean_q = vaq.search_with(d.row(1), 5, SearchStrategy::Quantized).unwrap().0;
        let (got, notes) = with_armed("engine.qscan", || {
            vaq.search_with(d.row(1), 5, SearchStrategy::Quantized).unwrap().0
        });
        assert_eq!(got, clean_q, "engine.qscan changed query answers");
        assert!(notes.iter().any(|n| n.starts_with("engine.qscan")), "{notes:?}");
    }

    #[test]
    fn every_registered_site_is_reachable_from_the_pipeline() {
        // Arm each site in turn with a certain trigger; the run must either
        // error (Injected / typed) or log a degradation naming the site —
        // proving the site is actually wired into the stage it guards.
        let cfg = VaqConfig::new(20, 4).with_ti_clusters(8);
        let d = data();
        for &site in SITES {
            let (outcome, notes) = with_armed(site, || {
                let vaq = Vaq::train(&d, &cfg)?;
                let bytes = vaq.to_bytes();
                let back = Vaq::from_bytes(&bytes)?;
                back.search_with(d.row(0), 3, SearchStrategy::TiEa { visit_frac: 1.0 })?;
                back.search_with(d.row(0), 3, SearchStrategy::Quantized)?;
                // The segmented wrapper owns the `segment.*` sites: cross
                // the seal threshold (maintenance runs inline under
                // `.sequential()`) and keep enough sealed segments around
                // for a merge to be eligible. `flush()` is deliberately not
                // called — with `segment.seal` armed `Always` the buffer
                // can never drain, so flush would retry forever.
                let seg = SegmentedVaq::from_vaq(
                    back,
                    SegmentPolicy::default()
                        .with_seal_threshold(8)
                        .with_compact_min_segments(2)
                        .with_ti_clusters(4)
                        .sequential(),
                );
                for chunk in 0..3usize {
                    let rows: Vec<Vec<f32>> =
                        (0..8).map(|i| d.row((chunk * 8 + i) % d.rows()).to_vec()).collect();
                    seg.add(&Matrix::from_rows(&rows))?;
                }
                seg.search_with(d.row(0), 3, SearchStrategy::TiEa { visit_frac: 1.0 })?;
                // The durability layer owns the `persist.wal_append`,
                // `persist.commit`, and `persist.fsync` sites: commit a
                // manifest atomically, then log one add through the WAL.
                let dir = std::env::temp_dir().join(format!("vaq-robust-{}", std::process::id()));
                std::fs::create_dir_all(&dir).expect("create scratch dir");
                seg.make_durable(&dir.join(format!("{site}.vaq")))?;
                seg.add(&Matrix::from_rows(&[d.row(0).to_vec()]))?;
                // The mapped reopen owns `persist.mmap`: an armed site
                // degrades the open to the owned read path with a note.
                let v4 = dir.join(format!("{site}.vaq4"));
                seg.save_mapped(&v4)?;
                SegmentedVaq::open_mapped(&v4)?.search_with(
                    d.row(0),
                    3,
                    SearchStrategy::FullScan,
                )?;
                Ok::<(), VaqError>(())
            });
            let observed = outcome.is_err()
                || notes.iter().any(|n| n.starts_with(site) || n.contains("greedy"));
            assert!(observed, "site {site} armed Always but never observed (notes {notes:?})");
        }
        let scratch = std::env::temp_dir().join(format!("vaq-robust-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(scratch);
    }
}
