//! `VAQ_THREADS` override — integration-tested in its own binary because
//! the budget is cached process-wide on first use, so the variable must
//! be set before any threaded site runs.

use vaq_core::search::SearchStrategy;
use vaq_core::{Vaq, VaqConfig};
use vaq_linalg::Matrix;

#[test]
fn vaq_threads_pins_every_scoped_thread_site() {
    // Single test in this binary: nothing can race the set_var or touch
    // the budget cache first.
    std::env::set_var("VAQ_THREADS", "1");
    assert_eq!(vaq_core::threads::thread_budget(), 1);
    assert_eq!(vaq_core::threads::worker_count(64), 1);

    // The full pipeline (encoder::encode_all, ti::build) and the batch
    // query path all run through worker_count — train and query a small
    // index end-to-end to prove the pinned budget still yields correct
    // answers on every site.
    let rows: Vec<Vec<f32>> = (0..160)
        .map(|i| {
            let t = i as f32 / 10.0;
            vec![t, 2.0 * t, (i % 7) as f32, t * 0.5, 1.0 - t, t * t * 0.01, 0.3, -t]
        })
        .collect();
    let data = Matrix::from_rows(&rows);
    let cfg = VaqConfig::new(16, 4).with_ti_clusters(8);
    let vaq = Vaq::train(&data, &cfg).unwrap();

    let queries = Matrix::from_rows(&(0..12).map(|i| rows[i * 13].clone()).collect::<Vec<_>>());
    let (batch, _) = vaq.search_batch(&queries, 3, SearchStrategy::EarlyAbandon).unwrap();
    assert_eq!(batch.len(), 12);
    for (qi, res) in batch.iter().enumerate() {
        assert_eq!(res[0].index as usize, qi * 13, "query {qi} did not find itself");
    }
}
